"""Crash recovery: replay the write-ahead log into a fresh database.

The durability contract is redo-only: the in-memory tables are the cache,
the log on the :class:`~repro.recovery.simdisk.SimDisk` is the truth.
After a crash, :meth:`Durability.recover` rebuilds the database by

1. scanning the log's clean prefix (per-record CRCs, strict mid-log
   corruption detection — see :func:`repro.recovery.wal.scan_wal`);
2. restoring the most recent checkpoint snapshot, if any (checkpoints
   bound replay length: everything before the snapshot is one record);
3. replaying the records after it — operations buffer per transaction
   and apply at that transaction's COMMIT, so in-flight transactions are
   discarded for free and strict 2PL guarantees commit-order replay is
   equivalent to the original interleaving;
4. truncating the disk at the end of the clean prefix (tail repair) and,
   when any in-flight transaction was discarded, appending a fence
   record so a post-restart transaction that reuses a dead transaction's
   id can never merge with its orphaned records at the *next* recovery.

Recovery invariants (asserted end-to-end by ``benchmarks/bench_crash``):
no committed transaction's effects are lost, and no uncommitted
transaction's effects survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import DurabilityError
from repro.recovery.simdisk import SimDisk
from repro.recovery.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_DDL,
    KIND_DELETE,
    KIND_FENCE,
    KIND_INSERT,
    KIND_UPDATE,
    ColumnDef,
    IndexDef,
    Snapshot,
    TableSnapshot,
    WalRecord,
    WalWriter,
    scan_wal,
)
from repro.sqldb.database import Database
from repro.sqldb.render import render_statement
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.storage import TableStorage
from repro.sqldb.types import SQLType


@dataclass
class RecoveryReport:
    """What one recovery pass did — deterministic, JSON-friendly."""

    log_bytes: int = 0
    records_scanned: int = 0
    checkpoint_used: bool = False
    txns_committed: int = 0
    txns_discarded: int = 0
    replayed_records: int = 0
    ddl_replayed: int = 0
    tail_status: str = "clean"
    truncated_bytes: int = 0
    fenced: bool = False
    hwm: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "log_bytes": self.log_bytes,
            "records_scanned": self.records_scanned,
            "checkpoint_used": self.checkpoint_used,
            "txns_committed": self.txns_committed,
            "txns_discarded": self.txns_discarded,
            "replayed_records": self.replayed_records,
            "ddl_replayed": self.ddl_replayed,
            "tail_status": self.tail_status,
            "truncated_bytes": self.truncated_bytes,
            "fenced": self.fenced,
            "hwm": {str(client): seq for client, seq in sorted(self.hwm.items())},
        }
        return payload


# -- snapshots ---------------------------------------------------------------


def snapshot_database(database: Database, hwm: Dict[int, int]) -> Snapshot:
    """Capture *database* as a checkpoint snapshot.

    Requires a quiescent database (no open transactions): a checkpoint is
    a clean point in the log, so replay never has to stitch a transaction
    across one.
    """
    if database._transactions:
        raise DurabilityError(
            "cannot checkpoint with open transactions; commit or roll "
            "back first"
        )
    tables: List[TableSnapshot] = []
    for name in database.table_names():
        entry = database.catalog.lookup(name)
        storage = entry.storage
        columns = tuple(
            ColumnDef(
                name=column.name,
                type_name=column.sql_type.name,
                type_length=column.sql_type.length,
                not_null=column.not_null,
                primary_key=column.primary_key,
            )
            for column in entry.schema.columns
        )
        indexes = tuple(
            IndexDef(
                name=index.name,
                columns=tuple(
                    entry.schema.columns[position].name
                    for position in index.column_positions
                ),
                unique=index.unique,
            )
            for index in storage._indexes.values()
        )
        tables.append(
            TableSnapshot(
                name=entry.schema.name,
                columns=columns,
                indexes=indexes,
                total_slots=len(storage._rows),
                rows=tuple(storage.scan()),
            )
        )
    views = tuple(
        render_statement(database.views[key]) for key in sorted(database.views)
    )
    return Snapshot(
        tables=tuple(tables),
        views=views,
        hwm=tuple(sorted(hwm.items())),
        mvcc_clock=database.mvcc.clock if database.mvcc is not None else 0,
    )


def restore_snapshot(database: Database, snapshot: Snapshot) -> None:
    """Materialise *snapshot* into a fresh (empty) *database*."""
    for table in snapshot.tables:
        schema = TableSchema(
            name=table.name,
            columns=[
                Column(
                    name=column.name,
                    sql_type=SQLType(column.type_name, column.type_length),
                    not_null=column.not_null,
                    primary_key=column.primary_key,
                )
                for column in table.columns
            ],
        )
        storage = TableStorage(schema)
        existing = {name.lower() for name in storage.index_names()}
        for index in table.indexes:
            if index.name.lower() in existing:
                continue  # the PK index auto-created by TableStorage
            storage.create_index(index.name, list(index.columns), unique=index.unique)
        for row_id, row in table.rows:
            storage.insert_at(row_id, row)
        storage.pad_slots(table.total_slots)
        # adopt_storage attaches WAL journal and MVCC hooks; the storage is
        # fully populated first, so restore itself creates no versions —
        # checkpointed rows are committed state, chainless by definition.
        database.adopt_storage(schema, storage)
    for view_sql in snapshot.views:
        database.execute(view_sql)
    if database.mvcc is not None:
        # Resume the commit clock where the checkpoint froze it so replayed
        # commits reuse the original stamps.
        database.mvcc.clock = snapshot.mvcc_clock


# -- replay ------------------------------------------------------------------


def _apply_op(database: Database, record: WalRecord) -> None:
    assert record.table is not None and record.row_id is not None
    storage = database.catalog.lookup(record.table).storage
    if record.kind == KIND_INSERT:
        assert record.row is not None
        storage.insert_at(record.row_id, record.row)
    elif record.kind == KIND_DELETE:
        storage.delete(record.row_id)
    else:  # KIND_UPDATE
        assert record.row is not None
        storage.update(record.row_id, record.row)


def _replay(
    database: Database, records: List[WalRecord], report: RecoveryReport
) -> Dict[int, int]:
    """Replay *records* into *database*; return the high-water-mark map.

    Starts from the last checkpoint in *records* (restoring its snapshot)
    and buffers subsequent operations per transaction, applying each
    buffer at its COMMIT.  Whatever is still buffered at the end of the
    log belonged to in-flight transactions and is discarded.
    """
    start = 0
    hwm: Dict[int, int] = {}
    for position in range(len(records) - 1, -1, -1):
        if records[position].kind == KIND_CHECKPOINT:
            snapshot = records[position].snapshot
            assert snapshot is not None
            restore_snapshot(database, snapshot)
            hwm = dict(snapshot.hwm)
            report.checkpoint_used = True
            start = position + 1
            break
    open_txns: Dict[int, List[WalRecord]] = {}
    for record in records[start:]:
        kind = record.kind
        if kind == KIND_BEGIN:
            open_txns.setdefault(record.txn_id, [])
        elif kind in (KIND_INSERT, KIND_DELETE, KIND_UPDATE):
            open_txns.setdefault(record.txn_id, []).append(record)
        elif kind == KIND_COMMIT:
            # One mvcc_scope per committed transaction: the commit clock
            # bumps exactly once per writing transaction, in log order —
            # the same sequence the original execution produced.
            with database.mvcc_scope():
                for buffered in open_txns.pop(record.txn_id, []):
                    _apply_op(database, buffered)
                    report.replayed_records += 1
            report.txns_committed += 1
            if record.origin is not None:
                client_id, seq = record.origin
                if seq > hwm.get(client_id, 0):
                    hwm[client_id] = seq
        elif kind == KIND_ABORT:
            open_txns.pop(record.txn_id, None)
        elif kind == KIND_DDL:
            assert record.sql is not None
            database.execute(record.sql)
            report.ddl_replayed += 1
            report.replayed_records += 1
        elif kind == KIND_FENCE:
            # Every transaction open at this point died with the crash the
            # fence commemorates; a later transaction reusing one of their
            # ids must start from an empty buffer.
            open_txns.clear()
        elif kind == KIND_CHECKPOINT:  # pragma: no cover - start skips these
            pass
    report.txns_discarded = len(open_txns)
    return hwm


# -- the durability bundle ---------------------------------------------------


class Durability:
    """One database's disk, write-ahead log, and recovery procedure.

    Owns the :class:`SimDisk` and (re)builds `(Database, WalWriter)`
    pairs from it::

        durability = Durability()
        db = durability.open()          # fresh or recovered, WAL attached
        ...crash...
        db = durability.recover()       # replayed from the log

    ``db_kwargs`` are forwarded to every :class:`Database` the bundle
    constructs (execution mode, plan-cache size, ...).
    """

    def __init__(
        self,
        disk: Optional[SimDisk] = None,
        recorder: Optional[Any] = None,
        db_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.disk = disk if disk is not None else SimDisk()
        self.recorder = recorder
        self.db_kwargs = dict(db_kwargs or {})
        self.wal: Optional[WalWriter] = None
        self.database: Optional[Database] = None
        self.last_report: Optional[RecoveryReport] = None
        self.statistics = {
            "recoveries": 0,
            "replayed_records": 0,
            "checkpoints": 0,
        }

    def open(self) -> Database:
        """Open the database: recover whatever the log holds (nothing,
        for a brand-new disk) and attach a fresh WAL writer."""
        return self.recover()

    def recover(self) -> Database:
        """Rebuild the database from the log; see the module docstring."""
        recorder = self.recorder
        if recorder is None:
            return self._recover()
        with recorder.span("recovery.replay", kind="recovery") as span:
            database = self._recover()
            report = self.last_report
            assert report is not None
            span.meta["records_scanned"] = report.records_scanned
            span.meta["replayed_records"] = report.replayed_records
            span.meta["txns_committed"] = report.txns_committed
            span.meta["txns_discarded"] = report.txns_discarded
            span.meta["tail_status"] = report.tail_status
            recorder.metrics.counter("recovery.recoveries").inc()
            if report.replayed_records:
                recorder.metrics.counter("recovery.replayed_records").inc(
                    report.replayed_records
                )
            return database

    def _recover(self) -> Database:
        disk = self.disk
        if disk.crashed:
            disk.reopen()
        report = RecoveryReport()
        data = disk.read_all()
        report.log_bytes = len(data)
        scan = scan_wal(data, strict=True)
        report.records_scanned = len(scan.records)
        report.tail_status = scan.tail_status
        report.truncated_bytes = len(data) - scan.clean_length
        database = Database(**self.db_kwargs)
        database.recorder = self.recorder
        hwm = _replay(database, scan.records, report)
        report.hwm = dict(hwm)
        if report.truncated_bytes:
            disk.truncate(scan.clean_length)
        writer = WalWriter(disk, recorder=self.recorder)
        writer.hwm = dict(hwm)
        if report.txns_discarded:
            writer.fence()
            report.fenced = True
        database.attach_wal(writer)
        self.wal = writer
        self.database = database
        self.last_report = report
        self.statistics["recoveries"] += 1
        self.statistics["replayed_records"] += report.replayed_records
        return database

    def checkpoint(self) -> None:
        """Write a checkpoint record snapshotting the current database.

        Later recoveries restore the snapshot and replay only the records
        behind it, bounding replay work; the log before the checkpoint is
        dead weight (the simulated disk keeps it — compaction is not the
        point of the model).
        """
        if self.database is None or self.wal is None:
            raise DurabilityError("open() the database before checkpointing")
        snapshot = snapshot_database(self.database, self.wal.hwm)
        self.wal.checkpoint(snapshot)
        self.statistics["checkpoints"] += 1
