"""A simulated append-only disk with seeded crash-point injection.

The durability subsystem needs a "disk" whose failure modes can be
scripted the way :mod:`repro.network.faults` scripts a lossy WAN: the
same profile + seed always produces the same failure, byte for byte.  A
:class:`SimDisk` stores one append-only byte log (the write-ahead log
lives on it) and can be armed with a :class:`DiskFaultProfile`:

* **crash at the Nth append** — the disk loses power while writing the
  Nth record; that append raises :class:`~repro.errors.DiskCrashed` and
  every later write is rejected until :meth:`SimDisk.reopen`;
* **torn write** — the crashing append leaves a strict prefix of the
  record on the platter (length drawn from the seeded RNG), modelling a
  sector write interrupted mid-record;
* **bit flip** — the crashing append is written whole but with one bit
  flipped (position drawn from the seeded RNG), modelling tail
  corruption the WAL reader must detect via its per-record CRC.

Reads are always allowed (after the "reboot" the platter is readable),
and :meth:`truncate` lets recovery repair the tail by cutting the log at
the end of its clean prefix before appending resumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import DiskCrashed, DurabilityError


@dataclass(frozen=True)
class DiskFaultProfile:
    """An immutable description of how (and when) the disk fails.

    ``crash_at_append`` counts appends *after arming*, 1-based: profile
    ``crash_at_append=3`` survives two appends and crashes on the third.
    ``torn`` and ``corrupt`` select what the crashing append leaves
    behind (nothing but a prefix, or the whole record with one bit
    flipped); with neither set the crashing append writes nothing at
    all — a clean crash between records.
    """

    name: str
    crash_at_append: Optional[int] = None
    torn: bool = False
    corrupt: bool = False

    def __post_init__(self) -> None:
        if self.crash_at_append is not None and self.crash_at_append < 1:
            raise DurabilityError("crash_at_append counts from 1")
        if self.torn and self.corrupt:
            raise DurabilityError(
                "a crashing append is torn or corrupted, not both"
            )
        if (self.torn or self.corrupt) and self.crash_at_append is None:
            raise DurabilityError(
                "torn/corrupt damage needs a crash_at_append point"
            )

    @property
    def perfect(self) -> bool:
        """True when this profile never fails."""
        return self.crash_at_append is None


#: The profile of a disk that never fails.
PERFECT_DISK = DiskFaultProfile(name="perfect-disk")


class SimDisk:
    """One append-only simulated disk holding the write-ahead log."""

    def __init__(
        self, profile: DiskFaultProfile = PERFECT_DISK, seed: int = 0
    ) -> None:
        self._data = bytearray()
        self.crashed = False
        #: Appends attempted since the last (re)arming, crash included.
        self.appends_since_armed = 0
        #: Total appends attempted over the disk's lifetime.
        self.total_appends = 0
        self._profile = profile
        self._rng = random.Random(seed)
        self._seed = seed

    # -- faults -------------------------------------------------------------

    @property
    def profile(self) -> DiskFaultProfile:
        return self._profile

    def arm(self, profile: DiskFaultProfile, seed: Optional[int] = None) -> None:
        """Install *profile* and restart the append count at zero.

        Arming after setup (schema creation, initial load, checkpoint)
        makes ``crash_at_append`` count only workload appends, so a
        crash-point sweep addresses the interesting part of the log.
        """
        self._profile = profile
        self.appends_since_armed = 0
        if seed is not None:
            self._seed = seed
        self._rng = random.Random(self._seed)

    # -- writes -------------------------------------------------------------

    def append(self, record: bytes) -> int:
        """Append *record*; return its start offset.

        Raises :class:`~repro.errors.DiskCrashed` at the armed crash
        point (after leaving the profile's torn/corrupt debris) and for
        every write after a crash until :meth:`reopen`.
        """
        if self.crashed:
            raise DiskCrashed("disk is crashed; reopen it after recovery")
        if not record:
            raise DurabilityError("cannot append an empty record")
        self.appends_since_armed += 1
        self.total_appends += 1
        offset = len(self._data)
        profile = self._profile
        if (
            profile.crash_at_append is not None
            and self.appends_since_armed >= profile.crash_at_append
        ):
            self.crashed = True
            if profile.torn and len(record) > 1:
                cut = self._rng.randrange(1, len(record))
                self._data.extend(record[:cut])
            elif profile.corrupt:
                damaged = bytearray(record)
                bit = self._rng.randrange(len(record) * 8)
                damaged[bit // 8] ^= 1 << (bit % 8)
                self._data.extend(damaged)
            raise DiskCrashed(
                f"power lost during append {self.appends_since_armed} "
                f"({profile.name})"
            )
        self._data.extend(record)
        return offset

    def truncate(self, length: int) -> None:
        """Cut the log to *length* bytes (recovery's tail repair)."""
        if length < 0 or length > len(self._data):
            raise DurabilityError(
                f"cannot truncate {len(self._data)}-byte disk to {length}"
            )
        del self._data[length:]

    def reopen(self) -> None:
        """Bring the disk back after a crash (the reboot).

        The armed fault has fired; the profile resets to perfect so
        recovery's own writes do not immediately re-crash.  Arm a new
        profile explicitly to schedule the next failure.
        """
        self.crashed = False
        self._profile = PERFECT_DISK

    # -- reads --------------------------------------------------------------

    def read_all(self) -> bytes:
        """The whole platter, torn/corrupt tail included."""
        return bytes(self._data)

    @property
    def size(self) -> int:
        return len(self._data)
