"""Durability subsystem: write-ahead log, crash injection, recovery.

Layers, bottom up:

* :mod:`repro.recovery.simdisk` — an append-only simulated disk with a
  seeded fault profile (crash at the Nth append, optionally leaving a
  torn or bit-flipped final record);
* :mod:`repro.recovery.wal` — the CRC-framed redo log: record codec,
  damage-distinguishing scanner and the :class:`WalWriter` the database
  appends through;
* :mod:`repro.recovery.recover` — checkpoint snapshots and the
  :class:`Durability` bundle that replays the log into a fresh database
  at every open;
* :mod:`repro.recovery.chaos` — the deterministic crash-chaos simulator
  and its sweep driver (the ``bench_crash`` harness).
"""

from repro.recovery.chaos import (
    CRASH_FAILURES,
    CrashChaosSim,
    CrashConfig,
    report_json,
    run_crash_chaos,
    run_crash_sweep,
    sweep_profiles,
)
from repro.recovery.recover import (
    Durability,
    RecoveryReport,
    restore_snapshot,
    snapshot_database,
)
from repro.recovery.simdisk import PERFECT_DISK, DiskFaultProfile, SimDisk
from repro.recovery.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_DDL,
    KIND_DELETE,
    KIND_FENCE,
    KIND_INSERT,
    KIND_UPDATE,
    MAX_PAYLOAD,
    Snapshot,
    WalRecord,
    WalScan,
    WalWriter,
    decode_payload,
    encode_record,
    scan_wal,
)

__all__ = [
    "CRASH_FAILURES",
    "CrashChaosSim",
    "CrashConfig",
    "Durability",
    "DiskFaultProfile",
    "KIND_ABORT",
    "KIND_BEGIN",
    "KIND_CHECKPOINT",
    "KIND_COMMIT",
    "KIND_DDL",
    "KIND_DELETE",
    "KIND_FENCE",
    "KIND_INSERT",
    "KIND_UPDATE",
    "MAX_PAYLOAD",
    "PERFECT_DISK",
    "RecoveryReport",
    "SimDisk",
    "Snapshot",
    "WalRecord",
    "WalScan",
    "WalWriter",
    "decode_payload",
    "encode_record",
    "report_json",
    "restore_snapshot",
    "run_crash_chaos",
    "run_crash_sweep",
    "scan_wal",
    "snapshot_database",
    "sweep_profiles",
]
