"""CRC-32-framed write-ahead log: record codec, writer, and scanner.

Every mutation the SQL engine performs is described by one WAL record
appended to a :class:`~repro.recovery.simdisk.SimDisk` *before* the
server acknowledges the enclosing transaction.  Recovery replays the log
forward: committed transactions are redone, in-flight ones discarded —
so a crash loses at most the work nobody was told had committed.

Framing (big-endian)::

    magic(1 = 0xA5) | u32 payload length | u32 CRC-32 of payload | payload
    payload = kind(1) | u64 txn_id | body

Record kinds:

``B`` begin        body: empty (written lazily, before a txn's first op)
``C`` commit       body: origin flag(1) [+ u32 client_id + u32 seq]
``A`` abort        body: empty
``I`` insert       body: table, u64 row_id, u16 arity, values
``U`` update       body: table, u64 row_id, u16 arity, values (new row)
``D`` delete       body: table, u64 row_id
``Q`` ddl          body: SQL text (rendered statement, replayed verbatim)
``K`` checkpoint   body: full snapshot (tables, rows, views, HWM map)
``F`` fence        body: empty (written by recovery: every txn open
                   before this point crashed and must be discarded)

The commit record's *origin* is the ``(client_id, seq)`` of the wire
request that drove the commit; the per-client maximum over commit
origins is the SEQUENCED **high-water mark**, which is how at-most-once
execution survives a restart that wiped the in-memory replay cache.

Values reuse the deterministic wire codec
(:func:`repro.sqldb.wire.encode_value`), so a WAL byte stream — like a
wire frame — is a pure function of the operations that produced it.

The scanner (:func:`scan_wal`) verifies each record's CRC and framing.
Damage *at the tail* (a torn final write, a flipped bit in the last
record) ends the clean prefix — expected after a crash, recovery stops
there.  Damage *in the middle* — an invalid record with intact records
after it — raises :class:`~repro.errors.WalCorruptError` instead,
because silently stopping would drop committed work.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, WalCorruptError
from repro.recovery.simdisk import SimDisk
from repro.sqldb.wire import decode_value, encode_value

MAGIC = 0xA5
_HEADER = struct.Struct(">BII")

#: Upper bound on one record's payload; anything larger in a header is
#: framing garbage, not a record that failed to fit.
MAX_PAYLOAD = 64 * 1024 * 1024

KIND_BEGIN = "B"
KIND_COMMIT = "C"
KIND_ABORT = "A"
KIND_INSERT = "I"
KIND_UPDATE = "U"
KIND_DELETE = "D"
KIND_DDL = "Q"
KIND_CHECKPOINT = "K"
KIND_FENCE = "F"

_KINDS = frozenset(
    (
        KIND_BEGIN,
        KIND_COMMIT,
        KIND_ABORT,
        KIND_INSERT,
        KIND_UPDATE,
        KIND_DELETE,
        KIND_DDL,
        KIND_CHECKPOINT,
        KIND_FENCE,
    )
)

Row = Tuple[Any, ...]


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record.

    A single carrier type keeps the scanner's output homogeneous; the
    fields beyond ``kind``/``txn_id`` are populated per kind (``table``/
    ``row_id``/``row`` for data ops, ``sql`` for DDL, ``origin`` for
    commits, ``snapshot`` for checkpoints).
    """

    kind: str
    txn_id: int = 0
    table: Optional[str] = None
    row_id: Optional[int] = None
    row: Optional[Row] = None
    sql: Optional[str] = None
    origin: Optional[Tuple[int, int]] = None
    snapshot: Optional["Snapshot"] = None


@dataclass(frozen=True)
class IndexDef:
    name: str
    columns: Tuple[str, ...]
    unique: bool


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    type_length: Optional[int]
    not_null: bool
    primary_key: bool


@dataclass(frozen=True)
class TableSnapshot:
    """One table's schema, indexes and slot-exact contents.

    ``total_slots`` preserves the heap's row-id space: deleted (and
    never-committed) slots stay ``None`` after restore, so row ids in
    later WAL records keep pointing at the right rows.
    """

    name: str
    columns: Tuple[ColumnDef, ...]
    indexes: Tuple[IndexDef, ...]
    total_slots: int
    rows: Tuple[Tuple[int, Row], ...]


@dataclass(frozen=True)
class Snapshot:
    """A checkpoint's full image: tables, views, and the HWM map."""

    tables: Tuple[TableSnapshot, ...]
    views: Tuple[str, ...]
    hwm: Tuple[Tuple[int, int], ...]
    #: MVCC commit-clock value at checkpoint time (0 on non-MVCC builds):
    #: restoring it lets replayed commits continue the exact stamp
    #: sequence, so the rebuilt version store matches the original.
    mvcc_clock: int = 0


@dataclass
class WalScan:
    """Result of scanning a WAL byte stream.

    ``clean_length`` is the byte offset where the intact prefix ends —
    recovery truncates the disk there before appending resumes.
    ``tail_status`` is ``"clean"`` (the log ends exactly at a record
    boundary), ``"torn"`` (trailing bytes too short to be a record) or
    ``"corrupt"`` (a full-length tail record failed its CRC or framing).
    """

    records: List[WalRecord] = field(default_factory=list)
    clean_length: int = 0
    tail_status: str = "clean"
    tail_error: Optional[str] = None


# -- low-level string/row helpers -------------------------------------------


def _enc_str(text: str) -> bytes:
    payload = text.encode("utf-8")
    return struct.pack(">I", len(payload)) + payload


def _dec_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    if offset + 4 > len(buffer):
        raise ProtocolError("truncated WAL string")
    length = struct.unpack_from(">I", buffer, offset)[0]
    offset += 4
    if offset + length > len(buffer):
        raise ProtocolError("truncated WAL string")
    try:
        text = buffer[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid UTF-8 in WAL record: {exc}") from None
    return text, offset + length


def _enc_row(row: Row) -> bytes:
    if len(row) > 0xFFFF:
        raise ProtocolError("row arity exceeds the WAL limit")
    parts = [struct.pack(">H", len(row))]
    parts.extend(encode_value(value) for value in row)
    return b"".join(parts)


def _dec_row(buffer: bytes, offset: int) -> Tuple[Row, int]:
    if offset + 2 > len(buffer):
        raise ProtocolError("truncated WAL row")
    arity = struct.unpack_from(">H", buffer, offset)[0]
    offset += 2
    values: List[Any] = []
    for __ in range(arity):
        value, offset = decode_value(buffer, offset)
        values.append(value)
    return tuple(values), offset


# -- record encoding ---------------------------------------------------------


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def encode_record(record: WalRecord) -> bytes:
    """Encode one record, CRC frame included."""
    body: bytes
    kind = record.kind
    if kind in (KIND_BEGIN, KIND_ABORT, KIND_FENCE):
        body = b""
    elif kind == KIND_COMMIT:
        if record.origin is None:
            body = b"\x00"
        else:
            body = b"\x01" + struct.pack(">II", *record.origin)
    elif kind in (KIND_INSERT, KIND_UPDATE):
        assert record.table is not None and record.row_id is not None
        assert record.row is not None
        body = (
            _enc_str(record.table)
            + struct.pack(">Q", record.row_id)
            + _enc_row(record.row)
        )
    elif kind == KIND_DELETE:
        assert record.table is not None and record.row_id is not None
        body = _enc_str(record.table) + struct.pack(">Q", record.row_id)
    elif kind == KIND_DDL:
        assert record.sql is not None
        body = _enc_str(record.sql)
    elif kind == KIND_CHECKPOINT:
        assert record.snapshot is not None
        body = _enc_snapshot(record.snapshot)
    else:
        raise ProtocolError(f"unknown WAL record kind {kind!r}")
    payload = kind.encode("ascii") + struct.pack(">Q", record.txn_id) + body
    return _frame(payload)


def decode_payload(payload: bytes) -> WalRecord:
    """Decode one record payload (the bytes the CRC covers)."""
    if len(payload) < 9:
        raise ProtocolError("WAL payload shorter than its fixed header")
    kind = chr(payload[0])
    if kind not in _KINDS:
        raise ProtocolError(f"unknown WAL record kind {payload[0]:#x}")
    txn_id = struct.unpack_from(">Q", payload, 1)[0]
    offset = 9
    if kind in (KIND_BEGIN, KIND_ABORT, KIND_FENCE):
        _expect_end(payload, offset)
        return WalRecord(kind=kind, txn_id=txn_id)
    if kind == KIND_COMMIT:
        if offset >= len(payload):
            raise ProtocolError("truncated commit record")
        flag = payload[offset]
        offset += 1
        origin: Optional[Tuple[int, int]] = None
        if flag == 1:
            if offset + 8 > len(payload):
                raise ProtocolError("truncated commit origin")
            client_id, seq = struct.unpack_from(">II", payload, offset)
            origin = (client_id, seq)
            offset += 8
        elif flag != 0:
            raise ProtocolError(f"invalid commit origin flag {flag:#x}")
        _expect_end(payload, offset)
        return WalRecord(kind=kind, txn_id=txn_id, origin=origin)
    if kind in (KIND_INSERT, KIND_UPDATE):
        table, offset = _dec_str(payload, offset)
        if offset + 8 > len(payload):
            raise ProtocolError("truncated WAL row id")
        row_id = struct.unpack_from(">Q", payload, offset)[0]
        offset += 8
        row, offset = _dec_row(payload, offset)
        _expect_end(payload, offset)
        return WalRecord(
            kind=kind, txn_id=txn_id, table=table, row_id=row_id, row=row
        )
    if kind == KIND_DELETE:
        table, offset = _dec_str(payload, offset)
        if offset + 8 > len(payload):
            raise ProtocolError("truncated WAL row id")
        row_id = struct.unpack_from(">Q", payload, offset)[0]
        offset += 8
        _expect_end(payload, offset)
        return WalRecord(kind=kind, txn_id=txn_id, table=table, row_id=row_id)
    if kind == KIND_DDL:
        sql, offset = _dec_str(payload, offset)
        _expect_end(payload, offset)
        return WalRecord(kind=kind, txn_id=txn_id, sql=sql)
    # KIND_CHECKPOINT
    snapshot, offset = _dec_snapshot(payload, offset)
    _expect_end(payload, offset)
    return WalRecord(kind=kind, txn_id=txn_id, snapshot=snapshot)


def _expect_end(payload: bytes, offset: int) -> None:
    if offset != len(payload):
        raise ProtocolError("trailing bytes inside WAL record")


# -- snapshot codec ----------------------------------------------------------


def _enc_snapshot(snapshot: Snapshot) -> bytes:
    parts: List[bytes] = [struct.pack(">I", len(snapshot.tables))]
    for table in snapshot.tables:
        parts.append(_enc_str(table.name))
        parts.append(struct.pack(">H", len(table.columns)))
        for column in table.columns:
            parts.append(_enc_str(column.name))
            parts.append(_enc_str(column.type_name))
            has_length = column.type_length is not None
            flags = (
                (1 if column.not_null else 0)
                | (2 if column.primary_key else 0)
                | (4 if has_length else 0)
            )
            parts.append(struct.pack(">B", flags))
            if has_length:
                assert column.type_length is not None
                parts.append(struct.pack(">I", column.type_length))
        parts.append(struct.pack(">H", len(table.indexes)))
        for index in table.indexes:
            parts.append(_enc_str(index.name))
            parts.append(struct.pack(">H", len(index.columns)))
            for name in index.columns:
                parts.append(_enc_str(name))
            parts.append(b"\x01" if index.unique else b"\x00")
        parts.append(struct.pack(">Q", table.total_slots))
        parts.append(struct.pack(">I", len(table.rows)))
        for row_id, row in table.rows:
            parts.append(struct.pack(">Q", row_id))
            parts.append(_enc_row(row))
    parts.append(struct.pack(">I", len(snapshot.views)))
    for view_sql in snapshot.views:
        parts.append(_enc_str(view_sql))
    parts.append(struct.pack(">I", len(snapshot.hwm)))
    for client_id, seq in snapshot.hwm:
        parts.append(struct.pack(">II", client_id, seq))
    parts.append(struct.pack(">Q", snapshot.mvcc_clock))
    return b"".join(parts)


def _dec_snapshot(buffer: bytes, offset: int) -> Tuple[Snapshot, int]:
    def _u(fmt: str, size: int) -> int:
        nonlocal offset
        if offset + size > len(buffer):
            raise ProtocolError("truncated WAL snapshot")
        value = struct.unpack_from(fmt, buffer, offset)[0]
        offset += size
        return int(value)

    tables: List[TableSnapshot] = []
    for __ in range(_u(">I", 4)):
        name, offset = _dec_str(buffer, offset)
        columns: List[ColumnDef] = []
        for __c in range(_u(">H", 2)):
            column_name, offset = _dec_str(buffer, offset)
            type_name, offset = _dec_str(buffer, offset)
            flags = _u(">B", 1)
            type_length = _u(">I", 4) if flags & 4 else None
            columns.append(
                ColumnDef(
                    name=column_name,
                    type_name=type_name,
                    type_length=type_length,
                    not_null=bool(flags & 1),
                    primary_key=bool(flags & 2),
                )
            )
        indexes: List[IndexDef] = []
        for __i in range(_u(">H", 2)):
            index_name, offset = _dec_str(buffer, offset)
            index_columns: List[str] = []
            for __n in range(_u(">H", 2)):
                column_name, offset = _dec_str(buffer, offset)
                index_columns.append(column_name)
            unique = _u(">B", 1)
            if unique not in (0, 1):
                raise ProtocolError("invalid index uniqueness flag")
            indexes.append(
                IndexDef(
                    name=index_name,
                    columns=tuple(index_columns),
                    unique=bool(unique),
                )
            )
        total_slots = _u(">Q", 8)
        rows: List[Tuple[int, Row]] = []
        for __r in range(_u(">I", 4)):
            row_id = _u(">Q", 8)
            row, offset = _dec_row(buffer, offset)
            rows.append((row_id, row))
        tables.append(
            TableSnapshot(
                name=name,
                columns=tuple(columns),
                indexes=tuple(indexes),
                total_slots=total_slots,
                rows=tuple(rows),
            )
        )
    views: List[str] = []
    for __v in range(_u(">I", 4)):
        view_sql, offset = _dec_str(buffer, offset)
        views.append(view_sql)
    hwm: List[Tuple[int, int]] = []
    for __h in range(_u(">I", 4)):
        client_id = _u(">I", 4)
        seq = _u(">I", 4)
        hwm.append((client_id, seq))
    mvcc_clock = _u(">Q", 8)
    return (
        Snapshot(
            tables=tuple(tables),
            views=tuple(views),
            hwm=tuple(hwm),
            mvcc_clock=mvcc_clock,
        ),
        offset,
    )


# -- scanning ----------------------------------------------------------------


def _try_record(data: bytes, offset: int) -> Tuple[Optional[WalRecord], int, str]:
    """Parse the record at *offset*.

    Returns ``(record, next_offset, "")`` on success, else
    ``(None, offset, status)`` where status is ``"torn"`` (not enough
    bytes for what the header promises) or ``"corrupt"`` (bad magic,
    absurd length, CRC mismatch, or an undecodable payload).
    """
    remaining = len(data) - offset
    if remaining < _HEADER.size:
        return None, offset, "torn"
    magic, length, crc = _HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        return None, offset, "corrupt"
    if length > MAX_PAYLOAD:
        return None, offset, "corrupt"
    start = offset + _HEADER.size
    if start + length > len(data):
        return None, offset, "torn"
    payload = bytes(data[start : start + length])
    if zlib.crc32(payload) != crc:
        return None, offset, "corrupt"
    try:
        record = decode_payload(payload)
    except ProtocolError:
        return None, offset, "corrupt"
    return record, start + length, ""


def scan_wal(data: bytes, strict: bool = True) -> WalScan:
    """Scan a WAL byte stream into its clean prefix of records.

    With ``strict`` (the default), damage followed by any intact record
    raises :class:`~repro.errors.WalCorruptError` — the damage is *in
    the middle* of the log and recovering only the prefix would silently
    lose the committed work behind it.  Damage with nothing valid after
    it is an ordinary crash tail: the scan stops cleanly and reports how
    the tail died.
    """
    scan = WalScan()
    offset = 0
    while offset < len(data):
        record, next_offset, status = _try_record(data, offset)
        if record is None:
            scan.tail_status = status
            scan.tail_error = (
                f"{status} record at offset {offset} "
                f"({len(data) - offset} trailing bytes)"
            )
            if strict:
                resync = _find_valid_record_after(data, offset)
                if resync is not None:
                    raise WalCorruptError(
                        f"WAL damaged mid-log: {scan.tail_error}, but an "
                        f"intact record follows at offset {resync} — "
                        f"refusing to silently drop it"
                    )
            break
        scan.records.append(record)
        offset = next_offset
    scan.clean_length = offset
    return scan


def _find_valid_record_after(data: bytes, failed_at: int) -> Optional[int]:
    """First offset past *failed_at* where an intact record parses.

    The resync probe behind strict mode: a hit means the damage is
    mid-log.  Probing is bounded to candidate magic bytes, so garbage
    tails cost one linear pass.
    """
    offset = data.find(MAGIC.to_bytes(1, "big"), failed_at + 1)
    while offset != -1:
        record, __, __status = _try_record(data, offset)
        if record is not None:
            return offset
        offset = data.find(MAGIC.to_bytes(1, "big"), offset + 1)
    return None


# -- the writer --------------------------------------------------------------


class WalWriter:
    """Appends records for one database's mutations to a disk.

    ``BEGIN`` is written lazily before a transaction's first logged
    operation, so read-only transactions cost zero appends.  ``commit``
    and ``abort`` are no-ops for transactions that never wrote.

    After the disk crashes, every logging call silently does nothing:
    writes that follow a power loss are lost by definition, and the
    server is about to find out via the :class:`~repro.errors.DiskCrashed`
    that the crashing append already raised.

    The writer also maintains the running per-client high-water mark
    (``hwm``) over commit origins — the in-memory twin of what recovery
    reconstructs from the log.
    """

    def __init__(self, disk: SimDisk, recorder: Optional[Any] = None) -> None:
        self.disk = disk
        self.recorder = recorder
        #: Transactions whose BEGIN has been written and COMMIT has not.
        self._begun: Dict[int, bool] = {}
        #: (client_id, seq) of the wire request currently being handled;
        #: stamped onto commit records for the durable high-water mark.
        self.origin: Optional[Tuple[int, int]] = None
        #: client_id -> highest sequence number whose request committed.
        self.hwm: Dict[int, int] = {}
        self.statistics = {"appends": 0, "commits": 0, "aborts": 0, "checkpoints": 0}

    @property
    def appends(self) -> int:
        return self.statistics["appends"]

    def _append(self, record: WalRecord) -> None:
        if self.disk.crashed:
            return
        self.disk.append(encode_record(record))
        self.statistics["appends"] += 1
        if self.recorder is not None:
            self.recorder.metrics.counter("wal.appends").inc()

    def _ensure_begun(self, txn_id: int) -> None:
        if txn_id not in self._begun:
            self._begun[txn_id] = True
            self._append(WalRecord(kind=KIND_BEGIN, txn_id=txn_id))

    # -- logging hooks ------------------------------------------------------

    def log_insert(self, txn_id: int, table: str, row_id: int, row: Row) -> None:
        self._ensure_begun(txn_id)
        self._append(
            WalRecord(
                kind=KIND_INSERT, txn_id=txn_id, table=table, row_id=row_id, row=row
            )
        )

    def log_update(self, txn_id: int, table: str, row_id: int, row: Row) -> None:
        self._ensure_begun(txn_id)
        self._append(
            WalRecord(
                kind=KIND_UPDATE, txn_id=txn_id, table=table, row_id=row_id, row=row
            )
        )

    def log_delete(self, txn_id: int, table: str, row_id: int) -> None:
        self._ensure_begun(txn_id)
        self._append(
            WalRecord(kind=KIND_DELETE, txn_id=txn_id, table=table, row_id=row_id)
        )

    def log_ddl(self, sql: str) -> None:
        """DDL is durable immediately: it is rejected inside transactions
        by the engine, so there is nothing to buffer or undo."""
        self._append(WalRecord(kind=KIND_DDL, sql=sql))

    def commit(self, txn_id: int) -> None:
        if self._begun.pop(txn_id, None) is None:
            return  # read-only transaction: nothing was logged
        origin = self.origin
        self._append(WalRecord(kind=KIND_COMMIT, txn_id=txn_id, origin=origin))
        self.statistics["commits"] += 1
        if origin is not None:
            client_id, seq = origin
            if seq > self.hwm.get(client_id, 0):
                self.hwm[client_id] = seq

    def abort(self, txn_id: int) -> None:
        if self._begun.pop(txn_id, None) is None:
            return
        self._append(WalRecord(kind=KIND_ABORT, txn_id=txn_id))
        self.statistics["aborts"] += 1

    def fence(self) -> None:
        """Mark a recovery boundary: transactions open before this point
        died with the crash and must never merge with post-restart
        transactions that happen to reuse their ids."""
        self._begun.clear()
        self._append(WalRecord(kind=KIND_FENCE))

    def checkpoint(self, snapshot: Snapshot) -> None:
        self._append(WalRecord(kind=KIND_CHECKPOINT, snapshot=snapshot))
        self.statistics["checkpoints"] += 1
