"""Deterministic crash-chaos simulator: contention workload + crash points.

Mirrors :class:`repro.concurrency.sim.ContentionSim` — N generator
clients resumed by a seeded scheduler over one simulated clock — but the
server runs on a :class:`Durability` bundle (WAL on a :class:`SimDisk`)
and the disk is armed with a seeded crash point: on the Nth WAL append
the disk dies (optionally leaving a torn final record or a bit-flipped
corrupt tail).  The server crashes, evicts every session, and the
scheduler restarts it through WAL recovery before resuming the clients,
which reconcile and finish their workload.

Every transaction is crash-idempotent via the *applied-token* pattern:
it inserts one unique token row in the same transaction as its two
counter increments.  After a crash the client cannot know whether an
in-flight commit made it to disk, so it queries its token — present
means the transaction is durable (count it committed), absent means it
was discarded at recovery (re-run it).

The audit at the end checks the two durability invariants byte-exactly:

* **zero lost committed updates** — every transaction a client counted
  as committed has its token row in the recovered database;
* **zero resurrected uncommitted writes** — the counter total equals
  exactly ``2 x`` the number of applied tokens, so no discarded
  transaction's increments survived (and none was applied twice).

A final clean restart then replays the full log once more and the state
is compared before/after — recovery of the finished log must be a
fixpoint.  Reports are a pure function of the configuration (wire client
ids are excluded), so two runs with the same seed are byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.concurrency.locks import LockManager
from repro.concurrency.sessions import SessionManager
from repro.errors import (
    DeadlockError,
    DurabilityError,
    LockTimeout,
    LockUnavailable,
    ReproError,
    ServerUnavailable,
    SessionError,
)
from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink
from repro.recovery.recover import Durability
from repro.recovery.simdisk import DiskFaultProfile, SimDisk
from repro.server.client import RemoteConnection
from repro.server.server import DatabaseServer
from repro.sqldb.database import Database

#: Fault flavours a crash point can take.
CRASH_FAILURES: Tuple[str, str, str] = ("clean", "torn", "corrupt")

_INCREMENT_SQL = "UPDATE counters SET value = value + 1 WHERE id = ?"
_TOKEN_SQL = "INSERT INTO applied (token, client) VALUES (?, ?)"
_TOKEN_CHECK_SQL = "SELECT token FROM applied WHERE token = ?"

#: Errors that mean "the server crashed / my session is gone".
_CRASH_ERRORS = (ServerUnavailable, SessionError)
#: Errors that abort the transaction but keep the session alive.
_ABORT_ERRORS = (DeadlockError, LockTimeout)


@dataclass(frozen=True)
class CrashConfig:
    """Configuration of one crash-chaos run.

    ``crash_at_append`` counts WAL appends *after* setup (schema, seed
    rows and the post-setup checkpoint are never the crash victim);
    ``None`` runs the workload on a perfect disk.  ``failure`` selects
    what the dying append leaves behind: ``clean`` (nothing), ``torn``
    (a prefix of the record) or ``corrupt`` (the record with one flipped
    bit).
    """

    clients: int = 3
    txns_per_client: int = 3
    hot_counters: int = 4
    crash_at_append: Optional[int] = None
    failure: str = "clean"
    seed: int = 0
    lock_timeout_s: float = 300.0
    latency_s: float = 0.05
    dtr_kbit_s: float = 512.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.txns_per_client < 1:
            raise ValueError("txns_per_client must be >= 1")
        if self.hot_counters < 2:
            raise ValueError("hot_counters must be >= 2 (txns touch two)")
        if self.failure not in CRASH_FAILURES:
            raise ValueError(f"failure must be one of {CRASH_FAILURES}")
        if self.crash_at_append is not None and self.crash_at_append < 1:
            raise ValueError("crash_at_append must be >= 1")

    def profile(self) -> DiskFaultProfile:
        """The disk fault profile this configuration arms."""
        if self.crash_at_append is None:
            raise ValueError("no crash point configured")
        return DiskFaultProfile(
            name=f"crash@{self.crash_at_append}-{self.failure}",
            crash_at_append=self.crash_at_append,
            torn=self.failure == "torn",
            corrupt=self.failure == "corrupt",
        )


class CrashChaosSim:
    """One deterministic crash-chaos run (see module docstring)."""

    #: Hard cap on scheduler steps; hitting it means livelock, a bug.
    MAX_STEPS = 50_000

    def __init__(self, config: CrashConfig) -> None:
        self.config = config
        self.clock = SimulatedClock()
        self.disk = SimDisk()
        self.durability = Durability(self.disk)
        database = self.durability.open()
        self._setup_schema(database)
        # Checkpoint the seed state so every recovery in this run starts
        # from the snapshot, then arm the crash point: workload appends
        # only from here on.
        self.durability.checkpoint()
        if config.crash_at_append is not None:
            self.disk.arm(config.profile(), seed=config.seed)
        self.locks = LockManager(
            clock=self.clock, timeout_s=config.lock_timeout_s
        )
        self.sessions = SessionManager(database, self.locks)
        self.server = DatabaseServer(
            database, sessions=self.sessions, durability=self.durability
        )
        self.connections: List[RemoteConnection] = []
        for __ in range(config.clients):
            link = NetworkLink(
                latency_s=config.latency_s,
                dtr_kbit_s=config.dtr_kbit_s,
                clock=self.clock,
            )
            self.connections.append(RemoteConnection(self.server, link))
        self.acked: Dict[int, List[int]] = {
            index: [] for index in range(config.clients)
        }
        self.counts: Dict[str, int] = {
            "committed": 0,
            "lock_waits": 0,
            "deadlock_aborts": 0,
            "timeout_aborts": 0,
            "crash_observations": 0,
            "reconciled_committed": 0,
            "reconciled_retried": 0,
        }
        self.restarts = 0
        #: Recovery report of the *crash* restart (the first one) — this
        #: is the scan that sees the torn/corrupt tail, unlike the final
        #: fixpoint recovery which reads an already-truncated log.
        self.crash_recovery: Optional[Dict[str, Any]] = None
        self.schedule: List[str] = []
        self.schedule_hash: Optional[str] = None

    # -- setup ---------------------------------------------------------------

    def _setup_schema(self, database: Database) -> None:
        database.execute(
            "CREATE TABLE counters (id INTEGER PRIMARY KEY, value INTEGER)"
        )
        database.execute(
            "CREATE TABLE applied (token INTEGER PRIMARY KEY, client INTEGER)"
        )
        for counter_id in range(1, self.config.hot_counters + 1):
            database.execute(
                "INSERT INTO counters (id, value) VALUES (?, ?)",
                [counter_id, 0],
            )

    # -- client behaviour ----------------------------------------------------

    def _token(self, index: int, txn: int) -> int:
        return (index + 1) * 1_000_000 + txn

    def _client(self, index: int) -> Generator[str, None, None]:
        """One client: open a session, run its transactions, close."""
        config = self.config
        connection = self.connections[index]
        rng = random.Random(config.seed * 1_000_003 + index)
        yield from self._guarded(index, connection.open_session, "open")
        txn = 0
        while txn < config.txns_per_client:
            token = self._token(index, txn)
            first = rng.randrange(1, config.hot_counters + 1)
            second = rng.randrange(1, config.hot_counters + 1)
            while second == first:
                second = rng.randrange(1, config.hot_counters + 1)
            outcome = yield from self._run_txn(index, token, (first, second))
            if outcome == "committed":
                self.acked[index].append(token)
                self.counts["committed"] += 1
                txn += 1
            elif outcome == "crash":
                applied = yield from self._reconcile(index, token)
                if applied:
                    self.acked[index].append(token)
                    self.counts["reconciled_committed"] += 1
                    txn += 1
                else:
                    self.counts["reconciled_retried"] += 1
            # "aborted" (deadlock/timeout): retry the same token.
        try:
            connection.close_session()
        except _CRASH_ERRORS:
            connection.mark_session_lost()
        yield "close"

    def _guarded(
        self, index: int, op: Callable[[], object], label: str
    ) -> Generator[str, None, None]:
        """Run a session op, waiting out crashes until it succeeds."""
        connection = self.connections[index]
        while True:
            try:
                op()
            except _CRASH_ERRORS:
                connection.mark_session_lost()
                self.counts["crash_observations"] += 1
                yield "crash-wait"
                continue
            yield label
            return

    def _run_txn(
        self, index: int, token: int, targets: Tuple[int, int]
    ) -> Generator[str, None, str]:
        """One attempt at an increment transaction; returns the outcome
        (``committed`` / ``aborted`` / ``crash``)."""
        connection = self.connections[index]
        try:
            connection.begin()
        except _CRASH_ERRORS:
            return self._observe_crash(index)
        yield "begin"
        statements: List[Tuple[str, List[int]]] = [
            (_TOKEN_SQL, [token, index]),
            (_INCREMENT_SQL, [targets[0]]),
            (_INCREMENT_SQL, [targets[1]]),
        ]
        for label, (sql, params) in zip(("token", "inc1", "inc2"), statements):
            while True:
                try:
                    connection.execute(sql, params)
                except LockUnavailable:
                    # Parked: the statement stays queued server-side;
                    # retry on the next resumption, transaction open.
                    self.counts["lock_waits"] += 1
                    yield "wait"
                    continue
                except _ABORT_ERRORS as error:
                    yield from self._acknowledge_abort(index, error)
                    return "aborted"
                except _CRASH_ERRORS:
                    return self._observe_crash(index)
                yield label
                break
        try:
            connection.commit()
        except _ABORT_ERRORS as error:
            yield from self._acknowledge_abort(index, error)
            return "aborted"
        except _CRASH_ERRORS:
            return self._observe_crash(index)
        yield "commit"
        return "committed"

    def _observe_crash(self, index: int) -> str:
        self.connections[index].mark_session_lost()
        self.counts["crash_observations"] += 1
        return "crash"

    def _acknowledge_abort(
        self, index: int, error: ReproError
    ) -> Generator[str, None, None]:
        key = (
            "deadlock_aborts"
            if isinstance(error, DeadlockError)
            else "timeout_aborts"
        )
        self.counts[key] += 1
        connection = self.connections[index]
        try:
            connection.rollback()
        except _CRASH_ERRORS:
            connection.mark_session_lost()
            self.counts["crash_observations"] += 1
        except ReproError:
            pass
        yield "abort"

    def _reconcile(self, index: int, token: int) -> Generator[str, None, bool]:
        """After a crash: is this transaction's token durable?

        The autocommit read needs no session; a still-crashed server (or
        a not-yet-cleared eviction) is waited out.
        """
        connection = self.connections[index]
        yield "crashed"
        while True:
            try:
                result = connection.execute(_TOKEN_CHECK_SQL, [token])
            except LockUnavailable:
                # Another client's open transaction holds the write lock
                # on the token table; park and retry like any reader.
                self.counts["lock_waits"] += 1
                yield "reconcile-wait"
                continue
            except _CRASH_ERRORS:
                connection.mark_session_lost()
                yield "reconcile-wait"
                continue
            yield "reconcile"
            return len(result.rows) > 0

    # -- run -----------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Drive all clients to completion and return the audited report."""
        generators = {
            index: self._client(index)
            for index in range(self.config.clients)
        }
        scheduler = random.Random(self.config.seed)
        steps = 0
        while generators:
            if self.server.crashed:
                self.server.restart()
                self.restarts += 1
                self._note_recovery()
                self.schedule.append(f"{steps}:restart")
            alive = sorted(generators)
            index = alive[scheduler.randrange(len(alive))]
            try:
                label = next(generators[index])
            except StopIteration:
                del generators[index]
                label = "done"
            self.schedule.append(f"{steps}:{index}:{label}")
            steps += 1
            if steps >= self.MAX_STEPS:
                raise RuntimeError(
                    f"crash sim exceeded {self.MAX_STEPS} steps (livelock?)"
                )
        if self.server.crashed:
            # The crash fired on the run's very last append.
            self.server.restart()
            self.restarts += 1
            self._note_recovery()
            self.schedule.append(f"{steps}:restart")
        self.schedule_hash = hashlib.sha256(
            "\n".join(self.schedule).encode()
        ).hexdigest()
        return self._report()

    def _note_recovery(self) -> None:
        if self.crash_recovery is not None:
            return
        last = self.durability.last_report
        if last is None:
            return
        self.crash_recovery = self._scrub_recovery(last.as_dict(), len(last.hwm))

    @staticmethod
    def _scrub_recovery(
        recovery: Dict[str, Any], hwm_clients: int
    ) -> Dict[str, Any]:
        # Wire client ids are allocated from a process-global counter, so
        # the high-water-mark map would differ between two in-process
        # runs of the same configuration; report only its cardinality.
        recovery.pop("hwm", None)
        recovery["hwm_clients"] = hwm_clients
        return recovery

    # -- audit ---------------------------------------------------------------

    def _state(self) -> Tuple[List[int], List[Tuple[int, int]], int]:
        database = self.server.database
        tokens = sorted(
            int(row[0])
            for row in database.execute("SELECT token FROM applied").rows
        )
        counters = sorted(
            (int(row[0]), int(row[1]))
            for row in database.execute(
                "SELECT id, value FROM counters"
            ).rows
        )
        return tokens, counters, sum(value for __, value in counters)

    def _report(self) -> Dict[str, Any]:
        tokens, counters, counter_sum = self._state()
        acked = sorted(
            token for tokens_ in self.acked.values() for token in tokens_
        )
        lost_committed = sorted(set(acked) - set(tokens))
        resurrected = counter_sum - 2 * len(tokens)
        # Fixpoint check: one more clean recovery of the finished log
        # must reproduce the exact same state.
        self.server.restart()
        tokens_after, counters_after, __ = self._state()
        fixpoint = tokens_after == tokens and counters_after == counters
        last = self.durability.last_report
        recovery: Dict[str, Any] = (
            {}
            if last is None
            else self._scrub_recovery(last.as_dict(), len(last.hwm))
        )
        wal = self.durability.wal
        report: Dict[str, Any] = {
            "config": asdict(self.config),
            "schedule": {"steps": len(self.schedule), "hash": self.schedule_hash},
            "counts": dict(self.counts),
            "restarts": self.restarts,
            "acked_txns": len(acked),
            "applied_txns": len(tokens),
            "counter_sum": counter_sum,
            "lost_committed": lost_committed,
            "resurrected": resurrected,
            "final_recovery_fixpoint": fixpoint,
            "crash": {
                "configured_at_append": self.config.crash_at_append,
                "failure": self.config.failure,
                "occurred": self.restarts > 0,
            },
            "disk": {
                "total_appends": self.disk.total_appends,
                "size_bytes": self.disk.size,
            },
            "crash_recovery": self.crash_recovery or {},
            "final_recovery": recovery,
            "wal": dict(wal.statistics) if wal is not None else {},
            "server": {
                key: self.server.statistics[key]
                for key in (
                    "crashes",
                    "recoveries",
                    "replayed_records",
                    "hwm_suppressed",
                    "unavailable_refusals",
                )
            },
            "sessions": dict(self.sessions.statistics),
            "locks": dict(self.locks.statistics),
        }
        return report


def report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON rendering (byte-comparable across runs)."""
    return json.dumps(report, sort_keys=True, indent=2)


def run_crash_chaos(config: CrashConfig) -> Dict[str, Any]:
    """Run one configuration and return its report."""
    return CrashChaosSim(config).run()


def sweep_profiles(
    max_crash_at: int = 17,
    failures: Tuple[str, ...] = CRASH_FAILURES,
) -> List[Tuple[int, str]]:
    """The (crash_at, failure) grid of a sweep: every append position in
    ``1..max_crash_at`` under every failure flavour."""
    return [
        (crash_at, failure)
        for crash_at in range(1, max_crash_at + 1)
        for failure in failures
    ]


def run_crash_sweep(
    seed: int = 0,
    max_crash_at: int = 17,
    failures: Tuple[str, ...] = CRASH_FAILURES,
    clients: int = 3,
    txns_per_client: int = 3,
) -> Dict[str, Any]:
    """Sweep the crash-point grid and audit every run.

    Raises :class:`DurabilityError` on the first violated invariant;
    otherwise returns a summary with one compact line per run.
    """
    runs: List[Dict[str, Any]] = []
    for crash_at, failure in sweep_profiles(max_crash_at, failures):
        config = CrashConfig(
            clients=clients,
            txns_per_client=txns_per_client,
            crash_at_append=crash_at,
            failure=failure,
            seed=seed,
        )
        report = run_crash_chaos(config)
        if report["lost_committed"]:
            raise DurabilityError(
                f"lost committed transactions {report['lost_committed']} "
                f"at crash point {crash_at} ({failure})"
            )
        if report["resurrected"]:
            raise DurabilityError(
                f"{report['resurrected']} resurrected uncommitted "
                f"increments at crash point {crash_at} ({failure})"
            )
        if not report["final_recovery_fixpoint"]:
            raise DurabilityError(
                f"final recovery not a fixpoint at crash point "
                f"{crash_at} ({failure})"
            )
        runs.append(
            {
                "crash_at": crash_at,
                "failure": failure,
                "restarts": report["restarts"],
                "acked": report["acked_txns"],
                "applied": report["applied_txns"],
                "counter_sum": report["counter_sum"],
                "tail_status": report["crash_recovery"].get("tail_status"),
                "discarded": report["crash_recovery"].get("txns_discarded"),
                "schedule_hash": report["schedule"]["hash"],
            }
        )
    return {
        "seed": seed,
        "profiles": len(runs),
        "clients": clients,
        "txns_per_client": txns_per_client,
        "all_invariants_held": True,
        "runs": runs,
    }
