"""Reproduction of "Tuning an SQL-Based PDM System in a Worldwide
Client/Server Environment" (Mueller, Dadam, Enderle, Feltes - ICDE 2001).

The package builds the paper's full stack from scratch:

* :mod:`repro.sqldb` - a relational engine with SQL:1999 recursion,
* :mod:`repro.network` - a deterministic WAN/LAN simulator,
* :mod:`repro.server` - the client/server protocol on top of both,
* :mod:`repro.pdm` - the PDM system (schema, generators, user actions),
* :mod:`repro.rules` - rule taxonomy, SQL translation, query modificator,
* :mod:`repro.model` - the analytic response-time model of Section 2,
* :mod:`repro.bench` - the harness regenerating Tables 2-4 / Figures 4-5.

Quickstart::

    from repro import build_scenario, ExpandStrategy
    from repro.model import TreeParameters
    from repro.network import WAN_512

    scenario = build_scenario(TreeParameters(4, 3, 0.6), WAN_512, seed=7)
    result = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
    )
    print(result.seconds, result.tree.node_count())
"""

from repro.bench.workload import Scenario, build_scenario
from repro.concurrency import (
    ContentionConfig,
    ContentionSim,
    LockManager,
    LockMode,
    SessionManager,
)
from repro.model import (
    Action,
    NetworkParameters,
    Strategy,
    TreeParameters,
    predict,
)
from repro.network import LAN, WAN_256, WAN_512, WAN_1024, NetworkLink
from repro.pdm import (
    CheckOutMode,
    ExpandStrategy,
    PDMClient,
    figure2_dataset,
    generate_product,
    new_pdm_database,
)
from repro.rules import Actions, Rule, RuleTable
from repro.server import DatabaseServer, RemoteConnection
from repro.server.multisite import (
    ReplicatedDatabase,
    build_replicated_deployment,
    make_site,
)
from repro.sqldb import Database

__version__ = "1.0.0"

__all__ = [
    "Database",
    "DatabaseServer",
    "RemoteConnection",
    "NetworkLink",
    "LAN",
    "WAN_256",
    "WAN_512",
    "WAN_1024",
    "PDMClient",
    "ExpandStrategy",
    "CheckOutMode",
    "generate_product",
    "figure2_dataset",
    "new_pdm_database",
    "Rule",
    "Actions",
    "RuleTable",
    "TreeParameters",
    "NetworkParameters",
    "Action",
    "Strategy",
    "predict",
    "Scenario",
    "build_scenario",
    "ReplicatedDatabase",
    "build_replicated_deployment",
    "make_site",
    "LockManager",
    "LockMode",
    "SessionManager",
    "ContentionConfig",
    "ContentionSim",
    "__version__",
]
