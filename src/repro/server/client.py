"""Client-side driver: ships requests over the simulated link.

Every :meth:`RemoteConnection.execute` call is one round trip: the SQL
text (plus bound parameters) travels to the server, the encoded result
set travels back, and the link's simulated clock advances by the latency
and transfer time of both messages.  This is the data-shipping behaviour
whose cost the paper analyses; reducing the number of these calls is the
whole point of the recursive-query approach.

Local query evaluation time is *not* charged, matching the paper:
"transmission costs are the dominating limitation factor.  Therefore
local query evaluation costs were ignored" (Section 6).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CheckOutError,
    CircuitOpenError,
    DeadlockError,
    DuplicateRequest,
    ExecutionError,
    LintViolation,
    LockTimeout,
    LockUnavailable,
    MessageDropped,
    ProtocolError,
    ReproError,
    ServerUnavailable,
    SessionError,
    SQLError,
    TimeoutError,
)
from repro.network.faults import CircuitBreaker, RetryPolicy
from repro.network.link import NetworkLink
from repro.obs import BYTES_BUCKETS, maybe_span
from repro.server import protocol
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer
from repro.sqldb import wire
from repro.sqldb.result import ResultSet

#: Error classes the client can reconstruct from ERROR frames.
_ERROR_TYPES = {
    "CheckOutError": CheckOutError,
    "DeadlockError": DeadlockError,
    "DuplicateRequest": DuplicateRequest,
    "ExecutionError": ExecutionError,
    "LintViolation": LintViolation,
    "LockTimeout": LockTimeout,
    "LockUnavailable": LockUnavailable,
    "ProtocolError": ProtocolError,
    "ServerUnavailable": ServerUnavailable,
    "SessionError": SessionError,
}

#: Server errors that mean "restart the whole transaction and try again".
RETRIABLE_TXN_ERRORS = (DeadlockError, LockTimeout, LockUnavailable)

#: Server errors that mean "your session is gone" (server crash/restart
#: dropped it): reopen the session before the next transaction attempt.
SESSION_LOST_ERRORS = (ServerUnavailable, SessionError)


class RemoteError(ReproError):
    """A server-side error re-raised at the client, preserving the server's
    error class name and message."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


class RemoteConnection:
    """A connection from a (possibly intercontinental) client to a server.

    Without a :class:`~repro.network.faults.RetryPolicy` the connection is
    the paper's idealised driver: one message out, one message back, no
    failure handling (an injected fault propagates to the caller).  With a
    policy, every request is wrapped in a SEQUENCED frame (client id +
    sequence number + CRC) and driven through a retry loop: lost messages
    are waited out for ``timeout_s`` simulated seconds, corrupted frames
    are detected via the CRC, retries back off exponentially with seeded
    jitter, and the server's replay cache makes retransmissions of
    non-idempotent statements safe.  A circuit breaker rejects calls
    locally once consecutive failures cross its threshold.
    """

    #: Distinct client ids so several connections to one server never
    #: collide in its replay cache.
    _next_client_id = itertools.count(1)

    def __init__(
        self,
        server: DatabaseServer,
        link: NetworkLink,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.server = server
        self.link = link
        self.closed = False
        self.retry_policy = retry_policy
        if circuit_breaker is None and retry_policy is not None:
            circuit_breaker = CircuitBreaker()
        self.circuit_breaker = circuit_breaker
        self.client_id = next(self._next_client_id) & 0xFFFFFFFF
        self._seq = itertools.count(1)
        self._backoff_rng = retry_policy.rng() if retry_policy else None
        self.statistics = {"round_trips": 0, "attempts": 0}
        #: Whether OPEN_SESSION succeeded.  With a session open, even a
        #: policy-less connection wraps requests in SEQUENCED frames (one
        #: attempt, no retries) so the server can route statements to this
        #: client's transaction.
        self._session_open = False
        self._txn_open = False
        #: Optional :class:`repro.obs.TraceRecorder` (see
        #: :func:`repro.obs.instrument_stack`); None disables tracing.
        self.recorder = None

    # -- core round trip ------------------------------------------------------

    @staticmethod
    def _opcode_label(frame: bytes) -> str:
        try:
            return Opcode(frame[0]).name
        except (IndexError, ValueError):
            return "UNKNOWN"

    def _ensure_open(self) -> None:
        if self.closed:
            raise ProtocolError("connection is closed")

    def _round_trip(self, request: bytes) -> bytes:
        self._ensure_open()
        recorder = self.recorder
        with maybe_span(
            recorder,
            "rpc.round_trip",
            kind="client",
            opcode=self._opcode_label(request),
        ):
            start = self.link.clock.now
            if self.retry_policy is not None:
                response = self._resilient_round_trip(request)
            elif self._session_open:
                response = self._sequenced_attempt(request)
            else:
                response = self._attempt(request)
            if recorder is not None:
                metrics = recorder.metrics
                metrics.histogram("client.round_trip_seconds").observe(
                    self.link.clock.now - start
                )
                metrics.histogram(
                    "client.request_bytes", BYTES_BUCKETS
                ).observe(len(request))
                metrics.histogram(
                    "client.response_bytes", BYTES_BUCKETS
                ).observe(len(response))
            return response

    def _attempt(self, request: bytes) -> bytes:
        """One bare request/response exchange (no failure handling)."""
        self.statistics["attempts"] += 1
        with maybe_span(
            self.recorder,
            "rpc.attempt",
            kind="client",
            request_bytes=len(request),
        ) as span:
            delivered = self.link.deliver(
                request, is_request=True, opcode=self._opcode_label(request)
            )
            response = self.server.handle(delivered)
            cpu_seconds = getattr(self.server, "last_cpu_seconds", 0.0)
            if cpu_seconds:
                # Server-side evaluation time (zero unless a CPU cost model
                # is configured, matching the paper's Section 6 convention).
                self.link.clock.advance(cpu_seconds, "server_cpu")
                self.link.stats.server_seconds += cpu_seconds
            response = self.link.deliver(
                response, is_request=False, opcode=self._opcode_label(response)
            )
            if span is not None:
                span.meta["response_bytes"] = len(response)
            self.statistics["round_trips"] += 1
            return response

    def _sequenced_attempt(self, request: bytes) -> bytes:
        """One sequenced exchange without retries (session mode on a
        policy-less connection): the SEQUENCED wrapper carries the client
        id that routes the statement to this client's session."""
        seq = next(self._seq) & 0xFFFFFFFF
        wrapped = protocol.encode_envelope(
            Opcode.SEQUENCED,
            protocol.encode_sequenced(self.client_id, seq, request),
        )
        raw = self._attempt(wrapped)
        inner = self._unwrap_sequenced(raw, seq)
        if inner is None:
            raise ProtocolError(
                f"response to sequence {seq} failed its integrity check"
            )
        return inner

    def _resilient_round_trip(self, request: bytes) -> bytes:
        policy = self.retry_policy
        breaker = self.circuit_breaker
        clock = self.link.clock
        stats = self.link.stats
        seq = next(self._seq) & 0xFFFFFFFF
        wrapped = protocol.encode_envelope(
            Opcode.SEQUENCED,
            protocol.encode_sequenced(self.client_id, seq, request),
        )
        failure: Optional[ReproError] = None
        for attempt in range(policy.max_attempts):
            if breaker is not None and not breaker.allow(clock.now):
                raise CircuitOpenError(
                    f"circuit open for another "
                    f"{breaker.seconds_until_trial(clock.now):.1f}s "
                    f"(simulated) after repeated failures"
                ) from failure
            if attempt:
                stats.retries += 1
                pause = policy.backoff_seconds(attempt, self._backoff_rng)
                stats.backoff_seconds += pause
                if self.recorder is not None:
                    self.recorder.event(
                        "rpc.retry", attempt=attempt + 1, backoff_s=pause
                    )
                    self.recorder.metrics.counter("client.retries").inc()
                clock.advance(pause, "backoff")
            deadline = clock.now + policy.timeout_s
            try:
                raw = self._attempt(wrapped)
            except MessageDropped as dropped:
                # Nobody will answer: wait out the rest of the timeout.
                stats.timeouts += 1
                if self.recorder is not None:
                    self.recorder.event(
                        "rpc.timeout", attempt=attempt + 1, reason=str(dropped)
                    )
                    self.recorder.metrics.counter("client.timeouts").inc()
                if clock.now < deadline:
                    stats.timeout_seconds += deadline - clock.now
                    clock.advance(deadline - clock.now, "timeout")
                failure = TimeoutError(
                    f"no response within {policy.timeout_s}s "
                    f"(attempt {attempt + 1}: {dropped})"
                )
            else:
                inner = self._unwrap_sequenced(raw, seq)
                if inner is not None:
                    if breaker is not None:
                        breaker.record_success()
                    return inner
                failure = ProtocolError(
                    f"response to sequence {seq} failed its integrity check"
                )
            if breaker is not None:
                breaker.record_failure(clock.now)
        raise TimeoutError(
            f"request abandoned after {policy.max_attempts} attempts"
        ) from failure

    def _unwrap_sequenced(self, raw: bytes, seq: int) -> Optional[bytes]:
        """Extract the inner response, or None for any transport damage.

        In resilient mode a healthy server always answers with a
        CRC-valid, sequence-matching SEQUENCED_RESULT (server-side errors
        arrive as ERROR frames *inside* that wrapper).  Everything else —
        undecodable envelope, CRC mismatch, wrong sequence number, or the
        server's own ``FrameCorrupted`` rejection of a mangled request —
        means the exchange was damaged in transit and should be retried.
        """
        try:
            opcode, body = protocol.decode_envelope(raw)
        except ProtocolError:
            return None
        if opcode is not Opcode.SEQUENCED_RESULT:
            return None
        try:
            client_id, response_seq, inner = protocol.decode_sequenced(body)
        except ProtocolError:
            return None
        if client_id != self.client_id or response_seq != seq:
            return None
        return inner

    # -- public API -------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute one SQL statement on the server (one round trip)."""
        self._ensure_open()
        request = protocol.encode_envelope(
            Opcode.QUERY, wire.encode_query(sql, params)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return wire.decode_result(body)

    def execute_batch(
        self, statements: Sequence[Tuple[str, Sequence[Any]]]
    ) -> List[Union[ResultSet, ReproError]]:
        """Execute N statements in ONE round trip (the pipelined batch).

        Returns one entry per statement, in order: a :class:`ResultSet`
        for successes and an *exception instance* (not raised) for
        statement-level failures, so one bad statement never poisons the
        batch.  Callers decide whether a per-statement error is fatal.

        An empty batch is answered locally — shipping zero statements
        across a WAN would pay a round trip for nothing.
        """
        self._ensure_open()
        if not statements:
            return []
        request = protocol.encode_envelope(
            Opcode.BATCH, protocol.encode_batch(statements)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.BATCH_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        entries = protocol.decode_batch_result(body)
        if len(entries) != len(statements):
            raise ProtocolError(
                f"batch of {len(statements)} statements answered with "
                f"{len(entries)} entries"
            )
        results: List[Union[ResultSet, ReproError]] = []
        for kind, payload in entries:
            if kind == protocol.BATCH_ENTRY_ERROR:
                results.append(self._remote_error(payload))
            else:
                results.append(wire.decode_result(payload))
        return results

    def server_stats(self) -> Dict[str, Any]:
        """Fetch the server's counter dictionary (one round trip).

        Includes the database-level counters prefixed ``db_`` —
        ``db_statements``, ``db_plan_cache_hits``, ``db_rows_returned`` —
        so plan-cache efficacy is observable per experiment.
        """
        self._ensure_open()
        request = protocol.encode_envelope(Opcode.STATS)
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.STATS_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return protocol.decode_stats(body)

    def call_procedure(self, name: str, args: Sequence[Any] = ()) -> List[Any]:
        """Invoke a server procedure (one round trip, function shipping)."""
        self._ensure_open()
        request = protocol.encode_envelope(
            Opcode.CALL_PROCEDURE, protocol.encode_procedure_call(name, args)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.PROCEDURE_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return protocol.decode_values(body)

    # -- sessions / transactions -------------------------------------------------

    def _session_op(self, opcode: Opcode, expect: Opcode) -> List[Any]:
        request = protocol.encode_envelope(
            opcode, protocol.encode_session_op(self.client_id)
        )
        response = self._round_trip(request)
        answer, body = protocol.decode_envelope(response)
        if answer is Opcode.ERROR:
            self._raise_remote(body)
        if answer is not expect:
            raise ProtocolError(f"unexpected response opcode {answer.name}")
        return protocol.decode_values(body)

    def open_session(self) -> None:
        """Open a server session keyed on this connection's client id.

        Required before :meth:`begin`; idempotent on the server side so a
        retransmitted handshake cannot fail.
        """
        self._ensure_open()
        self._session_op(Opcode.OPEN_SESSION, Opcode.SESSION_RESULT)
        self._session_open = True
        self.link.stats.sessions_open += 1

    def close_session(self) -> None:
        """Close the server session (rolls back any open transaction)."""
        self._ensure_open()
        self._session_op(Opcode.CLOSE_SESSION, Opcode.SESSION_RESULT)
        self._session_open = False
        self._txn_open = False
        self.link.stats.sessions_open -= 1

    def mark_session_lost(self) -> None:
        """Forget client-side session state after the server dropped it.

        Call this on :class:`ServerUnavailable` / :class:`SessionError`
        (crash eviction): the server-side session is gone, so there is
        nothing to close or roll back remotely — the next :meth:`begin`
        re-opens a session against the recovered server.
        """
        self._session_open = False
        self._txn_open = False

    def begin(self, read_only: bool = False) -> int:
        """Start a server-side transaction; returns its id.

        Opens the session implicitly on first use.  ``read_only=True``
        sends ``TXN_BEGIN_RO`` (``BEGIN READ ONLY``): the server rejects
        DML inside the transaction and, when built with MVCC, serves its
        reads from a lock-free snapshot.
        """
        self._ensure_open()
        if not self._session_open:
            self.open_session()
        opcode = Opcode.TXN_BEGIN_RO if read_only else Opcode.TXN_BEGIN
        values = self._session_op(opcode, Opcode.TXN_RESULT)
        self._txn_open = True
        if read_only:
            self.link.stats.readonly_txns += 1
        return int(values[1])

    def commit(self) -> None:
        """Commit this session's transaction.

        A :class:`DuplicateRequest` answer counts as success: it means a
        previous transmission of this very commit executed before a server
        crash and its sequence number is at or below the durably logged
        high-water mark — the commit is on disk, only the original
        response was lost with the restart.
        """
        self._ensure_open()
        try:
            self._session_op(Opcode.TXN_COMMIT, Opcode.TXN_RESULT)
        except DuplicateRequest:
            pass
        self._txn_open = False

    def rollback(self) -> None:
        """Roll back this session's transaction.

        A no-op success when the transaction is already gone (force-
        aborted as a deadlock victim) — rolling back must be safe to call
        from any failure path.
        """
        self._ensure_open()
        self._session_op(Opcode.TXN_ROLLBACK, Opcode.TXN_RESULT)
        self._txn_open = False
        self.link.stats.txn_aborts += 1

    def transaction(self) -> "_RemoteTransaction":
        """Context manager mirroring :meth:`Database.transaction`:
        commit on success, roll back on exception."""
        return _RemoteTransaction(self)

    def run_transaction(
        self,
        fn,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        """Run ``fn(connection)`` inside a transaction, restarting on
        concurrency conflicts.

        Any :class:`DeadlockError`, :class:`LockTimeout` or
        :class:`LockUnavailable` rolls the transaction back (a no-op if
        the server already aborted it), waits out the policy's backoff on
        the simulated clock and re-runs *fn* from scratch — so *fn* must
        be safe to re-execute, which 2PL guarantees as long as all its
        effects go through this transaction.  Raises
        :class:`repro.errors.TimeoutError` after ``max_attempts``
        restarts.

        A :class:`ServerUnavailable` or :class:`SessionError` (the server
        crashed and dropped this session) also restarts *fn*: the session
        is marked closed so the next attempt's :meth:`begin` re-opens it
        against the recovered server.  One caveat is inherent: a crash
        *during* the commit round trip leaves the outcome ambiguous (the
        commit record may or may not have hit the disk), and the re-run
        would apply the transaction twice if it did.  Transactions re-
        driven across crashes must therefore be crash-idempotent — check
        whether their effect is already present before re-applying (see
        the applied-token pattern in ``repro.recovery.chaos``).
        """
        policy = retry_policy or self.retry_policy or RetryPolicy()
        rng = policy.rng()
        last: Optional[ReproError] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                pause = policy.backoff_seconds(attempt, rng)
                self.link.stats.backoff_seconds += pause
                self.link.clock.advance(pause, "backoff")
            try:
                self.begin()
                result = fn(self)
                self.commit()
                return result
            except RETRIABLE_TXN_ERRORS as error:
                last = error
                try:
                    self.rollback()
                except ReproError:
                    pass
            except SESSION_LOST_ERRORS as error:
                last = error
                # The server-side session died with the crash; there is
                # nothing to roll back there and no session to speak to.
                self.mark_session_lost()
        raise TimeoutError(
            f"transaction abandoned after {policy.max_attempts} attempts"
        ) from last

    def ping(self) -> float:
        """Measure one empty round trip; returns the delay in seconds."""
        self._ensure_open()
        before = self.link.clock.now
        response = self._round_trip(protocol.encode_envelope(Opcode.PING))
        opcode, __ = protocol.decode_envelope(response)
        if opcode is not Opcode.PONG:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return self.link.clock.now - before

    def close(self) -> None:
        """Close the connection; closing an already-closed one is a no-op."""
        self.closed = True

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _raise_remote(self, body: bytes) -> None:
        raise self._remote_error(body)

    def _remote_error(self, body: bytes) -> ReproError:
        """Reconstruct (without raising) the exception an ERROR frame carries."""
        kind, message = protocol.decode_error(body)
        error_type = _ERROR_TYPES.get(kind)
        if error_type is not None:
            if error_type is LockUnavailable:
                self.link.stats.lock_waits += 1
            elif error_type is DeadlockError:
                self.link.stats.deadlocks += 1
            return error_type(message)
        if kind.endswith("Error") and kind in (
            "ParseError",
            "LexerError",
            "CatalogError",
            "TypeMismatchError",
            "IntegrityError",
        ):
            return SQLError(f"{kind}: {message}")
        return RemoteError(kind, message)


class _RemoteTransaction:
    """``with connection.transaction():`` — commit on success, roll back on
    any exception (tolerating an already-aborted deadlock victim)."""

    def __init__(self, connection: RemoteConnection) -> None:
        self.connection = connection
        self.txn_id: Optional[int] = None

    def __enter__(self) -> "_RemoteTransaction":
        self.txn_id = self.connection.begin()
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is None:
            self.connection.commit()
        else:
            try:
                self.connection.rollback()
            except ReproError:
                pass
