"""Client-side driver: ships requests over the simulated link.

Every :meth:`RemoteConnection.execute` call is one round trip: the SQL
text (plus bound parameters) travels to the server, the encoded result
set travels back, and the link's simulated clock advances by the latency
and transfer time of both messages.  This is the data-shipping behaviour
whose cost the paper analyses; reducing the number of these calls is the
whole point of the recursive-query approach.

Local query evaluation time is *not* charged, matching the paper:
"transmission costs are the dominating limitation factor.  Therefore
local query evaluation costs were ignored" (Section 6).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.errors import (
    CheckOutError,
    ExecutionError,
    ProtocolError,
    ReproError,
    SQLError,
)
from repro.network.link import NetworkLink
from repro.server import protocol
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer
from repro.sqldb import wire
from repro.sqldb.result import ResultSet

#: Error classes the client can reconstruct from ERROR frames.
_ERROR_TYPES = {
    "CheckOutError": CheckOutError,
    "ExecutionError": ExecutionError,
    "ProtocolError": ProtocolError,
}


class RemoteError(ReproError):
    """A server-side error re-raised at the client, preserving the server's
    error class name and message."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


class RemoteConnection:
    """A connection from a (possibly intercontinental) client to a server."""

    def __init__(self, server: DatabaseServer, link: NetworkLink) -> None:
        self.server = server
        self.link = link
        self.closed = False
        self.statistics = {"round_trips": 0}

    # -- core round trip ------------------------------------------------------

    @staticmethod
    def _opcode_label(frame: bytes) -> str:
        try:
            return Opcode(frame[0]).name
        except (IndexError, ValueError):
            return "UNKNOWN"

    def _round_trip(self, request: bytes) -> bytes:
        if self.closed:
            raise ProtocolError("connection is closed")
        self.link.transmit(
            len(request), is_request=True, opcode=self._opcode_label(request)
        )
        response = self.server.handle(request)
        cpu_seconds = getattr(self.server, "last_cpu_seconds", 0.0)
        if cpu_seconds:
            # Server-side evaluation time (zero unless a CPU cost model is
            # configured, matching the paper's Section 6 convention).
            self.link.clock.advance(cpu_seconds)
            self.link.stats.server_seconds += cpu_seconds
        self.link.transmit(
            len(response), is_request=False, opcode=self._opcode_label(response)
        )
        self.statistics["round_trips"] += 1
        return response

    # -- public API -------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute one SQL statement on the server (one round trip)."""
        request = protocol.encode_envelope(
            Opcode.QUERY, wire.encode_query(sql, params)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return wire.decode_result(body)

    def execute_batch(
        self, statements: Sequence[Tuple[str, Sequence[Any]]]
    ) -> List[Union[ResultSet, ReproError]]:
        """Execute N statements in ONE round trip (the pipelined batch).

        Returns one entry per statement, in order: a :class:`ResultSet`
        for successes and an *exception instance* (not raised) for
        statement-level failures, so one bad statement never poisons the
        batch.  Callers decide whether a per-statement error is fatal.

        An empty batch is answered locally — shipping zero statements
        across a WAN would pay a round trip for nothing.
        """
        if not statements:
            return []
        request = protocol.encode_envelope(
            Opcode.BATCH, protocol.encode_batch(statements)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.BATCH_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        entries = protocol.decode_batch_result(body)
        if len(entries) != len(statements):
            raise ProtocolError(
                f"batch of {len(statements)} statements answered with "
                f"{len(entries)} entries"
            )
        results: List[Union[ResultSet, ReproError]] = []
        for kind, payload in entries:
            if kind == protocol.BATCH_ENTRY_ERROR:
                results.append(self._remote_error(payload))
            else:
                results.append(wire.decode_result(payload))
        return results

    def server_stats(self) -> Dict[str, Any]:
        """Fetch the server's counter dictionary (one round trip).

        Includes the database-level counters prefixed ``db_`` —
        ``db_statements``, ``db_plan_cache_hits``, ``db_rows_returned`` —
        so plan-cache efficacy is observable per experiment.
        """
        request = protocol.encode_envelope(Opcode.STATS)
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.STATS_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return protocol.decode_stats(body)

    def call_procedure(self, name: str, args: Sequence[Any] = ()) -> List[Any]:
        """Invoke a server procedure (one round trip, function shipping)."""
        request = protocol.encode_envelope(
            Opcode.CALL_PROCEDURE, protocol.encode_procedure_call(name, args)
        )
        response = self._round_trip(request)
        opcode, body = protocol.decode_envelope(response)
        if opcode is Opcode.ERROR:
            self._raise_remote(body)
        if opcode is not Opcode.PROCEDURE_RESULT:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return protocol.decode_values(body)

    def ping(self) -> float:
        """Measure one empty round trip; returns the delay in seconds."""
        before = self.link.clock.now
        response = self._round_trip(protocol.encode_envelope(Opcode.PING))
        opcode, __ = protocol.decode_envelope(response)
        if opcode is not Opcode.PONG:
            raise ProtocolError(f"unexpected response opcode {opcode.name}")
        return self.link.clock.now - before

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _raise_remote(self, body: bytes) -> None:
        raise self._remote_error(body)

    def _remote_error(self, body: bytes) -> ReproError:
        """Reconstruct (without raising) the exception an ERROR frame carries."""
        kind, message = protocol.decode_error(body)
        error_type = _ERROR_TYPES.get(kind)
        if error_type is not None:
            return error_type(message)
        if kind.endswith("Error") and kind in (
            "ParseError",
            "LexerError",
            "CatalogError",
            "TypeMismatchError",
            "IntegrityError",
        ):
            return SQLError(f"{kind}: {message}")
        return RemoteError(kind, message)
