"""Multi-server deployment: replicated sites over heterogeneous links.

Paper Section 7 (outlook): "multi-server environments in conjunction with
distributed data management ... have to be taken into consideration."
This module implements the deployment the DaimlerChrysler setting
suggests: a *primary* PDM server (Germany) plus read replicas near the
remote engineering sites (Brazil), each reached over its own simulated
link.

* Reads are routed to the site with the lowest expected round-trip cost —
  typically a LAN-attached replica, which makes even navigational access
  tolerable again.
* Writes (check-out!) must go to the primary and are propagated to every
  replica, either synchronously (the caller waits for the slowest site)
  or asynchronously (replicas lag until :meth:`ReplicatedDatabase.flush`)
  — the classic consistency/latency trade-off the paper's outlook points
  at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.network.link import NetworkLink
from repro.network.profiles import LinkProfile
from repro.server.client import RemoteConnection
from repro.server.server import DatabaseServer
from repro.sqldb.database import Database
from repro.sqldb.result import ResultSet


@dataclass
class Site:
    """One server location: its database, server, link and connection."""

    name: str
    database: Database
    server: DatabaseServer
    link: NetworkLink
    connection: RemoteConnection

    @property
    def expected_round_trip_s(self) -> float:
        """Cost estimate used by the read router: two latencies plus one
        packet each way at the site's data rate."""
        per_packet = self.link.transfer_seconds_for(self.link.packet_bytes)
        return 2 * self.link.latency_s + 2 * per_packet


def make_site(
    name: str,
    database: Database,
    profile: LinkProfile,
    install_procedures=None,
) -> Site:
    """Wire one site from a database and a link profile."""
    server = DatabaseServer(database)
    if install_procedures is not None:
        install_procedures(server)
    link = profile.create_link()
    return Site(
        name=name,
        database=database,
        server=server,
        link=link,
        connection=RemoteConnection(server, link),
    )


class ReplicatedDatabase:
    """A primary site plus read replicas with write propagation."""

    def __init__(self, primary: Site, replicas: Sequence[Site]) -> None:
        names = [primary.name] + [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ProtocolError("site names must be unique")
        self.primary = primary
        self.replicas = list(replicas)
        #: Pending asynchronous write statements per replica name.
        self._backlog: Dict[str, List[Tuple[str, Tuple[Any, ...]]]] = {
            replica.name: [] for replica in self.replicas
        }
        self.statistics = {
            "reads": 0,
            "writes": 0,
            "replicated_statements": 0,
            "stale_reads": 0,
        }
        #: Whether the most recent :meth:`execute_read` hit a lagging
        #: replica (pending asynchronous writes it had not applied yet).
        self.last_read_stale = False

    # -- routing ------------------------------------------------------------

    def sites(self) -> List[Site]:
        return [self.primary] + self.replicas

    def site(self, name: str) -> Site:
        for candidate in self.sites():
            if candidate.name == name:
                return candidate
        raise ProtocolError(f"unknown site {name!r}")

    def nearest_site(self) -> Site:
        """The site a read should go to (lowest expected round trip)."""
        return min(self.sites(), key=lambda site: site.expected_round_trip_s)

    # -- reads ----------------------------------------------------------------

    def execute_read(
        self, sql: str, params: Sequence[Any] = ()
    ) -> Tuple[ResultSet, float, Site]:
        """Run a query on the nearest site; return (result, seconds, site).

        A replica read may observe stale data if asynchronous writes are
        pending — such reads are flagged in :attr:`last_read_stale` and
        counted in ``statistics["stale_reads"]``; call :meth:`flush`
        first to avoid them.
        """
        site = self.nearest_site()
        before = site.link.clock.now
        result = site.connection.execute(sql, params)
        self.statistics["reads"] += 1
        self.last_read_stale = self.lag(site.name) > 0
        if self.last_read_stale:
            self.statistics["stale_reads"] += 1
        return result, site.link.clock.now - before, site

    # -- writes --------------------------------------------------------------

    def execute_write(
        self,
        sql: str,
        params: Sequence[Any] = (),
        synchronous: bool = True,
    ) -> Tuple[ResultSet, float]:
        """Run a DML statement on the primary and propagate to replicas.

        Returns (primary result, perceived seconds).  Synchronous mode
        waits for the slowest replica (propagation happens in parallel, so
        the perceived extra delay is the maximum, not the sum);
        asynchronous mode queues the statement per replica.
        """
        before = self.primary.link.clock.now
        result = self.primary.connection.execute(sql, params)
        seconds = self.primary.link.clock.now - before
        self.statistics["writes"] += 1
        if synchronous:
            seconds += self._propagate_now(sql, params)
        else:
            for replica in self.replicas:
                self._backlog[replica.name].append((sql, tuple(params)))
        return result, seconds

    def call_procedure_write(
        self,
        name: str,
        args: Sequence[Any] = (),
        synchronous: bool = True,
    ) -> Tuple[List[Any], float]:
        """Run a state-changing server procedure on the primary and replay
        it on every replica (check-out must lock the object on all sites).

        Returns (primary's result values, perceived seconds).  The replay
        assumes the procedure is deterministic given the database state —
        true for the check-out/check-in procedures shipped here.
        """
        before = self.primary.link.clock.now
        values = self.primary.connection.call_procedure(name, args)
        seconds = self.primary.link.clock.now - before
        self.statistics["writes"] += 1
        if synchronous:
            slowest = 0.0
            for replica in self.replicas:
                replica_before = replica.link.clock.now
                replica.connection.call_procedure(name, args)
                self.statistics["replicated_statements"] += 1
                slowest = max(slowest, replica.link.clock.now - replica_before)
            seconds += slowest
        else:
            for replica in self.replicas:
                self._backlog[replica.name].append((("procedure", name), tuple(args)))
        return values, seconds

    def _propagate_now(self, sql: str, params: Sequence[Any]) -> float:
        slowest = 0.0
        for replica in self.replicas:
            before = replica.link.clock.now
            replica.connection.execute(sql, params)
            self.statistics["replicated_statements"] += 1
            slowest = max(slowest, replica.link.clock.now - before)
        return slowest

    # -- asynchronous replication ------------------------------------------------

    def lag(self, site_name: str) -> int:
        """Number of statements a replica is behind the primary."""
        if site_name == self.primary.name:
            return 0
        return len(self._backlog[site_name])

    def flush(self, site_name: Optional[str] = None) -> float:
        """Apply pending asynchronous writes (one replica or all).

        Returns the simulated time the slowest flushed replica needed.
        """
        names = (
            [site_name]
            if site_name is not None
            else [replica.name for replica in self.replicas]
        )
        slowest = 0.0
        for name in names:
            replica = self.site(name)
            pending = self._backlog[name]
            before = replica.link.clock.now
            # Pop each statement only once it has been applied: a failure
            # mid-flush (replica outage) must leave the unapplied tail —
            # the failed statement included — queued for the next flush,
            # not silently dropped.
            while pending:
                statement, params = pending[0]
                if isinstance(statement, tuple) and statement[0] == "procedure":
                    replica.connection.call_procedure(statement[1], params)
                else:
                    replica.connection.execute(statement, params)
                pending.pop(0)
                self.statistics["replicated_statements"] += 1
            slowest = max(slowest, replica.link.clock.now - before)
        return slowest


def build_replicated_deployment(
    product,
    primary_profile: LinkProfile,
    replica_profiles: Dict[str, LinkProfile],
    primary_name: str = "primary",
) -> ReplicatedDatabase:
    """Create one database per site, load the same product everywhere, and
    wire the replication topology."""
    from repro.pdm.schema import (
        create_pdm_schema,
        install_checkout_procedures,
        load_product,
    )

    def new_loaded_database() -> Database:
        database = Database()
        create_pdm_schema(database)
        load_product(database, product)
        return database

    primary = make_site(
        primary_name,
        new_loaded_database(),
        primary_profile,
        install_procedures=install_checkout_procedures,
    )
    replicas = [
        make_site(
            name,
            new_loaded_database(),
            profile,
            install_procedures=install_checkout_procedures,
        )
        for name, profile in replica_profiles.items()
    ]
    return ReplicatedDatabase(primary, replicas)
