"""The database server: executes wire requests against a local Database.

Besides plain query execution, the server supports *server procedures* —
named Python callables installed next to the database.  These model the
paper's conclusion for check-out ("application-specific functionality
performing the desired user action has to be installed at the database
server", Section 6): the whole multi-statement operation runs server-side
and only one round trip crosses the WAN.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import Severity, errors_only
from repro.errors import (
    DeadlockError,
    DiskCrashed,
    DuplicateRequest,
    DurabilityError,
    FrameCorrupted,
    LintViolation,
    LockTimeout,
    LockUnavailable,
    ProtocolError,
    ReproError,
    ServerUnavailable,
    SQLError,
)
from repro.obs import ROWS_BUCKETS, maybe_span
from repro.server import protocol
from repro.server.protocol import Opcode
from repro.sqldb import wire
from repro.sqldb.database import Database

#: A server procedure receives the database and the call arguments and
#: returns a flat list of values shipped back to the client.
ServerProcedure = Callable[..., Sequence[Any]]


class CpuCostModel:
    """Simulated server-side query evaluation cost.

    The paper deliberately ignores local evaluation time ("transmission
    costs are the dominating limitation factor", Section 6) but notes that
    "in higher bandwidth environments ... it may be reasonable to take
    local query execution time into consideration".  This model charges a
    fixed cost per statement plus a cost per row the executor scanned;
    the defaults of zero reproduce the paper's convention.
    """

    def __init__(
        self,
        seconds_per_statement: float = 0.0,
        seconds_per_row_scanned: float = 0.0,
    ) -> None:
        self.seconds_per_statement = seconds_per_statement
        self.seconds_per_row_scanned = seconds_per_row_scanned

    @property
    def enabled(self) -> bool:
        return self.seconds_per_statement > 0 or self.seconds_per_row_scanned > 0

    def cost(self, statements: int, rows_scanned: int) -> float:
        return (
            statements * self.seconds_per_statement
            + rows_scanned * self.seconds_per_row_scanned
        )


class DatabaseServer:
    """Request handler bound to one :class:`Database` instance."""

    def __init__(
        self,
        database: Database,
        cpu_cost: Optional[CpuCostModel] = None,
        strict_lint: bool = False,
        sessions=None,
        durability=None,
    ) -> None:
        self.database = database
        self.cpu_cost = cpu_cost if cpu_cost is not None else CpuCostModel()
        #: Optional :class:`repro.recovery.Durability` bundle.  With one,
        #: the server has a deterministic :meth:`crash`/:meth:`restart`
        #: lifecycle: a :class:`DiskCrashed` from the WAL takes the server
        #: down, and restart rebuilds the database by log replay.
        self.durability = durability
        #: While True every request is refused with
        #: :class:`ServerUnavailable` (sequenced requests get a wrapped
        #: refusal so session-mode clients see it as a reply, not noise).
        self.crashed = False
        #: Optional :class:`repro.concurrency.SessionManager`; without one
        #: the session/transaction opcodes are rejected and every wire
        #: statement runs on the database's default session, as before.
        self.sessions = sessions
        #: Client id of the SEQUENCED frame being handled (routes QUERY /
        #: BATCH statements to that client's session transaction).
        self._active_client: Optional[int] = None
        #: With strict lint on, statements with ERROR-severity analyzer
        #: findings (non-linear / non-monotonic recursion, misplaced tree
        #: conditions) are rejected with a :class:`LintViolation` ERROR
        #: frame *before* execution — the statement never runs.
        self.strict_lint = strict_lint
        #: sql text -> LintViolation (or None for clean/unlintable text);
        #: a navigational client repeats identical statement text, so the
        #: gate is an LRU on exactly that text.
        self._lint_cache: "OrderedDict[str, Optional[LintViolation]]" = (
            OrderedDict()
        )
        self.lint_cache_size = 256
        #: CPU seconds charged for the most recent request (consumed by
        #: the client driver to advance the simulated clock).
        self.last_cpu_seconds = 0.0
        #: Rows the executor scanned for the current request, accumulated
        #: per statement so a BATCH of N statements is charged for all N
        #: scans, not just the last one.
        self._request_rows_scanned = 0
        #: Optional :class:`repro.obs.TraceRecorder` (see
        #: :func:`repro.obs.instrument_stack`); None keeps handling
        #: untraced and free.
        self.recorder = None
        self._procedures: Dict[str, ServerProcedure] = {}
        #: (client id, sequence number) -> wrapped response.  Answering a
        #: retransmission from here (instead of re-executing) is what
        #: makes retried EXECUTE/BATCH requests idempotent.
        self._replay_cache: "OrderedDict[Tuple[int, int], bytes]" = OrderedDict()
        self.replay_cache_size = 512
        self.statistics = {
            "queries": 0,
            "procedure_calls": 0,
            "batches": 0,
            "batch_statements": 0,
            "errors": 0,
            "cpu_seconds": 0.0,
            "sequenced_requests": 0,
            "duplicates_suppressed": 0,
            "crc_rejects": 0,
            "lint_checks": 0,
            "lint_rejections": 0,
            "sessions_open": 0,
            "lock_waits": 0,
            "deadlocks": 0,
            "txn_aborts": 0,
            "readonly_txns": 0,
            "crashes": 0,
            "recoveries": 0,
            "replayed_records": 0,
            "hwm_suppressed": 0,
            "unavailable_refusals": 0,
        }

    def _lint_gate(self, sql: str) -> None:
        """Raise :class:`LintViolation` for ERROR-severity findings.

        Purely static: the analyzer parses and plans but never executes,
        so a gated statement has no effect on the database whatsoever.
        Lint failures of the analyzer itself (unparseable text, unknown
        tables) are swallowed — execution will report the real error.
        """
        if not self.strict_lint:
            return
        self.statistics["lint_checks"] += 1
        if sql in self._lint_cache:
            self._lint_cache.move_to_end(sql)
            violation = self._lint_cache[sql]
        else:
            violation = None
            try:
                findings = self.database.lint(sql)
            except SQLError:
                findings = []
            errors = errors_only(findings)
            if errors:
                details = "; ".join(
                    f"{f.rule_id} [{f.node_path}] {f.message}" for f in errors
                )
                violation = LintViolation(
                    f"statement rejected by strict lint: {details}"
                )
            self._lint_cache[sql] = violation
            while len(self._lint_cache) > self.lint_cache_size:
                self._lint_cache.popitem(last=False)
        if violation is not None:
            self.statistics["lint_rejections"] += 1
            raise violation

    def _script_lint_gate(
        self, statements: Sequence[Tuple[str, Sequence[Any]]]
    ) -> None:
        """Raise :class:`LintViolation` for C-rule ERRORs in a batch.

        A multi-statement BATCH is a transaction script: with strict lint
        on it runs through the transaction analyzer
        (:mod:`repro.analysis.txn`) *before the first statement
        executes*, and a C-rule ERROR (non-idempotent DML outside a
        retry envelope, DDL inside a transaction) rejects the whole
        batch — the database state is untouched.  SEQUENCED batches are
        analyzed as sequenced (the replay cache makes retries
        exactly-once, so C002 does not apply).  Per-statement base rules
        are still gated one by one by :meth:`_lint_gate`, preserving the
        entry-level error shape for non-script violations.
        """
        if not self.strict_lint or len(statements) < 2:
            return
        self.statistics["lint_checks"] += 1
        sequenced = self._active_client is not None
        joined = ";\n".join(sql for sql, __ in statements)
        key = f"script:{int(sequenced)}:{joined}"
        if key in self._lint_cache:
            self._lint_cache.move_to_end(key)
            violation = self._lint_cache[key]
        else:
            from repro.analysis import analyze_transaction_sql

            violation = None
            try:
                findings = analyze_transaction_sql(
                    joined, database=self.database, sequenced=sequenced
                )
            except SQLError:
                # Unparseable as a script: execution reports the real
                # error per entry with full context.
                findings = []
            errors = [
                f
                for f in findings
                if f.severity >= Severity.ERROR and f.rule_id.startswith("C")
            ]
            if errors:
                details = "; ".join(
                    f"{f.rule_id} [{f.node_path}] {f.message}" for f in errors
                )
                violation = LintViolation(
                    f"batch rejected by strict script lint: {details}"
                )
            self._lint_cache[key] = violation
            while len(self._lint_cache) > self.lint_cache_size:
                self._lint_cache.popitem(last=False)
        if violation is not None:
            self.statistics["lint_rejections"] += 1
            raise violation

    def register_procedure(self, name: str, procedure: ServerProcedure) -> None:
        """Install a server procedure callable via CALL_PROCEDURE requests."""
        self._procedures[name.lower()] = procedure

    def procedure_names(self) -> List[str]:
        return sorted(self._procedures)

    def handle(self, frame: bytes) -> bytes:
        """Process one request envelope and return the response envelope.

        Errors raised by the engine are converted into ERROR envelopes, so
        a malformed query costs a round trip but never kills the server —
        matching real client/server DBMS behaviour.
        """
        if self.crashed:
            return self._refuse_unavailable(frame)
        if frame[:1] == bytes([int(Opcode.SEQUENCED)]):
            return self._handle_sequenced(frame[1:])
        self.last_cpu_seconds = 0.0
        self._request_rows_scanned = 0
        statements_before = self.database.statistics["statements"]
        recorder = self.recorder
        with maybe_span(
            recorder, "server.handle", kind="server", frame_bytes=len(frame)
        ) as span:
            try:
                opcode, body = protocol.decode_envelope(frame)
                if span is not None:
                    span.meta["opcode"] = opcode.name
                if opcode is Opcode.QUERY:
                    response = self._handle_query(body)
                elif opcode is Opcode.CALL_PROCEDURE:
                    response = self._handle_procedure(body)
                elif opcode is Opcode.BATCH:
                    response = self._handle_batch(body)
                elif opcode is Opcode.STATS:
                    response = self._handle_stats(body)
                elif opcode is Opcode.PING:
                    response = protocol.encode_envelope(Opcode.PONG)
                elif opcode in protocol.SESSION_OPCODES:
                    response = self._handle_session_op(opcode, body)
                else:
                    raise ProtocolError(
                        f"unexpected request opcode {opcode.name}"
                    )
            except DiskCrashed as error:
                # The WAL disk lost power mid-append: all volatile state
                # (sessions, locks, caches, the in-memory tables) is gone.
                # Take the server down; only restart() brings it back.
                self.crash()
                self.statistics["errors"] += 1
                if span is not None:
                    span.meta["error"] = type(error).__name__
                return protocol.encode_envelope(
                    Opcode.ERROR,
                    protocol.encode_error(
                        ServerUnavailable(f"server crashed: {error}")
                    ),
                )
            except ReproError as error:
                self._note_concurrency_error(error)
                self.statistics["errors"] += 1
                if span is not None:
                    span.meta["error"] = type(error).__name__
                return protocol.encode_envelope(
                    Opcode.ERROR, protocol.encode_error(error)
                )
            except Exception as error:  # noqa: BLE001 — last-resort guard
                # A bug below the wire layer (or a misbehaving server
                # procedure) must cost the client an error round trip,
                # never kill the server loop.
                self.statistics["errors"] += 1
                if span is not None:
                    span.meta["error"] = type(error).__name__
                    span.meta["unexpected"] = True
                wrapped = ProtocolError(
                    f"internal server error: "
                    f"{type(error).__name__}: {error}"
                )
                return protocol.encode_envelope(
                    Opcode.ERROR, protocol.encode_error(wrapped)
                )
            if self.cpu_cost.enabled:
                statements = (
                    self.database.statistics["statements"] - statements_before
                )
                self.last_cpu_seconds = self.cpu_cost.cost(
                    statements, self._request_rows_scanned
                )
                self.statistics["cpu_seconds"] += self.last_cpu_seconds
            return response

    def _handle_sequenced(self, body: bytes) -> bytes:
        """At-most-once execution for sequenced requests.

        A CRC-failed body (bit flip or truncation in transit) is answered
        with a retriable ``FrameCorrupted`` error frame; a (client, seq)
        pair seen before is answered from the replay cache *without*
        touching the database, so a retransmitted UPDATE never applies
        twice; anything else is handled normally and the wrapped response
        cached.
        """
        try:
            client_id, seq, inner = protocol.decode_sequenced(body)
        except ProtocolError as error:
            self.statistics["crc_rejects"] += 1
            self.statistics["errors"] += 1
            self.last_cpu_seconds = 0.0
            return protocol.encode_envelope(
                Opcode.ERROR,
                protocol.encode_error(FrameCorrupted(str(error))),
            )
        if inner[:1] == bytes([int(Opcode.SEQUENCED)]):
            self.statistics["errors"] += 1
            self.last_cpu_seconds = 0.0
            return protocol.encode_envelope(
                Opcode.ERROR,
                protocol.encode_error(
                    ProtocolError("nested sequenced frames are not allowed")
                ),
            )
        self.statistics["sequenced_requests"] += 1
        key = (client_id, seq)
        cached = self._replay_cache.get(key)
        recorder = self.recorder
        if cached is not None:
            self.statistics["duplicates_suppressed"] += 1
            self.last_cpu_seconds = 0.0
            with maybe_span(
                recorder,
                "server.handle",
                kind="server",
                sequenced=True,
                client_id=client_id,
                seq=seq,
                replay_hit=True,
            ):
                pass
            if recorder is not None:
                recorder.metrics.counter("server.replay_hits").inc()
            return cached
        wal = self.database.wal
        if wal is not None and 0 < seq <= wal.hwm.get(client_id, 0):
            # The durable high-water mark proves this sequence number
            # already drove a commit before a crash wiped the replay
            # cache.  Re-executing would apply the work twice; answer
            # with a distinguishable refusal instead (at-most-once
            # across restarts).
            self.statistics["hwm_suppressed"] += 1
            wrapped = protocol.encode_envelope(
                Opcode.SEQUENCED_RESULT,
                protocol.encode_sequenced(
                    client_id,
                    seq,
                    protocol.encode_envelope(
                        Opcode.ERROR,
                        protocol.encode_error(
                            DuplicateRequest(
                                f"sequence {seq} of client {client_id} was "
                                f"executed and committed before a server "
                                f"restart; its response was lost with the "
                                f"crash"
                            )
                        ),
                    ),
                ),
            )
            self._replay_cache[key] = wrapped
            return wrapped
        with maybe_span(
            recorder,
            "server.sequenced",
            kind="server",
            client_id=client_id,
            seq=seq,
        ):
            previous = self._active_client
            previous_origin = wal.origin if wal is not None else None
            self._active_client = client_id
            if wal is not None:
                # Commits performed while handling this request carry its
                # (client, seq) into the log — the durable twin of the
                # replay cache.
                wal.origin = (client_id, seq)
            try:
                response = self.handle(inner)
            finally:
                self._active_client = previous
                if wal is not None:
                    wal.origin = previous_origin
        wrapped = protocol.encode_envelope(
            Opcode.SEQUENCED_RESULT,
            protocol.encode_sequenced(client_id, seq, response),
        )
        if self.crashed:
            # The request crashed the server: never cache the refusal —
            # a retry after restart must re-resolve against the durable
            # high-water mark, not replay a stale "unavailable".
            return wrapped
        self._replay_cache[key] = wrapped
        while len(self._replay_cache) > self.replay_cache_size:
            self._replay_cache.popitem(last=False)
        return wrapped

    # -- crash / restart ----------------------------------------------------

    def _refuse_unavailable(self, frame: bytes) -> bytes:
        """Answer a request arriving at a crashed server.

        Sequenced requests get the refusal wrapped in a SEQUENCED_RESULT
        (CRC-framed, matching the request's client and sequence number)
        so session-mode clients decode it as a definite answer instead of
        discarding it as transport damage and retrying forever.  Nothing
        is cached: the refusal describes the server, not the request.
        """
        self.last_cpu_seconds = 0.0
        self.statistics["unavailable_refusals"] += 1
        error_frame = protocol.encode_envelope(
            Opcode.ERROR,
            protocol.encode_error(
                ServerUnavailable(
                    "server is crashed; wait for restart and retry"
                )
            ),
        )
        if frame[:1] == bytes([int(Opcode.SEQUENCED)]):
            try:
                client_id, seq, __ = protocol.decode_sequenced(frame[1:])
            except ProtocolError:
                return error_frame
            return protocol.encode_envelope(
                Opcode.SEQUENCED_RESULT,
                protocol.encode_sequenced(client_id, seq, error_frame),
            )
        return error_frame

    def crash(self) -> None:
        """Deterministic power-off: drop every piece of volatile state.

        Sessions are evicted through the same path a single dead client's
        eviction uses (rolling back their transactions, which releases
        their 2PL locks in order), the lock table and the replay/lint
        caches are cleared, and the server refuses all requests until
        :meth:`restart`.  Idempotent.  The database object stays referenced
        but is semantically dead — restart replaces it with the recovered
        one.
        """
        if self.crashed:
            return
        self.crashed = True
        self.statistics["crashes"] += 1
        if self.sessions is not None:
            self.sessions.evict_all()
            self.statistics["sessions_open"] = 0
        if self.database.locks is not None:
            self.database.locks.reset()
        self._replay_cache.clear()
        self._lint_cache.clear()
        if self.recorder is not None:
            self.recorder.metrics.counter("server.crashes").inc()

    def restart(self) -> Database:
        """Recover the database from the write-ahead log and come back up.

        Requires a :class:`repro.recovery.Durability` bundle.  Calls
        :meth:`crash` first if the server is still nominally up (a clean
        restart drill), then replays the log into a fresh database, rebinds
        the session manager (which re-attaches the lock manager), and
        starts answering requests again.  The SEQUENCED replay cache is
        empty after a restart, but the recovered high-water mark keeps
        at-most-once execution intact: pre-crash sequence numbers are
        refused with :class:`DuplicateRequest` instead of re-executed.
        """
        if self.durability is None:
            raise DurabilityError(
                "server has no durability bundle; attach one to restart"
            )
        self.crash()
        database = self.durability.recover()
        if self.recorder is not None:
            database.recorder = self.recorder
        self.database = database
        if self.sessions is not None:
            self.sessions.rebind(database)
        report = self.durability.last_report
        self.statistics["recoveries"] += 1
        if report is not None:
            self.statistics["replayed_records"] += report.replayed_records
        self.crashed = False
        return database

    def _note_concurrency_error(self, error: ReproError) -> None:
        """Attribute concurrency-control outcomes to the STATS counters."""
        if isinstance(error, LockUnavailable):
            self.statistics["lock_waits"] += 1
        elif isinstance(error, DeadlockError):
            self.statistics["deadlocks"] += 1
            self.statistics["txn_aborts"] += 1
        elif isinstance(error, LockTimeout):
            self.statistics["txn_aborts"] += 1

    def _session_token(self):
        """Database session token for the statement being handled.

        A client with an open session executes on that session's
        transaction; everything else (no session manager, unsequenced
        requests, clients that never opened a session) runs on the
        default session, preserving the pre-session behaviour.
        """
        if self.sessions is None:
            return None
        session = self.sessions.get(self._active_client)
        if session is None:
            if self._active_client is not None and self.sessions.was_evicted(
                self._active_client
            ):
                from repro.errors import SessionError

                raise SessionError(
                    f"session of client {self._active_client} was evicted "
                    f"by the server (idle teardown or crash); send "
                    f"OPEN_SESSION to continue"
                )
            return None
        return session.token

    def _handle_session_op(self, opcode: Opcode, body: bytes) -> bytes:
        if self.sessions is None:
            raise ProtocolError(
                f"{opcode.name} requires a server with session support"
            )
        client_id = protocol.decode_session_op(body)
        if opcode is Opcode.OPEN_SESSION:
            self.sessions.open(client_id)
            self.statistics["sessions_open"] = self.sessions.open_count
            return protocol.encode_envelope(
                Opcode.SESSION_RESULT, protocol.encode_values(["open", client_id])
            )
        if opcode is Opcode.CLOSE_SESSION:
            self.sessions.close(client_id)
            self.statistics["sessions_open"] = self.sessions.open_count
            return protocol.encode_envelope(
                Opcode.SESSION_RESULT, protocol.encode_values(["closed", client_id])
            )
        if opcode is Opcode.TXN_BEGIN:
            txn_id = self.sessions.begin(client_id)
            return protocol.encode_envelope(
                Opcode.TXN_RESULT, protocol.encode_values(["begin", txn_id])
            )
        if opcode is Opcode.TXN_BEGIN_RO:
            txn_id = self.sessions.begin(client_id, read_only=True)
            self.statistics["readonly_txns"] += 1
            return protocol.encode_envelope(
                Opcode.TXN_RESULT, protocol.encode_values(["begin_ro", txn_id])
            )
        if opcode is Opcode.TXN_COMMIT:
            self.sessions.commit(client_id)
            return protocol.encode_envelope(
                Opcode.TXN_RESULT, protocol.encode_values(["commit", client_id])
            )
        # TXN_ROLLBACK
        self.sessions.rollback(client_id)
        self.statistics["txn_aborts"] += 1
        return protocol.encode_envelope(
            Opcode.TXN_RESULT, protocol.encode_values(["rollback", client_id])
        )

    def _statement_done(self, result) -> None:
        """Account one successfully executed statement's scan and rows."""
        self._request_rows_scanned += self.database.last_counters.get(
            "rows_scanned", 0
        )
        if self.recorder is not None:
            self.recorder.metrics.histogram(
                "server.rows_per_result", ROWS_BUCKETS
            ).observe(len(result.rows))

    def _handle_query(self, body: bytes) -> bytes:
        sql, params = wire.decode_query(body)
        self.statistics["queries"] += 1
        self._lint_gate(sql)
        result = self.database.execute(sql, params, session=self._session_token())
        self._statement_done(result)
        return protocol.encode_envelope(Opcode.RESULT, wire.encode_result(result))

    def _handle_batch(self, body: bytes) -> bytes:
        """Execute a pipelined batch: one entry per statement.

        Statement-level failures become BATCH_ENTRY_ERROR entries in the
        response, so a bad statement never poisons its batch — only a
        malformed frame (caught in :meth:`handle`) fails the whole request.
        """
        statements = protocol.decode_batch(body)
        self.statistics["batches"] += 1
        self._script_lint_gate(statements)
        token = self._session_token()
        entries: List[tuple] = []
        for sql, params in statements:
            self.statistics["batch_statements"] += 1
            try:
                self._lint_gate(sql)
                result = self.database.execute(sql, params, session=token)
            except ReproError as error:
                self._note_concurrency_error(error)
                self.statistics["errors"] += 1
                entries.append(
                    (protocol.BATCH_ENTRY_ERROR, protocol.encode_error(error))
                )
                continue
            self._statement_done(result)
            try:
                payload = wire.encode_result(result)
            except ReproError as error:
                # An unencodable result (e.g. an int64-overflowing value)
                # poisons only its own entry, not the whole batch.
                self.statistics["errors"] += 1
                entries.append(
                    (protocol.BATCH_ENTRY_ERROR, protocol.encode_error(error))
                )
            else:
                entries.append((protocol.BATCH_ENTRY_RESULT, payload))
        return protocol.encode_envelope(
            Opcode.BATCH_RESULT, protocol.encode_batch_result(entries)
        )

    def _handle_stats(self, body: bytes) -> bytes:
        """Report server- and database-level counters in one round trip.

        The database counters (statements, plan-cache hits, rows returned)
        are the ones the plan cache's efficacy shows up in; exposing them
        over the wire lets a bench harness read them without reaching into
        the server process.
        """
        if body:
            raise ProtocolError("STATS request carries no body")
        counters = dict(self.statistics)
        for name, value in self.database.statistics.items():
            counters[f"db_{name}"] = value
        wal = self.database.wal
        if wal is not None:
            counters["wal_appends"] = wal.statistics["appends"]
            counters["wal_commits"] = wal.statistics["commits"]
            counters["wal_aborts"] = wal.statistics["aborts"]
        return protocol.encode_envelope(
            Opcode.STATS_RESULT, protocol.encode_stats(counters)
        )

    def _handle_procedure(self, body: bytes) -> bytes:
        name, args = protocol.decode_procedure_call(body)
        procedure = self._procedures.get(name.lower())
        if procedure is None:
            raise ProtocolError(f"unknown server procedure {name!r}")
        self.statistics["procedure_calls"] += 1
        values = procedure(self.database, *args)
        return protocol.encode_envelope(
            Opcode.PROCEDURE_RESULT, protocol.encode_values(list(values))
        )
