"""Request/response envelopes for the client/server protocol.

An envelope is ``opcode (1 byte) + body``.  Query bodies are encoded by
:mod:`repro.sqldb.wire`; procedure calls encode the procedure name and a
value list with the same primitives.  Error responses carry the error
class name and message so the client can re-raise a faithful exception.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Any, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sqldb import wire


class Opcode(IntEnum):
    """First byte of every envelope."""

    QUERY = 1
    CALL_PROCEDURE = 2
    PING = 3
    RESULT = 16
    PROCEDURE_RESULT = 17
    PONG = 18
    ERROR = 32


def encode_envelope(opcode: Opcode, body: bytes = b"") -> bytes:
    return bytes([int(opcode)]) + body


def decode_envelope(frame: bytes) -> Tuple[Opcode, bytes]:
    if not frame:
        raise ProtocolError("empty frame")
    try:
        opcode = Opcode(frame[0])
    except ValueError:
        raise ProtocolError(f"unknown opcode {frame[0]}") from None
    return opcode, frame[1:]


def encode_procedure_call(name: str, args: Sequence[Any]) -> bytes:
    """Body of a CALL_PROCEDURE request."""
    payload = name.encode("utf-8")
    parts = [struct.pack(">I", len(payload)), payload, struct.pack(">H", len(args))]
    parts.extend(wire.encode_value(value) for value in args)
    return b"".join(parts)


def decode_procedure_call(body: bytes) -> Tuple[str, List[Any]]:
    if len(body) < 4:
        raise ProtocolError("truncated procedure-call frame")
    length = struct.unpack_from(">I", body, 0)[0]
    offset = 4
    if offset + length + 2 > len(body):
        raise ProtocolError("truncated procedure-call frame")
    try:
        name = body[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in procedure name") from None
    offset += length
    count = struct.unpack_from(">H", body, offset)[0]
    offset += 2
    args: List[Any] = []
    for __ in range(count):
        value, offset = wire.decode_value(body, offset)
        args.append(value)
    if offset != len(body):
        raise ProtocolError("trailing bytes after procedure-call frame")
    return name, args


def encode_error(error: Exception) -> bytes:
    """Body of an ERROR response."""
    kind = type(error).__name__.encode("utf-8")
    message = str(error).encode("utf-8")
    return (
        struct.pack(">I", len(kind))
        + kind
        + struct.pack(">I", len(message))
        + message
    )


def decode_error(body: bytes) -> Tuple[str, str]:
    if len(body) < 4:
        raise ProtocolError("truncated error frame")
    kind_length = struct.unpack_from(">I", body, 0)[0]
    offset = 4
    try:
        kind = body[offset : offset + kind_length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in error frame") from None
    offset += kind_length
    if offset + 4 > len(body):
        raise ProtocolError("truncated error frame")
    message_length = struct.unpack_from(">I", body, offset)[0]
    offset += 4
    try:
        message = body[offset : offset + message_length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in error frame") from None
    return kind, message


def encode_values(values: Sequence[Any]) -> bytes:
    """Body of a PROCEDURE_RESULT response (a flat value list)."""
    parts = [struct.pack(">H", len(values))]
    parts.extend(wire.encode_value(value) for value in values)
    return b"".join(parts)


def decode_values(body: bytes) -> List[Any]:
    if len(body) < 2:
        raise ProtocolError("truncated value-list frame")
    count = struct.unpack_from(">H", body, 0)[0]
    offset = 2
    values: List[Any] = []
    for __ in range(count):
        value, offset = wire.decode_value(body, offset)
        values.append(value)
    if offset != len(body):
        raise ProtocolError("trailing bytes after value-list frame")
    return values
