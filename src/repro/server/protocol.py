"""Request/response envelopes for the client/server protocol.

An envelope is ``opcode (1 byte) + body``.  Query bodies are encoded by
:mod:`repro.sqldb.wire`; procedure calls encode the procedure name and a
value list with the same primitives.  Error responses carry the error
class name and message so the client can re-raise a faithful exception.

The BATCH opcode ships N statements in one request and N per-statement
entries in one response — the pipelined middle ground between "one query
per node" and "one query per tree".  Each response entry is individually
either a result set or an error, so a failing statement costs only its
own slot, never the whole batch.
"""

from __future__ import annotations

import struct
import zlib
from enum import IntEnum
from typing import Any, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sqldb import wire


class Opcode(IntEnum):
    """First byte of every envelope."""

    QUERY = 1
    CALL_PROCEDURE = 2
    PING = 3
    BATCH = 4
    STATS = 5
    SEQUENCED = 6
    OPEN_SESSION = 7
    CLOSE_SESSION = 8
    TXN_BEGIN = 9
    TXN_COMMIT = 10
    TXN_ROLLBACK = 11
    #: BEGIN READ ONLY: the transaction rejects DML; an MVCC server routes
    #: its reads to a snapshot (no locks), a 2PL-only server to S locks.
    TXN_BEGIN_RO = 12
    RESULT = 16
    PROCEDURE_RESULT = 17
    PONG = 18
    BATCH_RESULT = 19
    STATS_RESULT = 20
    SEQUENCED_RESULT = 21
    SESSION_RESULT = 22
    TXN_RESULT = 23
    ERROR = 32


#: Opcodes whose request body is a bare session operand (u32 client id).
SESSION_OPCODES = frozenset(
    {
        Opcode.OPEN_SESSION,
        Opcode.CLOSE_SESSION,
        Opcode.TXN_BEGIN,
        Opcode.TXN_BEGIN_RO,
        Opcode.TXN_COMMIT,
        Opcode.TXN_ROLLBACK,
    }
)


#: Entry kinds inside a BATCH_RESULT body.
BATCH_ENTRY_RESULT = 0
BATCH_ENTRY_ERROR = 1


def encode_envelope(opcode: Opcode, body: bytes = b"") -> bytes:
    return bytes([int(opcode)]) + body


def decode_envelope(frame: bytes) -> Tuple[Opcode, bytes]:
    if not frame:
        raise ProtocolError("empty frame")
    try:
        opcode = Opcode(frame[0])
    except ValueError:
        raise ProtocolError(f"unknown opcode {frame[0]}") from None
    return opcode, frame[1:]


def encode_sequenced(client_id: int, seq: int, inner: bytes) -> bytes:
    """Body of a SEQUENCED request / SEQUENCED_RESULT response.

    ``client id (u32) + sequence number (u32) + CRC-32 of inner (u32) +
    inner envelope``.  The (client, seq) pair keys the server's replay
    cache — a retransmitted request is answered from cache instead of
    being re-executed, which makes retrying any statement (UPDATEs
    included) safe.  The CRC lets both sides detect bit flips and
    truncation injected by a lossy link.
    """
    if not 0 <= client_id <= 0xFFFFFFFF or not 0 <= seq <= 0xFFFFFFFF:
        raise ProtocolError("client id and sequence number must fit in u32")
    return struct.pack(">III", client_id, seq, zlib.crc32(inner)) + inner


def decode_sequenced(body: bytes) -> Tuple[int, int, bytes]:
    """Decode and integrity-check a sequenced body.

    Raises :class:`ProtocolError` on truncation or CRC mismatch — the
    caller decides whether that means "answer with a retriable error
    frame" (server) or "treat as loss and retry" (client).
    """
    if len(body) < 12:
        raise ProtocolError("truncated sequenced frame")
    client_id, seq, checksum = struct.unpack_from(">III", body, 0)
    inner = body[12:]
    if zlib.crc32(inner) != checksum:
        raise ProtocolError("sequenced frame failed its CRC check")
    return client_id, seq, inner


def encode_session_op(client_id: int) -> bytes:
    """Body of the five session/transaction opcodes: ``client id (u32)``.

    The client id is stated explicitly (rather than inferred from a
    SEQUENCED wrapper) so session frames stay valid on bare, non-resilient
    connections too.
    """
    if not 0 <= client_id <= 0xFFFFFFFF:
        raise ProtocolError("client id must fit in u32")
    return struct.pack(">I", client_id)


def decode_session_op(body: bytes) -> int:
    if len(body) != 4:
        raise ProtocolError("session frame body must be exactly 4 bytes")
    return struct.unpack(">I", body)[0]


def encode_procedure_call(name: str, args: Sequence[Any]) -> bytes:
    """Body of a CALL_PROCEDURE request."""
    payload = name.encode("utf-8")
    parts = [struct.pack(">I", len(payload)), payload, struct.pack(">H", len(args))]
    parts.extend(wire.encode_value(value) for value in args)
    return b"".join(parts)


def decode_procedure_call(body: bytes) -> Tuple[str, List[Any]]:
    if len(body) < 4:
        raise ProtocolError("truncated procedure-call frame")
    length = struct.unpack_from(">I", body, 0)[0]
    offset = 4
    if offset + length + 2 > len(body):
        raise ProtocolError("truncated procedure-call frame")
    try:
        name = body[offset : offset + length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in procedure name") from None
    offset += length
    count = struct.unpack_from(">H", body, offset)[0]
    offset += 2
    args: List[Any] = []
    for __ in range(count):
        value, offset = wire.decode_value(body, offset)
        args.append(value)
    if offset != len(body):
        raise ProtocolError("trailing bytes after procedure-call frame")
    return name, args


def encode_batch(statements: Sequence[Tuple[str, Sequence[Any]]]) -> bytes:
    """Body of a BATCH request: ``u16 count`` + one query body per statement."""
    if len(statements) > 0xFFFF:
        raise ProtocolError("too many statements in batch")
    parts = [struct.pack(">H", len(statements))]
    for sql, params in statements:
        parts.append(wire.encode_query(sql, params))
    return b"".join(parts)


def decode_batch(body: bytes) -> List[Tuple[str, List[Any]]]:
    if len(body) < 2:
        raise ProtocolError("truncated batch frame")
    count = struct.unpack_from(">H", body, 0)[0]
    offset = 2
    statements: List[Tuple[str, List[Any]]] = []
    for __ in range(count):
        if offset + 4 > len(body):
            raise ProtocolError("truncated batch frame")
        length = struct.unpack_from(">I", body, offset)[0]
        offset += 4
        if offset + length + 2 > len(body):
            raise ProtocolError("truncated batch frame")
        try:
            sql = body[offset : offset + length].decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("invalid UTF-8 in batch statement") from None
        offset += length
        param_count = struct.unpack_from(">H", body, offset)[0]
        offset += 2
        params: List[Any] = []
        for __param in range(param_count):
            value, offset = wire.decode_value(body, offset)
            params.append(value)
        statements.append((sql, params))
    if offset != len(body):
        raise ProtocolError("trailing bytes after batch frame")
    return statements


def encode_batch_result(entries: Sequence[Tuple[int, bytes]]) -> bytes:
    """Body of a BATCH_RESULT response.

    Each entry is ``(kind, payload)`` where kind is BATCH_ENTRY_RESULT
    (payload = an encoded result set) or BATCH_ENTRY_ERROR (payload = an
    encoded error frame).  Entries are length-prefixed so the decoder can
    hand each payload to the matching sub-decoder.
    """
    if len(entries) > 0xFFFF:
        raise ProtocolError("too many entries in batch result")
    parts = [struct.pack(">H", len(entries))]
    for kind, payload in entries:
        if kind not in (BATCH_ENTRY_RESULT, BATCH_ENTRY_ERROR):
            raise ProtocolError(f"invalid batch entry kind {kind}")
        parts.append(struct.pack(">BI", kind, len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_batch_result(body: bytes) -> List[Tuple[int, bytes]]:
    if len(body) < 2:
        raise ProtocolError("truncated batch-result frame")
    count = struct.unpack_from(">H", body, 0)[0]
    offset = 2
    entries: List[Tuple[int, bytes]] = []
    for __ in range(count):
        if offset + 5 > len(body):
            raise ProtocolError("truncated batch-result frame")
        kind, length = struct.unpack_from(">BI", body, offset)
        offset += 5
        if kind not in (BATCH_ENTRY_RESULT, BATCH_ENTRY_ERROR):
            raise ProtocolError(f"invalid batch entry kind {kind}")
        if offset + length > len(body):
            raise ProtocolError("truncated batch-result frame")
        entries.append((kind, body[offset : offset + length]))
        offset += length
    if offset != len(body):
        raise ProtocolError("trailing bytes after batch-result frame")
    return entries


def encode_stats(counters: dict) -> bytes:
    """Body of a STATS_RESULT response: a flat (name, value) list."""
    values: List[Any] = []
    for name in sorted(counters):
        values.append(str(name))
        values.append(counters[name])
    return encode_values(values)


def decode_stats(body: bytes) -> dict:
    values = decode_values(body)
    if len(values) % 2 != 0:
        raise ProtocolError("stats frame holds an odd number of values")
    counters = {}
    for position in range(0, len(values), 2):
        name = values[position]
        if not isinstance(name, str):
            raise ProtocolError("stats counter name is not a string")
        counters[name] = values[position + 1]
    return counters


def encode_error(error: Exception) -> bytes:
    """Body of an ERROR response."""
    kind = type(error).__name__.encode("utf-8")
    message = str(error).encode("utf-8")
    return (
        struct.pack(">I", len(kind))
        + kind
        + struct.pack(">I", len(message))
        + message
    )


def decode_error(body: bytes) -> Tuple[str, str]:
    if len(body) < 4:
        raise ProtocolError("truncated error frame")
    kind_length = struct.unpack_from(">I", body, 0)[0]
    offset = 4
    try:
        kind = body[offset : offset + kind_length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in error frame") from None
    offset += kind_length
    if offset + 4 > len(body):
        raise ProtocolError("truncated error frame")
    message_length = struct.unpack_from(">I", body, offset)[0]
    offset += 4
    try:
        message = body[offset : offset + message_length].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("invalid UTF-8 in error frame") from None
    return kind, message


def encode_values(values: Sequence[Any]) -> bytes:
    """Body of a PROCEDURE_RESULT response (a flat value list)."""
    parts = [struct.pack(">H", len(values))]
    parts.extend(wire.encode_value(value) for value in values)
    return b"".join(parts)


def decode_values(body: bytes) -> List[Any]:
    if len(body) < 2:
        raise ProtocolError("truncated value-list frame")
    count = struct.unpack_from(">H", body, 0)[0]
    offset = 2
    values: List[Any] = []
    for __ in range(count):
        value, offset = wire.decode_value(body, offset)
        values.append(value)
    if offset != len(body):
        raise ProtocolError("trailing bytes after value-list frame")
    return values
