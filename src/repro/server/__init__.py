"""Client/server stack over the simulated network.

A :class:`~repro.server.server.DatabaseServer` wraps a
:class:`repro.sqldb.Database` and answers wire-encoded requests; a
:class:`~repro.server.client.RemoteConnection` is the client-side driver
that ships SQL text (and stored-procedure calls) across a
:class:`repro.network.NetworkLink`, paying latency and transfer time for
every message exactly as the paper's model prescribes.
"""

from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode, decode_envelope, encode_envelope
from repro.server.server import DatabaseServer

__all__ = [
    "DatabaseServer",
    "RemoteConnection",
    "Opcode",
    "encode_envelope",
    "decode_envelope",
]
