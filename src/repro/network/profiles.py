"""Named link profiles.

The three WAN rows of the paper's Tables 2-4 plus a LAN profile used by
the "hardly any problem in local-area networks" ablation (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink, PacketAccounting


@dataclass(frozen=True)
class LinkProfile:
    """An immutable description of a link; build concrete links from it."""

    name: str
    latency_s: float
    dtr_kbit_s: float
    packet_bytes: int = 4096

    def create_link(
        self,
        clock: Optional[SimulatedClock] = None,
        accounting: PacketAccounting = PacketAccounting.PAPER_MODEL,
    ) -> NetworkLink:
        return NetworkLink(
            latency_s=self.latency_s,
            dtr_kbit_s=self.dtr_kbit_s,
            packet_bytes=self.packet_bytes,
            clock=clock,
            accounting=accounting,
        )

    def __str__(self) -> str:
        return (
            f"{self.name} (T_Lat={self.latency_s * 1000:.0f} ms, "
            f"dtr={self.dtr_kbit_s:.0f} kbit/s)"
        )


#: The paper's three WAN scenarios (Table 2 row groups).
WAN_256 = LinkProfile(name="WAN-256", latency_s=0.15, dtr_kbit_s=256)
WAN_512 = LinkProfile(name="WAN-512", latency_s=0.15, dtr_kbit_s=512)
WAN_1024 = LinkProfile(name="WAN-1024", latency_s=0.05, dtr_kbit_s=1024)

#: A year-2000 10 Mbit/s Ethernet LAN with ~2 ms round-trip-half latency.
#: Calibrated so the paper's Section 2 anecdote holds: the scenario-3
#: multi-level expand finishes in "little more than half a minute using
#: the LAN" while taking ~half an hour over WAN-256.
LAN = LinkProfile(name="LAN", latency_s=0.002, dtr_kbit_s=10 * 1024)

PAPER_PROFILES = (WAN_256, WAN_512, WAN_1024)
