"""Deterministic WAN/LAN simulator.

The paper models the network with three parameters — latency ``T_lat``,
data transfer rate ``dtr`` and packet size ``size_p`` — and attributes the
response-time problem entirely to the number of round trips and the data
volume.  This package implements exactly that contract: a
:class:`~repro.network.link.NetworkLink` advances a simulated clock by
``T_lat + bits/dtr`` per message and accounts messages, packets and bytes
in a :class:`~repro.network.stats.TrafficStats`.
"""

from repro.network.clock import SimulatedClock
from repro.network.faults import (
    CHAOS_PRESETS,
    DROP_5,
    FLAKY_WAN,
    JUMBO_TRUNCATING_WAN,
    NOISY_WAN,
    OUTAGE_WAN,
    STOCHASTIC_PRESETS,
    CircuitBreaker,
    FaultPlan,
    FaultProfile,
    FaultyLink,
    RetryPolicy,
)
from repro.network.link import NetworkLink, PacketAccounting
from repro.network.profiles import (
    LAN,
    WAN_256,
    WAN_512,
    WAN_1024,
    LinkProfile,
    PAPER_PROFILES,
)
from repro.network.stats import TrafficStats

__all__ = [
    "SimulatedClock",
    "NetworkLink",
    "PacketAccounting",
    "LinkProfile",
    "LAN",
    "WAN_256",
    "WAN_512",
    "WAN_1024",
    "PAPER_PROFILES",
    "TrafficStats",
    "FaultProfile",
    "FaultPlan",
    "FaultyLink",
    "RetryPolicy",
    "CircuitBreaker",
    "CHAOS_PRESETS",
    "STOCHASTIC_PRESETS",
    "DROP_5",
    "FLAKY_WAN",
    "NOISY_WAN",
    "OUTAGE_WAN",
    "JUMBO_TRUNCATING_WAN",
]
