"""A simulated wall clock measured in seconds."""

from __future__ import annotations

from repro.errors import NetworkError


class SimulatedClock:
    """Monotonically advancing simulated time.

    All response times reported by the measurement harness come from this
    clock, which makes simulations fully deterministic and independent of
    host speed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise NetworkError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6f})"
