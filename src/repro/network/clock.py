"""A simulated wall clock measured in seconds."""

from __future__ import annotations

from repro.errors import NetworkError


class SimulatedClock:
    """Monotonically advancing simulated time.

    All response times reported by the measurement harness come from this
    clock, which makes simulations fully deterministic and independent of
    host speed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: Optional tracing hook (duck-typed to
        #: :class:`repro.obs.TraceRecorder`): every advance is reported
        #: with its component attribution so a trace can decompose a
        #: response time exactly.  None (the default) costs nothing.
        self.observer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, component=None) -> float:
        """Advance the clock by *seconds* (must be non-negative).

        ``component`` optionally attributes the advance for tracing: a
        component name such as ``"latency"`` or ``"backoff"``, or a
        ``{name: seconds}`` dict splitting one advance across several
        components (must sum to *seconds*).  It is ignored unless an
        observer is attached.
        """
        if seconds < 0:
            raise NetworkError(f"cannot advance clock by {seconds!r} seconds")
        self._now += seconds
        if self.observer is not None and seconds:
            self.observer.on_clock_advance(seconds, component)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6f})"
