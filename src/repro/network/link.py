"""The simulated network link.

A link is defined by the paper's three parameters (Section 2, Table 1):
latency ``T_Lat`` (seconds per message), data transfer rate ``dtr``
(kbit/s, binary: 1 kbit = 1024 bit) and packet size ``size_p`` (bytes).
Transmitting a message advances the simulated clock by

    T_Lat + wire_bits / (dtr * 1024)

where ``wire_bits`` depends on the selected :class:`PacketAccounting`:

* ``PAYLOAD`` — exact payload bytes, no padding (idealised).
* ``PADDED`` — whole packets: ``ceil(payload / size_p) * size_p``.
* ``PAPER_MODEL`` — the paper's average-case convention: requests occupy
  whole packets; responses cost ``payload + size_p / 2`` (the correcting
  term of equation (3): "in the average we expect the last package of each
  response to be filled only half").
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Optional

from repro.errors import LinkConfigurationError
from repro.network.clock import SimulatedClock
from repro.network.stats import TrafficStats

#: The paper uses binary units: 1 kbit/s = 1024 bit/s (pinned by
#: reproducing Table 2 to the cent).
BITS_PER_KBIT = 1024


class PacketAccounting(Enum):
    """How payload bytes translate into on-wire bytes."""

    PAYLOAD = "payload"
    PADDED = "padded"
    PAPER_MODEL = "paper-model"


class NetworkLink:
    """A bidirectional point-to-point link with shared clock and stats."""

    def __init__(
        self,
        latency_s: float,
        dtr_kbit_s: float,
        packet_bytes: int = 4096,
        clock: Optional[SimulatedClock] = None,
        accounting: PacketAccounting = PacketAccounting.PAPER_MODEL,
    ) -> None:
        if latency_s < 0:
            raise LinkConfigurationError("latency must be non-negative")
        if dtr_kbit_s <= 0:
            raise LinkConfigurationError("data transfer rate must be positive")
        if packet_bytes <= 0:
            raise LinkConfigurationError("packet size must be positive")
        self.latency_s = float(latency_s)
        self.dtr_kbit_s = float(dtr_kbit_s)
        self.packet_bytes = int(packet_bytes)
        self.clock = clock if clock is not None else SimulatedClock()
        self.accounting = accounting
        self.stats = TrafficStats()
        #: Optional :class:`repro.obs.TraceRecorder`; when set, fault
        #: subclasses annotate the current span with injected events.
        #: Transmission time attribution rides the clock observer.
        self.recorder = None

    @property
    def bits_per_second(self) -> float:
        return self.dtr_kbit_s * BITS_PER_KBIT

    def packets_for(self, payload_bytes: int) -> int:
        """Number of link-layer packets a payload occupies (at least 1)."""
        return max(1, math.ceil(payload_bytes / self.packet_bytes))

    def wire_bytes_for(self, payload_bytes: int, is_request: bool) -> float:
        """On-wire byte cost of a payload under the accounting mode."""
        if self.accounting is PacketAccounting.PAYLOAD:
            return float(payload_bytes)
        if self.accounting is PacketAccounting.PADDED:
            return float(self.packets_for(payload_bytes) * self.packet_bytes)
        # PAPER_MODEL
        if is_request:
            return float(self.packets_for(payload_bytes) * self.packet_bytes)
        return float(payload_bytes) + self.packet_bytes / 2.0

    def transfer_seconds_for(self, wire_bytes: float) -> float:
        """Pure transfer time of *wire_bytes* at the link's data rate."""
        return wire_bytes * 8.0 / self.bits_per_second

    def transmit(
        self, payload_bytes: int, is_request: bool, opcode: Optional[str] = None
    ) -> float:
        """Send one message; advance the clock; return the delay incurred.

        ``opcode`` optionally labels the message with its protocol opcode
        name so per-opcode traffic attribution accumulates in the stats.
        """
        if payload_bytes < 0:
            raise LinkConfigurationError("payload size must be non-negative")
        wire = self.wire_bytes_for(payload_bytes, is_request)
        transfer = self.transfer_seconds_for(wire)
        # One advance (bit-identical to the untraced clock), attributed
        # to the paper's two transmission components for tracing.
        self.clock.advance(
            self.latency_s + transfer,
            {"latency": self.latency_s, "transfer": transfer},
        )
        stats = self.stats
        stats.messages += 1
        if opcode is not None:
            stats.record_opcode(opcode, payload_bytes)
        stats.packets += self.packets_for(payload_bytes)
        stats.payload_bytes += payload_bytes
        stats.wire_bytes += wire
        stats.latency_seconds += self.latency_s
        stats.transfer_seconds += transfer
        if is_request:
            stats.requests += 1
        else:
            stats.responses += 1
        return self.latency_s + transfer

    def deliver(
        self, frame: bytes, is_request: bool, opcode: Optional[str] = None
    ) -> bytes:
        """Transmit an actual frame and return what arrives on the far side.

        On a perfect link that is the frame itself; fault-injecting
        subclasses may drop it (raising
        :class:`~repro.errors.MessageDropped`) or return a mutated copy.
        """
        self.transmit(len(frame), is_request, opcode)
        return frame

    def round_trip(
        self,
        request_bytes: int,
        response_bytes: int,
        request_opcode: Optional[str] = None,
        response_opcode: Optional[str] = None,
    ) -> float:
        """Send a request and receive its response; return the total delay.

        The optional opcode labels feed the per-opcode traffic attribution
        exactly as on :meth:`transmit` — without them the two messages
        stay invisible to ``TrafficStats.opcode_messages``.
        """
        delay = self.transmit(request_bytes, is_request=True, opcode=request_opcode)
        delay += self.transmit(
            response_bytes, is_request=False, opcode=response_opcode
        )
        return delay

    def reset(self) -> None:
        """Zero the clock and the statistics (new measurement run)."""
        self.clock.reset()
        self.stats = TrafficStats()

    def __repr__(self) -> str:
        return (
            f"NetworkLink(latency_s={self.latency_s}, "
            f"dtr_kbit_s={self.dtr_kbit_s}, packet_bytes={self.packet_bytes}, "
            f"accounting={self.accounting.value})"
        )
