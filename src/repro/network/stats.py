"""Traffic accounting for a simulated link."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class TrafficStats:
    """Counters for one direction-agnostic link.

    ``messages`` counts transmissions (a request and its response are two
    messages, i.e. one round trip contributes 2); ``packets`` counts
    link-layer packets after segmentation; byte counters track payload and
    on-wire (padded) volume separately so both the paper's average-case
    model and the exact simulation can be reported.

    ``opcode_messages`` / ``opcode_payload_bytes`` break the totals down
    by protocol opcode (QUERY, BATCH, RESULT, ...) when the transmitter
    labels its messages, so batch vs single-query traffic can be
    attributed in a re-pricing pass without re-running the simulation.

    The resilience counters split by who observes the event: the link
    records injected faults (``drops``, ``corrupt_frames``,
    ``spike_seconds``) while the client driver records its reaction
    (``timeouts``/``timeout_seconds`` for waited-out attempts,
    ``retries`` for re-sent requests, ``backoff_seconds`` for the
    simulated backoff sleeps between them).
    """

    messages: int = 0
    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: float = 0.0
    latency_seconds: float = 0.0
    transfer_seconds: float = 0.0
    #: Simulated server-side query evaluation time (0 unless a CPU cost
    #: model is enabled — the paper ignores it, Section 6).
    server_seconds: float = 0.0
    requests: int = 0
    responses: int = 0
    #: Injected by a fault plan (link side).
    drops: int = 0
    corrupt_frames: int = 0
    spike_seconds: float = 0.0
    #: Observed by the resilient client driver.
    timeouts: int = 0
    timeout_seconds: float = 0.0
    retries: int = 0
    backoff_seconds: float = 0.0
    #: Session/transaction activity observed by the client driver.
    #: ``sessions_open`` is a gauge (+1 on OPEN_SESSION, -1 on
    #: CLOSE_SESSION); the rest are event counters fed by ERROR frames
    #: the server answered with.
    sessions_open: int = 0
    lock_waits: int = 0
    deadlocks: int = 0
    txn_aborts: int = 0
    #: READ ONLY transactions begun through :meth:`RemoteConnection.begin`.
    readonly_txns: int = 0
    opcode_messages: Dict[str, int] = field(default_factory=dict)
    opcode_payload_bytes: Dict[str, int] = field(default_factory=dict)

    def record_opcode(self, opcode: str, payload_bytes: int) -> None:
        """Attribute one message's payload to a protocol opcode."""
        self.opcode_messages[opcode] = self.opcode_messages.get(opcode, 0) + 1
        self.opcode_payload_bytes[opcode] = (
            self.opcode_payload_bytes.get(opcode, 0) + payload_bytes
        )

    @property
    def total_seconds(self) -> float:
        """Accumulated delay: transmission (latency + transfer + spikes),
        server CPU, and the resilient client's waits (timed-out attempts
        and backoff sleeps)."""
        return (
            self.latency_seconds
            + self.transfer_seconds
            + self.server_seconds
            + self.spike_seconds
            + self.timeout_seconds
            + self.backoff_seconds
        )

    @property
    def round_trips(self) -> float:
        return self.messages / 2

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate *other* into this stats object."""
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            else:
                setattr(self, spec.name, mine + theirs)

    def snapshot(self) -> "TrafficStats":
        """Return an independent copy (used for per-action deltas)."""
        values = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            values[spec.name] = dict(value) if isinstance(value, dict) else value
        return TrafficStats(**values)

    def delta_since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Stats accumulated since *earlier* (a snapshot of this object)."""
        values = {}
        for spec in fields(self):
            now = getattr(self, spec.name)
            then = getattr(earlier, spec.name)
            if isinstance(now, dict):
                values[spec.name] = {
                    key: value - then.get(key, 0)
                    for key, value in now.items()
                    if value != then.get(key, 0)
                }
            else:
                values[spec.name] = now - then
        return TrafficStats(**values)
