"""Traffic accounting for a simulated link."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TrafficStats:
    """Counters for one direction-agnostic link.

    ``messages`` counts transmissions (a request and its response are two
    messages, i.e. one round trip contributes 2); ``packets`` counts
    link-layer packets after segmentation; byte counters track payload and
    on-wire (padded) volume separately so both the paper's average-case
    model and the exact simulation can be reported.

    ``opcode_messages`` / ``opcode_payload_bytes`` break the totals down
    by protocol opcode (QUERY, BATCH, RESULT, ...) when the transmitter
    labels its messages, so batch vs single-query traffic can be
    attributed in a re-pricing pass without re-running the simulation.
    """

    messages: int = 0
    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: float = 0.0
    latency_seconds: float = 0.0
    transfer_seconds: float = 0.0
    #: Simulated server-side query evaluation time (0 unless a CPU cost
    #: model is enabled — the paper ignores it, Section 6).
    server_seconds: float = 0.0
    requests: int = 0
    responses: int = 0
    opcode_messages: Dict[str, int] = field(default_factory=dict)
    opcode_payload_bytes: Dict[str, int] = field(default_factory=dict)

    def record_opcode(self, opcode: str, payload_bytes: int) -> None:
        """Attribute one message's payload to a protocol opcode."""
        self.opcode_messages[opcode] = self.opcode_messages.get(opcode, 0) + 1
        self.opcode_payload_bytes[opcode] = (
            self.opcode_payload_bytes.get(opcode, 0) + payload_bytes
        )

    @property
    def total_seconds(self) -> float:
        """Accumulated delay (latency + transfer + server CPU)."""
        return self.latency_seconds + self.transfer_seconds + self.server_seconds

    @property
    def round_trips(self) -> float:
        return self.messages / 2

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate *other* into this stats object."""
        self.messages += other.messages
        self.packets += other.packets
        self.payload_bytes += other.payload_bytes
        self.wire_bytes += other.wire_bytes
        self.latency_seconds += other.latency_seconds
        self.transfer_seconds += other.transfer_seconds
        self.server_seconds += other.server_seconds
        self.requests += other.requests
        self.responses += other.responses
        for opcode, count in other.opcode_messages.items():
            self.opcode_messages[opcode] = (
                self.opcode_messages.get(opcode, 0) + count
            )
        for opcode, volume in other.opcode_payload_bytes.items():
            self.opcode_payload_bytes[opcode] = (
                self.opcode_payload_bytes.get(opcode, 0) + volume
            )

    def snapshot(self) -> "TrafficStats":
        """Return an independent copy (used for per-action deltas)."""
        return TrafficStats(
            messages=self.messages,
            packets=self.packets,
            payload_bytes=self.payload_bytes,
            wire_bytes=self.wire_bytes,
            latency_seconds=self.latency_seconds,
            transfer_seconds=self.transfer_seconds,
            server_seconds=self.server_seconds,
            requests=self.requests,
            responses=self.responses,
            opcode_messages=dict(self.opcode_messages),
            opcode_payload_bytes=dict(self.opcode_payload_bytes),
        )

    def delta_since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Stats accumulated since *earlier* (a snapshot of this object)."""
        return TrafficStats(
            messages=self.messages - earlier.messages,
            packets=self.packets - earlier.packets,
            payload_bytes=self.payload_bytes - earlier.payload_bytes,
            wire_bytes=self.wire_bytes - earlier.wire_bytes,
            latency_seconds=self.latency_seconds - earlier.latency_seconds,
            transfer_seconds=self.transfer_seconds - earlier.transfer_seconds,
            server_seconds=self.server_seconds - earlier.server_seconds,
            requests=self.requests - earlier.requests,
            responses=self.responses - earlier.responses,
            opcode_messages={
                opcode: count - earlier.opcode_messages.get(opcode, 0)
                for opcode, count in self.opcode_messages.items()
                if count != earlier.opcode_messages.get(opcode, 0)
            },
            opcode_payload_bytes={
                opcode: volume - earlier.opcode_payload_bytes.get(opcode, 0)
                for opcode, volume in self.opcode_payload_bytes.items()
                if volume != earlier.opcode_payload_bytes.get(opcode, 0)
            },
        )
