"""Traffic accounting for a simulated link."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TrafficStats:
    """Counters for one direction-agnostic link.

    ``messages`` counts transmissions (a request and its response are two
    messages, i.e. one round trip contributes 2); ``packets`` counts
    link-layer packets after segmentation; byte counters track payload and
    on-wire (padded) volume separately so both the paper's average-case
    model and the exact simulation can be reported.
    """

    messages: int = 0
    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: float = 0.0
    latency_seconds: float = 0.0
    transfer_seconds: float = 0.0
    #: Simulated server-side query evaluation time (0 unless a CPU cost
    #: model is enabled — the paper ignores it, Section 6).
    server_seconds: float = 0.0
    requests: int = 0
    responses: int = 0

    @property
    def total_seconds(self) -> float:
        """Accumulated delay (latency + transfer + server CPU)."""
        return self.latency_seconds + self.transfer_seconds + self.server_seconds

    @property
    def round_trips(self) -> float:
        return self.messages / 2

    def merge(self, other: "TrafficStats") -> None:
        """Accumulate *other* into this stats object."""
        self.messages += other.messages
        self.packets += other.packets
        self.payload_bytes += other.payload_bytes
        self.wire_bytes += other.wire_bytes
        self.latency_seconds += other.latency_seconds
        self.transfer_seconds += other.transfer_seconds
        self.server_seconds += other.server_seconds
        self.requests += other.requests
        self.responses += other.responses

    def snapshot(self) -> "TrafficStats":
        """Return an independent copy (used for per-action deltas)."""
        return TrafficStats(
            messages=self.messages,
            packets=self.packets,
            payload_bytes=self.payload_bytes,
            wire_bytes=self.wire_bytes,
            latency_seconds=self.latency_seconds,
            transfer_seconds=self.transfer_seconds,
            server_seconds=self.server_seconds,
            requests=self.requests,
            responses=self.responses,
        )

    def delta_since(self, earlier: "TrafficStats") -> "TrafficStats":
        """Stats accumulated since *earlier* (a snapshot of this object)."""
        return TrafficStats(
            messages=self.messages - earlier.messages,
            packets=self.packets - earlier.packets,
            payload_bytes=self.payload_bytes - earlier.payload_bytes,
            wire_bytes=self.wire_bytes - earlier.wire_bytes,
            latency_seconds=self.latency_seconds - earlier.latency_seconds,
            transfer_seconds=self.transfer_seconds - earlier.transfer_seconds,
            server_seconds=self.server_seconds - earlier.server_seconds,
            requests=self.requests - earlier.requests,
            responses=self.responses - earlier.responses,
        )
