"""Deterministic fault injection for the simulated WAN.

The paper's link model is perfect: every message arrives, intact, after
exactly ``T_Lat + bits/dtr`` seconds.  Real intercontinental links lose
packets, suffer latency spikes, corrupt frames and go dark for minutes at
a time.  This module adds those behaviours *deterministically*: a
:class:`FaultProfile` describes the failure distribution, a
:class:`FaultPlan` draws per-message decisions from a seeded RNG (plus
scheduled outage windows on the simulated clock), and a
:class:`FaultyLink` applies them to the actual frame bytes.  The same
profile + seed + traffic sequence always replays the same faults, so
every chaos experiment is reproducible bit for bit.

The client-side half — :class:`RetryPolicy` (capped exponential backoff
with seeded jitter, all waits on the simulated clock) and
:class:`CircuitBreaker` — lives here too, next to the faults it answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import (
    FaultConfigurationError,
    MessageDropped,
)
from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink, PacketAccounting


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultConfigurationError(
            f"{name} must be within [0, 1], got {value!r}"
        )


@dataclass(frozen=True)
class FaultProfile:
    """An immutable description of how a link misbehaves.

    ``drop_probability``      — per-message loss (the sender pays the
                                transmit time; nobody answers).
    ``spike_probability`` /
    ``spike_seconds``         — per-message chance of an added latency
                                spike of ``spike_seconds``.
    ``corrupt_probability``   — per-message chance of a single flipped bit.
    ``truncate_probability``  — per-message chance the frame arrives cut
                                in half.
    ``truncate_over_bytes``   — deterministic "broken middlebox": every
                                frame larger than this is truncated to
                                exactly this size (None disables).
    ``outages``               — half-open ``[start, end)`` windows on the
                                simulated clock during which every message
                                is dropped (the server is unreachable).
    """

    name: str
    drop_probability: float = 0.0
    spike_probability: float = 0.0
    spike_seconds: float = 0.0
    corrupt_probability: float = 0.0
    truncate_probability: float = 0.0
    truncate_over_bytes: Optional[int] = None
    outages: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("spike_probability", self.spike_probability)
        _check_probability("corrupt_probability", self.corrupt_probability)
        _check_probability("truncate_probability", self.truncate_probability)
        if self.spike_seconds < 0:
            raise FaultConfigurationError("spike_seconds must be non-negative")
        if self.truncate_over_bytes is not None and self.truncate_over_bytes < 1:
            raise FaultConfigurationError(
                "truncate_over_bytes must be at least 1 byte"
            )
        for start, end in self.outages:
            if end <= start or start < 0:
                raise FaultConfigurationError(
                    f"outage window ({start}, {end}) is not a forward interval"
                )

    @property
    def perfect(self) -> bool:
        """True when this profile can never touch a message."""
        return (
            self.drop_probability == 0.0
            and self.spike_probability == 0.0
            and self.corrupt_probability == 0.0
            and self.truncate_probability == 0.0
            and self.truncate_over_bytes is None
            and not self.outages
        )

    def __str__(self) -> str:
        return (
            f"{self.name} (drop={self.drop_probability:.0%}, "
            f"corrupt={self.corrupt_probability:.0%}, "
            f"outages={len(self.outages)})"
        )


@dataclass(frozen=True)
class FaultDecision:
    """The fate of one message, as drawn by a :class:`FaultPlan`."""

    drop: bool
    outage: bool
    spike_seconds: float
    corrupt: bool
    truncate_to: Optional[int]


class FaultPlan:
    """Seeded per-message fault decisions for one profile.

    Every message draws the same fixed number of uniforms (drop, spike,
    corrupt, truncate) regardless of outcome, so the decision stream for
    message *n* depends only on the seed and *n* — deterministic and
    replayable no matter which faults actually fired earlier.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._decision_rng = random.Random(seed)
        #: Separate stream for fault *details* (which bit flips), so the
        #: per-message decision alignment above is never perturbed.
        self._detail_rng = random.Random(seed + 0x5EED)
        self.messages_decided = 0

    def in_outage(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.profile.outages)

    def next_outage_end(self, now: float) -> Optional[float]:
        """End of the outage window covering *now*, if any."""
        for start, end in self.profile.outages:
            if start <= now < end:
                return end
        return None

    def decide(self, now: float, frame_bytes: int) -> FaultDecision:
        profile = self.profile
        rng = self._decision_rng
        u_drop = rng.random()
        u_spike = rng.random()
        u_corrupt = rng.random()
        u_truncate = rng.random()
        self.messages_decided += 1
        outage = self.in_outage(now)
        truncate_to: Optional[int] = None
        if (
            profile.truncate_over_bytes is not None
            and frame_bytes > profile.truncate_over_bytes
        ):
            truncate_to = profile.truncate_over_bytes
        elif u_truncate < profile.truncate_probability and frame_bytes > 1:
            truncate_to = max(1, frame_bytes // 2)
        return FaultDecision(
            drop=outage or u_drop < profile.drop_probability,
            outage=outage,
            spike_seconds=(
                profile.spike_seconds
                if u_spike < profile.spike_probability
                else 0.0
            ),
            corrupt=u_corrupt < profile.corrupt_probability,
            truncate_to=truncate_to,
        )

    def flip_bit(self, frame: bytes) -> bytes:
        """Return *frame* with one deterministic-random bit inverted."""
        if not frame:
            return frame
        position = self._detail_rng.randrange(len(frame) * 8)
        mutated = bytearray(frame)
        mutated[position // 8] ^= 1 << (position % 8)
        return bytes(mutated)


#: A profile no fault can fire from (the identity wrapper).
PERFECT = FaultProfile(name="perfect")


class FaultyLink(NetworkLink):
    """A :class:`NetworkLink` that injects faults from a seeded plan.

    Traffic accounting still charges every transmitted message (the bytes
    did go out on the wire); the injected misfortunes additionally bump
    the ``drops`` / ``corrupt_frames`` / ``spike_seconds`` counters of
    :class:`~repro.network.stats.TrafficStats`.
    """

    def __init__(
        self,
        latency_s: float,
        dtr_kbit_s: float,
        packet_bytes: int = 4096,
        clock: Optional[SimulatedClock] = None,
        accounting: PacketAccounting = PacketAccounting.PAPER_MODEL,
        profile: FaultProfile = PERFECT,
        seed: int = 0,
    ) -> None:
        super().__init__(
            latency_s=latency_s,
            dtr_kbit_s=dtr_kbit_s,
            packet_bytes=packet_bytes,
            clock=clock,
            accounting=accounting,
        )
        self.profile = profile
        self.fault_seed = seed
        self.plan = FaultPlan(profile, seed)

    @classmethod
    def wrap(
        cls, link: NetworkLink, profile: FaultProfile, seed: int = 0
    ) -> "FaultyLink":
        """A faulty twin of *link*: same parameters, same clock."""
        return cls(
            latency_s=link.latency_s,
            dtr_kbit_s=link.dtr_kbit_s,
            packet_bytes=link.packet_bytes,
            clock=link.clock,
            accounting=link.accounting,
            profile=profile,
            seed=seed,
        )

    def reset(self) -> None:
        """Zero clock and stats and rewind the fault plan (same replay)."""
        super().reset()
        self.plan = FaultPlan(self.profile, self.fault_seed)

    def deliver(
        self, frame: bytes, is_request: bool, opcode: Optional[str] = None
    ) -> bytes:
        recorder = self.recorder
        decision = self.plan.decide(self.clock.now, len(frame))
        if decision.spike_seconds:
            self.clock.advance(decision.spike_seconds, "spike")
            self.stats.spike_seconds += decision.spike_seconds
            if recorder is not None:
                recorder.event(
                    "fault.spike", seconds=decision.spike_seconds
                )
        self.transmit(len(frame), is_request, opcode)
        kind = "request" if is_request else "response"
        if decision.drop:
            self.stats.drops += 1
            where = "outage window" if decision.outage else "transit"
            if recorder is not None:
                recorder.event("fault.drop", kind=kind, where=where)
            raise MessageDropped(f"{kind} lost in {where}")
        if decision.truncate_to is not None:
            self.stats.corrupt_frames += 1
            if recorder is not None:
                recorder.event(
                    "fault.truncate",
                    kind=kind,
                    frame_bytes=len(frame),
                    truncated_to=decision.truncate_to,
                )
            frame = frame[: decision.truncate_to]
        if decision.corrupt:
            self.stats.corrupt_frames += 1
            if recorder is not None:
                recorder.event("fault.corrupt", kind=kind)
            frame = self.plan.flip_bit(frame)
        return frame


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter, on simulated time.

    ``timeout_s`` is the per-attempt wait before a lost message is given
    up on; retry *k* (1-based) then sleeps
    ``min(base * multiplier^(k-1), cap) * (1 ± jitter)`` simulated
    seconds before re-sending.  All waits advance the simulated clock —
    there is no wall-clock sleeping anywhere.
    """

    max_attempts: int = 6
    timeout_s: float = 2.0
    backoff_base_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigurationError("max_attempts must be at least 1")
        if self.timeout_s <= 0:
            raise FaultConfigurationError("timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise FaultConfigurationError("backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise FaultConfigurationError("backoff_multiplier must be >= 1")
        _check_probability("jitter_fraction", self.jitter_fraction)

    def expected_backoff(self, retry: int) -> float:
        """Mean backoff before retry *retry* (1-based); jitter averages out."""
        if retry < 1:
            raise FaultConfigurationError("retry index is 1-based")
        return min(
            self.backoff_base_s * self.backoff_multiplier ** (retry - 1),
            self.backoff_cap_s,
        )

    def backoff_seconds(self, retry: int, rng: random.Random) -> float:
        """The jittered backoff before retry *retry*, drawn from *rng*."""
        backoff = self.expected_backoff(retry)
        if self.jitter_fraction:
            backoff *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return backoff

    def rng(self) -> random.Random:
        """A fresh seeded jitter stream (one per connection)."""
        return random.Random(self.seed)

    def schedule(self, rng: Optional[random.Random] = None) -> Tuple[float, ...]:
        """The full backoff schedule (one entry per possible retry)."""
        rng = rng if rng is not None else self.rng()
        return tuple(
            self.backoff_seconds(retry, rng)
            for retry in range(1, self.max_attempts)
        )


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the simulated clock.

    After ``failure_threshold`` consecutive failed attempts the circuit
    opens: calls are rejected locally (no WAN traffic) until
    ``cooldown_s`` simulated seconds have passed, after which one trial
    call is let through (half-open).  Success closes the circuit; another
    failure re-opens it for a fresh cool-down.
    """

    def __init__(
        self, failure_threshold: int = 8, cooldown_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise FaultConfigurationError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise FaultConfigurationError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    #: Slack for clock arithmetic: ``advance(seconds_until_trial(now))``
    #: must land on an *allowed* instant even when float subtraction
    #: leaves a few ulps of residue.
    _TOLERANCE_S = 1e-9

    def allow(self, now: float) -> bool:
        """May a call go out at simulated time *now*?"""
        if self.opened_at is None:
            return True
        return (
            now - self.opened_at >= self.cooldown_s - self._TOLERANCE_S
        )  # half-open trial

    def seconds_until_trial(self, now: float) -> float:
        """Simulated wait until the breaker would allow a half-open trial."""
        if self.opened_at is None or self.allow(now):
            return 0.0
        return self.opened_at + self.cooldown_s - now

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            if self.opened_at is None:
                self.opens += 1
            self.opened_at = now

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None


# -- chaos presets -----------------------------------------------------------
#
# Named fault scenarios for the resilience ablation, mirroring the link
# profiles in :mod:`repro.network.profiles`.  All are stochastic except
# OUTAGE_WAN's windows and JUMBO_TRUNCATING_WAN's size cut-off, which are
# scheduled/deterministic.

#: The acceptance scenario: 5 % of all messages vanish.
DROP_5 = FaultProfile(name="drop-5", drop_probability=0.05)

#: A flaky long-haul path: occasional loss plus half-second jitter spikes.
FLAKY_WAN = FaultProfile(
    name="flaky-wan",
    drop_probability=0.02,
    spike_probability=0.10,
    spike_seconds=0.5,
)

#: A noisy path: loss plus bit flips that the frame CRC must catch.
NOISY_WAN = FaultProfile(
    name="noisy-wan",
    drop_probability=0.02,
    corrupt_probability=0.02,
)

#: A scheduled server outage in the middle of the working day, with a
#: little background loss on either side.
OUTAGE_WAN = FaultProfile(
    name="outage-wan",
    drop_probability=0.01,
    outages=((30.0, 75.0),),
)

#: A broken middlebox that silently truncates jumbo frames: small
#: per-level batches squeeze through, the recursive mega-response never
#: arrives intact — the scenario that forces the batched fallback.
JUMBO_TRUNCATING_WAN = FaultProfile(
    name="jumbo-truncating-wan", truncate_over_bytes=16 * 1024
)

CHAOS_PRESETS = (DROP_5, FLAKY_WAN, NOISY_WAN, OUTAGE_WAN)

#: The presets whose faults are purely stochastic — the ones the
#: retry-aware analytic model covers in expectation.
STOCHASTIC_PRESETS = (DROP_5, FLAKY_WAN, NOISY_WAN)
