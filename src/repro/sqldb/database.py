"""The :class:`Database` facade: parse, plan (with caching), execute.

This is the "relational DBMS" the PDM system sits on.  The facade keeps an
LRU plan cache keyed by statement text, so the navigational workload —
thousands of executions of the same parameterised child-fetch query — pays
the parse/plan cost once, mirroring the prepared-statement behaviour of a
production DBMS.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    CatalogError,
    DeadlockError,
    ExecutionError,
    IntegrityError,
    LockTimeout,
    SQLError,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb import ast_walk
from repro.sqldb.executor import ExecutionEnv
from repro.sqldb.expressions import (
    CompileContext,
    Frame,
    Scope,
    compile_expression,
)
from repro.sqldb.functions import FunctionRegistry
from repro.sqldb.mvcc import MvccManager
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.planner import Plan, Planner
from repro.sqldb.recursive import execute_plan
from repro.sqldb.result import ResultSet
from repro.sqldb.vec_executor import vec_execute, vectorized_root
from repro.sqldb.schema import Catalog, Column, TableSchema
from repro.sqldb.stats import StatsCatalog
from repro.sqldb.storage import TableStorage
from repro.sqldb.types import coerce_value, is_null


class _Transaction:
    """One open transaction: its undo logs, keyed by the session that
    owns it (``None`` is the local/legacy default session)."""

    __slots__ = ("session", "txn_id", "storages", "logs", "read_only", "snapshot", "mvcc_writes")

    def __init__(self, session: Hashable, txn_id: int, read_only: bool = False) -> None:
        self.session = session
        self.txn_id = txn_id
        #: Storages in first-enlist order (rollback replays in reverse).
        self.storages: list = []
        #: id(storage) -> that storage's undo entries for this transaction.
        self.logs: Dict[int, list] = {}
        #: READ ONLY transactions reject DML; under MVCC they read a
        #: snapshot instead of taking shared locks.
        self.read_only = read_only
        #: The :class:`repro.sqldb.mvcc.Snapshot` captured at BEGIN for a
        #: read-only transaction on an MVCC database; None otherwise.
        self.snapshot = None
        #: Dirty ``(storage, row_id)`` pairs to version-install at commit.
        self.mvcc_writes: list = []

    def log_for(self, storage) -> list:
        log = self.logs.get(id(storage))
        if log is None:
            log = self.logs[id(storage)] = []
            self.storages.append(storage)
        return log


class Database:
    """An in-memory SQL database.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20))")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    >>> db.execute("SELECT name FROM t WHERE id = ?", [2]).scalar()
    'two'
    """

    #: Valid executor modes: ``row`` is the iterator oracle, ``columnar``
    #: runs vectorizable plans batch-at-a-time (others fall back to row).
    EXECUTION_MODES = ("row", "columnar")

    def __init__(
        self,
        plan_cache_size: int = 512,
        recursion_limit: int = 1_000_000,
        execution_mode: str = "row",
        planner_mode: str = "cost",
        mvcc: bool = False,
        auto_analyze_threshold: int = 256,
    ) -> None:
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.recursion_limit = recursion_limit
        if planner_mode not in ("cost", "rule"):
            raise SQLError(
                f"unknown planner mode {planner_mode!r} (expected 'cost' or 'rule')"
            )
        #: ``"cost"`` (default) prices access paths and join orders with
        #: ANALYZE-collected statistics; ``"rule"`` is the ablation switch
        #: that keeps the deterministic rule-based choices even after
        #: ANALYZE.
        self.planner_mode = planner_mode
        #: ANALYZE-collected optimizer statistics.  In-memory and advisory
        #: only: never WAL-logged (lost on crash/recovery) because losing
        #: them can only change plan quality, not results.
        self.stats = StatsCatalog()
        #: Statement-text -> Plan cache (SELECT only; DML re-plans, which is
        #: cheap because DML statements here are tiny).
        self._plan_cache: "OrderedDict[str, Plan]" = OrderedDict()
        self._plan_cache_size = plan_cache_size
        #: Counters a server can report: statements executed, cache hits.
        #: The MVCC block is present (at zero) even without MVCC so the
        #: STATS wire shape is build-independent.
        self.statistics = {
            "statements": 0,
            "plan_cache_hits": 0,
            "rows_returned": 0,
            "columnar_statements": 0,
            "columnar_fallbacks": 0,
            "snapshot_reads": 0,
            "versions_created": 0,
            "versions_gc": 0,
            "readonly_txns": 0,
            "auto_analyze": 0,
        }
        #: MVCC snapshot-read subsystem (DESIGN §14): commit clock, open
        #: snapshots, per-table version stores.  Opt-in so the default
        #: build stays byte-identical to the 2PL-only engine.
        self.mvcc = MvccManager(self.statistics) if mvcc else None
        #: Dirty-write sink of the statement scope currently open for an
        #: *autocommit* DML statement (explicit transactions collect into
        #: their own ``mvcc_writes``); None when no scope is open.
        self._mvcc_scope_writes: Optional[list] = None
        #: Re-ANALYZE a table before planning when its storage ``version``
        #: drifted this far past the version the statistics were collected
        #: at.  Only tables that *have* statistics re-collect — a never-
        #: ANALYZEd database stays statistics-free (and deterministic).
        #: <= 0 disables the trigger.
        self.auto_analyze_threshold = auto_analyze_threshold
        #: Default executor for SELECTs; per-query ``mode=`` overrides it.
        self.execution_mode = self._validate_mode(execution_mode)
        #: Which executor ran the most recent SELECT: ``"row"``,
        #: ``"columnar"`` or ``"row (columnar fallback: <reason>)"``.
        #: None until a SELECT has run (DML resets it).
        self.last_executor: Optional[str] = None
        #: Ablation switch threaded into every execution environment
        #: (paper Section 5.3.1 — uncorrelated subquery caching).
        self.enable_subquery_cache = True
        #: Ablation switch: semi-naive (True) vs naive recursive fixpoint.
        self.enable_seminaive = True
        #: name (lower) -> ast.CreateView records, expanded at plan time.
        self.views: dict = {}
        #: Counters of the most recent execution (rows scanned, index
        #: probes, subquery executions) — the input to a server-side CPU
        #: cost model.
        self.last_counters: dict = {}
        #: session token -> open :class:`_Transaction`.  Token ``None`` is
        #: the local default session (the legacy single-transaction API);
        #: a server maps each wire session to its client id.
        self._transactions: Dict[Hashable, _Transaction] = {}
        #: Monotonic transaction ids when no lock manager issues them
        #: (larger id = younger transaction).
        self._txn_seq = 0
        #: Session the currently executing statement belongs to.
        self._current_session: Hashable = None
        #: Sessions whose transaction was force-aborted (deadlock victim,
        #: lock timeout) -> reason; surfaced as :class:`DeadlockError` on
        #: the session's next statement or commit.
        self._aborted: Dict[Hashable, str] = {}
        #: Optional :class:`repro.concurrency.LockManager` enforcing
        #: strict 2PL across sessions (see :meth:`attach_lock_manager`).
        self.locks = None
        #: Optional :class:`repro.obs.TraceRecorder`; when set, every
        #: :meth:`execute` opens a ``db.execute`` span and the executor
        #: environment carries the recorder down to the fixpoint loop.
        self.recorder = None
        #: Optional :class:`repro.recovery.WalWriter` (see
        #: :meth:`attach_wal`); None keeps the database purely in-memory.
        self.wal = None
        #: WAL transaction id of the statement currently executing (set by
        #: :meth:`_wal_statement`); the storage journal sinks stamp it
        #: onto every logged operation.
        self._wal_txn_id: Optional[int] = None
        #: Implicit (autocommit) WAL transaction ids are drawn from a
        #: disjoint high range so they can never collide with explicit
        #: transaction ids and merge in the log.
        self._implicit_txn_seq = 0

    # -- public API -----------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        session: Hashable = None,
        mode: Optional[str] = None,
    ) -> ResultSet:
        """Parse, plan and execute a single statement.

        *session* selects which open transaction (if any) the statement
        runs in; ``None`` is the local default session.  A statement on a
        session whose transaction was force-aborted (deadlock victim)
        raises :class:`DeadlockError` so the owner learns about the abort
        and can restart.

        *mode* overrides the database's ``execution_mode`` for this one
        statement (``"row"`` or ``"columnar"``); DML ignores it.
        """
        previous = self._current_session
        self._current_session = session
        try:
            self._check_aborted(session)
            recorder = self.recorder
            if recorder is None:
                return self._execute(sql, params, mode=mode)
            with recorder.span(
                "db.execute",
                kind="database",
                sql=sql if isinstance(sql, str) else type(sql).__name__,
            ) as span:
                result = self._execute(sql, params, span, mode=mode)
                span.meta["rows"] = len(result.rows)
                if self.last_executor is not None:
                    span.meta["executor"] = self.last_executor
                return result
        finally:
            self._current_session = previous

    def _execute(
        self, sql: str, params: Sequence[Any], span=None, mode: Optional[str] = None
    ) -> ResultSet:
        self.statistics["statements"] += 1
        #: A DML statement scans nothing through the executor counters, so
        #: reset here — a server CPU model must never be charged for a
        #: previous statement's stale scan counts.
        self.last_counters = {}
        self.last_executor = None
        statement = None
        if isinstance(sql, str):
            cached = self._plan_cache.get(sql)
            if cached is not None and not self._auto_analyze(cached.tables):
                self.statistics["plan_cache_hits"] += 1
                self._plan_cache.move_to_end(sql)
                if span is not None:
                    span.meta["plan_cache_hit"] = True
                return self._run_select(cached, params, mode)
            # A refreshed statistics catalog emptied the plan cache: fall
            # through and re-plan under the new estimates.
            statement = parse_statement(sql)
        else:
            statement = sql  # pre-parsed AST, used by the server fast path
        if isinstance(statement, ast.SelectStatement):
            self._auto_analyze(self._referenced_tables(statement))
            plan = self._plan(statement)
            if isinstance(sql, str):
                self._remember_plan(sql, plan)
            return self._run_select(plan, params, mode)
        return self._execute_dml(statement, params, mode)

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> int:
        """Execute a parameterised DML statement once per parameter row.

        Parses once; returns the total number of affected rows.  This is the
        bulk-load path used when a scenario database is generated.
        """
        statement = parse_statement(sql)
        total = 0
        for params in rows:
            result = self._execute_dml(statement, params)
            total += result.rowcount
        return total

    def execute_script(self, sql: str) -> None:
        """Execute a ``;``-separated script (DDL bootstrap)."""
        for statement in parse_script(sql):
            if isinstance(statement, ast.SelectStatement):
                plan = self._plan(statement)
                self._run_select(plan, ())
            else:
                self._execute_dml(statement, ())

    def register_function(self, name: str, function, propagate_null: bool = True) -> None:
        """Register a stored scalar function callable from SQL (SQL/PSM
        stand-in; see :mod:`repro.sqldb.functions`)."""
        self.functions.register(name, function, propagate_null=propagate_null)
        # Plans compile function calls through the registry at run time, so
        # cached plans remain valid after (re)registration.

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    def view_names(self) -> List[str]:
        return sorted(view.name for view in self.views.values())

    def table_rowcount(self, name: str) -> int:
        return len(self.catalog.lookup(name).storage)

    def explain(self, sql: str) -> ResultSet:
        """Return the physical plan of a SELECT statement as text rows."""
        return self.execute(f"EXPLAIN {sql}")

    def plan_statement(self, statement: ast.SelectStatement) -> Plan:
        """Plan a SELECT without executing or caching it.

        Public for the static analyzer (:mod:`repro.analysis`), whose
        plan-level rules inspect access paths; planning touches only the
        catalog, never table data.
        """
        return self._plan(statement)

    def lint(self, sql: str) -> list:
        """Statically analyze *sql* and return the list of
        :class:`repro.analysis.Finding` — without executing anything.

        Imported lazily: the engine layer stays importable without the
        analysis package and vice versa.
        """
        from repro.analysis import analyze_sql

        return analyze_sql(sql, database=self)

    # -- transactions ------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether the local default session has an open transaction."""
        return None in self._transactions

    def session_in_transaction(self, session: Hashable = None) -> bool:
        return session in self._transactions

    def attach_lock_manager(self, manager) -> None:
        """Enforce strict 2PL with *manager* (a
        :class:`repro.concurrency.LockManager`): SELECTs take table-level
        shared locks, DML takes row/table exclusive locks, all released
        at commit/rollback.  The manager's deadlock victims are aborted
        through :meth:`_abort_txn`."""
        self.locks = manager
        manager.abort_callback = self._abort_txn

    #: Base of the implicit-transaction id range (see ``_implicit_txn_seq``).
    _IMPLICIT_TXN_BASE = 1 << 32

    def attach_wal(self, writer) -> None:
        """Make every mutation durable through *writer* (a
        :class:`repro.recovery.WalWriter`).

        Hooks a journal sink onto every table's storage (tables created
        later get theirs in :meth:`_create_table`): after each successful
        insert/update/delete the sink appends a redo record under the
        executing statement's WAL transaction id.  Explicit transactions
        log COMMIT/ABORT from :meth:`commit`/:meth:`rollback`; autocommit
        statements run as implicit single-statement transactions committed
        at statement end.
        """
        self.wal = writer
        for name in self.catalog.table_names():
            self._attach_journal(self.catalog.lookup(name).storage)

    def _attach_journal(self, storage) -> None:
        table = storage.schema.name

        def sink(op: str, row_id: int, row) -> None:
            wal = self.wal
            txn_id = self._wal_txn_id
            if wal is None or txn_id is None:
                return
            if op == "insert":
                wal.log_insert(txn_id, table, row_id, row)
            elif op == "update":
                wal.log_update(txn_id, table, row_id, row)
            else:
                wal.log_delete(txn_id, table, row_id)

        storage._journal = sink

    @contextmanager
    def _wal_statement(self):
        """WAL transaction scope of one DML statement.

        Inside an explicit transaction the statement logs under that
        transaction's id (made durable by :meth:`commit`).  An autocommit
        statement gets an implicit id committed at statement end — even
        when the statement raised, because a multi-row autocommit INSERT
        keeps its pre-error rows in memory and the log must agree with
        memory.  (After a disk crash the commit append is a silent no-op:
        the log ends where the power died, and the in-flight implicit
        transaction is discarded at recovery — matching the memory state
        the server throws away when it crashes.)
        """
        wal = self.wal
        if wal is None:
            yield
            return
        txn = self._transactions.get(self._current_session)
        if txn is not None:
            self._wal_txn_id = txn.txn_id
            try:
                yield
            finally:
                self._wal_txn_id = None
            return
        self._implicit_txn_seq += 1
        txn_id = self._IMPLICIT_TXN_BASE + self._implicit_txn_seq
        self._wal_txn_id = txn_id
        try:
            yield
        finally:
            self._wal_txn_id = None
            wal.commit(txn_id)

    def _log_ddl(self, statement) -> None:
        """Append a DDL record (the statement re-rendered to SQL text).

        DDL is rejected inside transactions, so a logged DDL statement is
        durable the moment it succeeds; recovery replays the text through
        the ordinary execute path."""
        if self.wal is None:
            return
        from repro.sqldb.render import render_statement

        self.wal.log_ddl(render_statement(statement))

    def begin(self, session: Hashable = None, read_only: bool = False) -> int:
        """Start a transaction on *session* (DML becomes undoable until
        commit); returns the transaction id.

        ``read_only=True`` (``BEGIN READ ONLY``) rejects DML for the
        transaction's lifetime; on an MVCC database it additionally
        captures a :class:`repro.sqldb.mvcc.Snapshot`, and every SELECT
        inside the transaction reads that snapshot without taking locks.
        """
        self._check_aborted(session)
        if session in self._transactions:
            raise ExecutionError("a transaction is already active")
        if self.locks is not None:
            txn_id = self.locks.begin(owner=session)
        else:
            self._txn_seq += 1
            txn_id = self._txn_seq
        txn = _Transaction(session, txn_id, read_only=read_only)
        if read_only:
            self.statistics["readonly_txns"] += 1
            if self.recorder is not None:
                self.recorder.metrics.counter("db.readonly_txns").inc()
            if self.mvcc is not None:
                txn.snapshot = self.mvcc.open_snapshot()
        self._transactions[session] = txn
        return txn_id

    def commit(self, session: Hashable = None) -> None:
        """Make the session's transaction permanent."""
        self._check_aborted(session)
        txn = self._transactions.pop(session, None)
        if txn is None:
            raise ExecutionError("no transaction is active")
        for storage in txn.storages:
            # Detach only if this transaction's log is still the one
            # attached — another session's statement may have re-pointed
            # the storage since our last write.
            if storage._undo is txn.logs[id(storage)]:
                storage.detach_undo()
        if self.wal is not None and not txn.read_only:
            # The commit record is the durability point: if the disk dies
            # on this very append (DiskCrashed propagates), the outcome is
            # ambiguous on purpose — exactly like a real commit racing a
            # power cut — and recovery decides by what hit the platter.
            self.wal.commit(txn.txn_id)
        if self.mvcc is not None:
            # Versions install only after the commit record is durable, so
            # a crash between the two leaves no committed-but-unlogged
            # version for a snapshot to see after recovery.
            if txn.snapshot is not None:
                self.mvcc.close_snapshot(txn.snapshot)
            else:
                self.mvcc.commit(txn.mvcc_writes)
        if self.locks is not None:
            self.locks.release_all(txn.txn_id)

    def rollback(self, session: Hashable = None) -> None:
        """Undo every change the session's transaction made.

        Rolling back a session whose transaction was already force-aborted
        (deadlock victim) is a no-op success — the work is already undone
        and the client is merely acknowledging the abort.
        """
        if self._aborted.pop(session, None) is not None:
            return
        txn = self._transactions.pop(session, None)
        if txn is None:
            raise ExecutionError("no transaction is active")
        self._rollback_txn(txn)

    def transaction(self, session: Hashable = None):
        """Context manager: commit on success, roll back on exception.

        >>> db = Database()
        >>> _ = db.execute("CREATE TABLE t (v INTEGER)")
        >>> with db.transaction():
        ...     _ = db.execute("INSERT INTO t VALUES (1)")
        >>> db.table_rowcount("t")
        1
        """
        return _TransactionContext(self, session)

    def _rollback_txn(self, txn: _Transaction) -> None:
        for storage in reversed(txn.storages):
            storage.rollback_entries(txn.logs[id(storage)])
        if self.wal is not None and not txn.read_only:
            self.wal.abort(txn.txn_id)
        if self.mvcc is not None:
            if txn.snapshot is not None:
                self.mvcc.close_snapshot(txn.snapshot)
            self.mvcc.abort(txn.mvcc_writes)
        if self.locks is not None:
            self.locks.release_all(txn.txn_id)

    def _abort_txn(self, txn_id: int) -> None:
        """Force-abort the transaction with *txn_id* (deadlock victim).

        Called back by the lock manager while some *other* session's
        acquire is in progress; the victim's session learns about it via
        :class:`DeadlockError` on its next statement, commit, or (as a
        no-op) rollback.
        """
        for session, txn in list(self._transactions.items()):
            if txn.txn_id == txn_id:
                del self._transactions[session]
                self._rollback_txn(txn)
                self._aborted[session] = (
                    f"transaction {txn_id} was aborted as a deadlock victim; "
                    f"restart the transaction"
                )
                return

    def _check_aborted(self, session: Hashable) -> None:
        reason = self._aborted.pop(session, None)
        if reason is not None:
            raise DeadlockError(reason)

    def _enlist(self, storage) -> None:
        """Point the storage's undo logging at the executing session's
        transaction log — or detach it for autocommit statements, so an
        autocommit write is never captured by a stale attached log."""
        txn = self._transactions.get(self._current_session)
        if txn is None:
            if storage.in_transaction:
                storage.detach_undo()
            return
        storage.attach_undo(txn.log_for(storage))

    # -- MVCC ---------------------------------------------------------------------

    def _record_mvcc_write(self, storage, row_id: int) -> None:
        """Storage write hook: route the dirty slot to whoever commits it —
        the open explicit transaction, the autocommit statement scope, or
        (for direct storage pokes outside any scope) an immediate
        single-write commit so the version store never lags the heap."""
        scope = self._mvcc_scope_writes
        if scope is not None:
            scope.append((storage, row_id))
            return
        txn = self._transactions.get(self._current_session)
        if txn is not None:
            txn.mvcc_writes.append((storage, row_id))
            return
        self.mvcc.commit([(storage, row_id)])

    @contextmanager
    def mvcc_scope(self):
        """Version-install scope: writes recorded inside commit as one
        stamped install at exit (even on error, mirroring
        :meth:`_wal_statement`: a partially-applied autocommit INSERT keeps
        its pre-error rows, and the version store must agree with memory).
        Used for autocommit DML statements and by recovery replay, which
        wraps each committed transaction's redo ops so the commit clock
        rebuilds exactly.  A no-op inside an explicit transaction (its
        commit installs) or without MVCC.
        """
        if self.mvcc is None or self._transactions.get(self._current_session) is not None:
            yield
            return
        previous = self._mvcc_scope_writes
        writes = self._mvcc_scope_writes = []
        try:
            yield
        finally:
            self._mvcc_scope_writes = previous
            self.mvcc.commit(writes)

    def _current_snapshot(self):
        """The executing session's snapshot, when it is a read-only
        transaction on an MVCC database; else None (locking reads)."""
        if self.mvcc is None:
            return None
        txn = self._transactions.get(self._current_session)
        if txn is None:
            return None
        return txn.snapshot

    def adopt_storage(self, schema, storage) -> None:
        """Register an externally built storage (checkpoint restore) with
        the catalog plus every attached subsystem (WAL journal, MVCC)."""
        self.catalog.create(schema, storage)
        if self.wal is not None:
            self._attach_journal(storage)
        if self.mvcc is not None:
            self.mvcc.register(storage)
            storage._mvcc_hook = self._record_mvcc_write

    # -- locking ------------------------------------------------------------------

    @contextmanager
    def _lock_scope(self):
        """Lock-owner scope of one statement.

        Inside a transaction, locks attach to it and live until
        commit/rollback (strict 2PL).  Autocommit statements get an
        ephemeral owner released at statement end; their conflicts fail
        fast (``park=False``) because there is no transaction to keep a
        queue position for.  Yields ``(owner_id, parkable)`` or
        ``(None, False)`` when no lock manager is attached.
        """
        if self.locks is None:
            yield None, False
            return
        txn = self._transactions.get(self._current_session)
        if txn is not None:
            yield txn.txn_id, True
            return
        owner = self.locks.begin(owner="autocommit")
        try:
            yield owner, False
        finally:
            self.locks.release_all(owner)

    def _acquire_lock(self, owner, parkable, table, row_id, mode) -> None:
        if owner is None:
            return
        try:
            self.locks.acquire(owner, table, row_id, mode, park=parkable)
        except (DeadlockError, LockTimeout):
            # This session is the victim: its transaction (if any) is
            # rolled back here so the raised error leaves a clean slate.
            txn = self._transactions.pop(self._current_session, None)
            if txn is not None:
                self._rollback_txn(txn)
            raise

    def _acquire_footprint(self, owner, parkable, requests) -> None:
        """Acquire the table-granularity part of a static lock footprint
        (see :mod:`repro.concurrency.footprint`, the shared source of
        truth with the transaction analyzer).  ROWS-granularity requests
        are bound to actual row ids by :meth:`_acquire_row_locks` once
        the matching rows are known."""
        from repro.concurrency.footprint import Granularity  # local: avoid cycle

        for request in requests:
            if request.granularity is Granularity.TABLE:
                self._acquire_lock(
                    owner, parkable, request.table, None, request.mode
                )

    def _acquire_row_locks(self, owner, parkable, requests, row_ids) -> None:
        """Bind every ROWS-granularity request of a footprint to the
        matched *row_ids*, acquiring one row lock per row *before* the
        first mutation (a conflict aborts with nothing to undo)."""
        from repro.concurrency.footprint import Granularity  # local: avoid cycle

        for request in requests:
            if request.granularity is Granularity.ROWS:
                for row_id in row_ids:
                    self._acquire_lock(
                        owner, parkable, request.table, row_id, request.mode
                    )

    def _lock_tables_shared(self, owner, parkable, tables) -> None:
        from repro.concurrency.footprint import select_footprint  # local: avoid cycle

        self._acquire_footprint(owner, parkable, select_footprint(tables))

    def _where_subquery_tables(self, where) -> Tuple[str, ...]:
        """Base tables referenced by subqueries of a DML WHERE clause —
        they are read, so they need shared locks too."""
        from repro.concurrency.footprint import where_subquery_tables  # local: avoid cycle

        return where_subquery_tables(where, self._referenced_tables)

    # -- planning / environments -----------------------------------------------

    def _plan(self, statement: ast.SelectStatement) -> Plan:
        planner = Planner(
            self.catalog,
            self.functions,
            views=self.views,
            stats=self.stats,
            cost_based=self.planner_mode == "cost",
        )
        plan = planner.plan_select(statement)
        plan.tables = self._referenced_tables(statement)
        return plan

    def _referenced_tables(self, statement: ast.SelectStatement) -> Tuple[str, ...]:
        """Base tables *statement* reads, with views expanded to their
        underlying tables (recursively)."""
        names: set = set()
        pending = list(ast_walk.referenced_tables(statement))
        seen: set = set()
        while pending:
            name = pending.pop()
            if name in seen:
                continue
            seen.add(name)
            view = self.views.get(name)
            if view is not None:
                pending.extend(ast_walk.referenced_tables(view.select))
            else:
                names.add(name)
        return tuple(sorted(names))

    def _remember_plan(self, sql: str, plan: Plan) -> None:
        self._plan_cache[sql] = plan
        if len(self._plan_cache) > self._plan_cache_size:
            self._plan_cache.popitem(last=False)

    def _environment(self, params: Sequence[Any]) -> ExecutionEnv:
        env = ExecutionEnv(
            params=params,
            functions=self.functions,
            recursion_limit=self.recursion_limit,
        )
        env.enable_subquery_cache = self.enable_subquery_cache
        env.enable_seminaive = self.enable_seminaive
        env.recorder = self.recorder
        env.snapshot = self._current_snapshot()
        return env

    def _validate_mode(self, mode: str) -> str:
        if mode not in self.EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r}; "
                f"expected one of {', '.join(self.EXECUTION_MODES)}"
            )
        return mode

    def _resolve_mode(self, mode: Optional[str]) -> str:
        if mode is None:
            return self.execution_mode
        return self._validate_mode(mode)

    def _run_select(
        self, plan: Plan, params: Sequence[Any], mode: Optional[str] = None
    ) -> ResultSet:
        resolved = self._resolve_mode(mode)
        if self._current_snapshot() is not None:
            # Snapshot read: visibility replaces shared locks entirely —
            # no lock scope, no waits, no deadlock exposure.
            self.statistics["snapshot_reads"] += 1
            if self.recorder is not None:
                self.recorder.metrics.counter("db.snapshot_reads").inc()
            env = self._environment(params)
            if resolved == "columnar":
                rows = self._run_columnar(plan, env)
            else:
                self.last_executor = "row"
                rows = execute_plan(plan, env)
        else:
            with self._lock_scope() as (owner, parkable):
                self._lock_tables_shared(owner, parkable, plan.tables)
                env = self._environment(params)
                if resolved == "columnar":
                    rows = self._run_columnar(plan, env)
                else:
                    self.last_executor = "row"
                    rows = execute_plan(plan, env)
        self.statistics["rows_returned"] += len(rows)
        self.last_counters = dict(env.counters)
        return ResultSet(plan.output_names, rows)

    def _run_columnar(self, plan: Plan, env: ExecutionEnv) -> List[Tuple[Any, ...]]:
        """Execute through the batch pipeline, or fall back whole-plan.

        The fallback keeps semantics single-sourced: a plan either runs
        entirely vectorized or entirely through the row executor — never a
        mix at operator granularity.
        """
        root, reason = vectorized_root(plan)
        recorder = self.recorder
        if root is None:
            self.statistics["columnar_fallbacks"] += 1
            self.last_executor = f"row (columnar fallback: {reason})"
            if recorder is not None:
                recorder.metrics.counter("db.columnar_fallbacks").inc()
            return execute_plan(plan, env)
        self.statistics["columnar_statements"] += 1
        self.last_executor = "columnar"
        rows = vec_execute(root, env)
        if recorder is not None:
            recorder.metrics.counter("db.columnar_executions").inc()
            recorder.metrics.counter("db.vec_batches").inc(
                env.counters["vec_batches"]
            )
            recorder.metrics.counter("db.vec_rows").inc(env.counters["vec_rows"])
        return rows

    # -- DML / DDL ----------------------------------------------------------------

    #: Statement types whose effects (catalog mutations, index builds)
    #: the undo log cannot reverse — rejected inside any transaction.
    _DDL_STATEMENTS = (
        ast.CreateTable,
        ast.CreateIndex,
        ast.DropTable,
        ast.CreateView,
        ast.DropView,
    )

    def _execute_dml(
        self, statement, params: Sequence[Any], mode: Optional[str] = None
    ) -> ResultSet:
        if self.session_in_transaction(self._current_session) and isinstance(
            statement, self._DDL_STATEMENTS
        ):
            raise ExecutionError(
                f"DDL ({type(statement).__name__}) is not allowed inside a "
                f"transaction: catalog changes are not covered by the undo "
                f"log and could not be rolled back"
            )
        if isinstance(statement, ast.CreateTable):
            result = self._create_table(statement)
            self._log_ddl(statement)
            return result
        if isinstance(statement, ast.CreateIndex):
            entry = self.catalog.lookup(statement.table)
            entry.storage.create_index(
                statement.name, statement.columns, unique=statement.unique
            )
            self._log_ddl(statement)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, ast.DropTable):
            if self.mvcc is not None:
                self.mvcc.forget(self.catalog.lookup(statement.name).schema.name)
            self.catalog.drop(statement.name)
            self.stats.drop(statement.name)
            self._plan_cache.clear()
            self._log_ddl(statement)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            txn = self._transactions.get(self._current_session)
            if txn is not None and txn.read_only:
                raise ExecutionError(
                    f"{type(statement).__name__.upper()} is not allowed "
                    f"inside a READ ONLY transaction"
                )
            # mvcc_scope outer: an autocommit statement's versions install
            # after its implicit WAL commit, same order as explicit commit.
            with self.mvcc_scope():
                with self._wal_statement():
                    if isinstance(statement, ast.Insert):
                        return self._insert(statement, params)
                    if isinstance(statement, ast.Update):
                        return self._update(statement, params)
                    return self._delete(statement, params)
        if isinstance(statement, ast.CreateView):
            result = self._create_view(statement)
            self._log_ddl(statement)
            return result
        if isinstance(statement, ast.DropView):
            key = statement.name.lower()
            if key not in self.views:
                raise CatalogError(f"view {statement.name!r} does not exist")
            del self.views[key]
            self._plan_cache.clear()
            self._log_ddl(statement)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, ast.BeginTransaction):
            self.begin(self._current_session, read_only=statement.read_only)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, ast.CommitTransaction):
            self.commit(self._current_session)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, ast.RollbackTransaction):
            self.rollback(self._current_session)
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, ast.Explain):
            from repro.sqldb.explain import explain_analyze_plan, explain_plan

            self._auto_analyze(self._referenced_tables(statement.statement))
            plan = self._plan(statement.statement)
            if statement.analyze:
                # EXPLAIN ANALYZE plans are never cached, so the operator
                # instances are fresh and safe to instrument in place.
                env = self._environment(params)
                lines = explain_analyze_plan(plan, env, mode=self._resolve_mode(mode))
            else:
                lines = explain_plan(plan)
            return ResultSet(["plan"], [(line,) for line in lines])
        if isinstance(statement, ast.Lint):
            from repro.analysis import analyze_statement

            findings = analyze_statement(statement.statement, database=self)
            return ResultSet(
                ["rule_id", "severity", "message", "node_path"],
                [finding.as_row() for finding in findings],
            )
        if isinstance(statement, ast.LintTransaction):
            from repro.analysis.txn import analyze_transaction_sql

            # Purely static: the quoted script is parsed and analyzed,
            # never executed — database state is byte-identical after.
            findings = analyze_transaction_sql(statement.script, database=self)
            return ResultSet(
                ["rule_id", "severity", "message", "node_path"],
                [finding.as_row() for finding in findings],
            )
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement)
        raise ExecutionError(
            f"unsupported statement type {type(statement).__name__}"
        )

    def _analyze(self, statement: ast.Analyze) -> ResultSet:
        """``ANALYZE [table]`` — collect optimizer statistics.

        Deliberately not DDL: it changes no data and no schema, so it is
        allowed inside transactions and is never WAL-logged.  Cached plans
        were chosen under the old statistics, so the plan cache is
        cleared.
        """
        if statement.table is not None:
            entries = [self.catalog.lookup(statement.table)]
        else:
            entries = [
                self.catalog.lookup(name)
                for name in sorted(self.catalog.table_names(), key=str.lower)
            ]
        rows: List[tuple] = []
        with self._lock_scope() as (owner, parkable):
            self._lock_tables_shared(
                owner, parkable, tuple(entry.schema.name for entry in entries)
            )
            for entry in entries:
                table_stats = self.stats.analyze_table(entry.schema, entry.storage)
                rows.append(
                    (
                        entry.schema.name,
                        table_stats.row_count,
                        len(table_stats.columns),
                    )
                )
        self._plan_cache.clear()
        return ResultSet(["table", "rows", "columns"], rows)

    def _auto_analyze(self, tables: Tuple[str, ...]) -> bool:
        """Refresh statistics of any of *tables* whose storage drifted
        ``auto_analyze_threshold`` mutations past its last ANALYZE.

        Only tables that already have statistics qualify — the trigger
        keeps estimates fresh, it never introduces them — so a database
        that was never ANALYZEd (e.g. the deterministic contention sims)
        is entirely unaffected.  Returns True when anything re-collected
        (the plan cache was cleared: callers holding a cached plan must
        re-plan).  Skipped under a snapshot read, which must stay
        lock-free.
        """
        threshold = self.auto_analyze_threshold
        if threshold <= 0 or self._current_snapshot() is not None:
            return False
        stale = []
        for name in tables:
            table_stats = self.stats.get(name)
            if table_stats is None or not self.catalog.exists(name):
                continue
            entry = self.catalog.lookup(name)
            if entry.storage.version - table_stats.version >= threshold:
                stale.append(entry)
        if not stale:
            return False
        with self._lock_scope() as (owner, parkable):
            self._lock_tables_shared(
                owner, parkable, tuple(entry.schema.name for entry in stale)
            )
            for entry in stale:
                self.stats.analyze_table(entry.schema, entry.storage)
        self.statistics["auto_analyze"] += len(stale)
        self._plan_cache.clear()
        return True

    def _create_view(self, statement: ast.CreateView) -> ResultSet:
        key = statement.name.lower()
        if self.catalog.exists(statement.name) or key in self.views:
            raise CatalogError(
                f"a table or view named {statement.name!r} already exists"
            )
        # Validate the definition now (plannable, column arity) so broken
        # views fail at CREATE time, not at first use.
        planner = Planner(
            self.catalog,
            self.functions,
            views=self.views,
            stats=self.stats,
            cost_based=self.planner_mode == "cost",
        )
        plan = planner.plan_select(statement.select)
        if statement.columns is not None and len(statement.columns) != len(
            plan.output_names
        ):
            raise CatalogError(
                f"view {statement.name!r} declares {len(statement.columns)} "
                f"columns but its query produces {len(plan.output_names)}"
            )
        self.views[key] = statement
        self._plan_cache.clear()
        return ResultSet([], [], rowcount=0)

    def _create_table(self, statement: ast.CreateTable) -> ResultSet:
        schema = TableSchema(
            name=statement.name,
            columns=[
                Column(
                    name=column.name,
                    sql_type=column.sql_type,
                    not_null=column.not_null,
                    primary_key=column.primary_key,
                )
                for column in statement.columns
            ],
        )
        storage = TableStorage(schema)
        self.adopt_storage(schema, storage)
        return ResultSet([], [], rowcount=0)

    def _insert(self, statement: ast.Insert, params: Sequence[Any]) -> ResultSet:
        from repro.concurrency.footprint import insert_footprint  # local: avoid cycle

        entry = self.catalog.lookup(statement.table)
        # Table-level X on the target: serialises inserts against scans
        # holding the table-level S, which closes the phantom window.
        # INSERT ... SELECT sources are read, so they take table-S.
        sources = (
            self._referenced_tables(statement.select)
            if statement.rows is None
            else ()
        )
        requests = insert_footprint(entry.schema.name, sources)
        with self._lock_scope() as (owner, parkable):
            self._acquire_footprint(owner, parkable, requests)
            return self._insert_locked(statement, params, entry)

    def _insert_locked(
        self, statement: ast.Insert, params: Sequence[Any], entry
    ) -> ResultSet:
        self._enlist(entry.storage)
        schema = entry.schema
        if statement.columns is not None:
            positions = [schema.column_index(name) for name in statement.columns]
        else:
            positions = list(range(schema.arity))
        env = self._environment(params)
        source_rows: List[Tuple[Any, ...]]
        if statement.rows is not None:
            ctx = CompileContext([Frame(Scope([]))], self._reject_subquery, self.functions)
            source_rows = []
            for value_exprs in statement.rows:
                if len(value_exprs) != len(positions):
                    raise IntegrityError(
                        f"INSERT supplies {len(value_exprs)} values for "
                        f"{len(positions)} columns"
                    )
                closures = [compile_expression(expr, ctx) for expr in value_exprs]
                source_rows.append(tuple(fn((), env) for fn in closures))
        else:
            plan = self._plan(statement.select)
            source_rows = execute_plan(plan, env)
            if source_rows and len(source_rows[0]) != len(positions):
                raise IntegrityError(
                    "INSERT ... SELECT column count mismatch"
                )
        inserted = 0
        for values in source_rows:
            full_row: List[Any] = [None] * schema.arity
            for position, value in zip(positions, values):
                column = schema.columns[position]
                full_row[position] = (
                    None if is_null(value) else coerce_value(value, column.sql_type)
                )
            entry.storage.insert(full_row)
            inserted += 1
        return ResultSet([], [], rowcount=inserted)

    def _reject_subquery(self, statement, frames):
        # INSERT ... VALUES may not embed subqueries in this dialect; the
        # planner callback position still has to exist for the compiler.
        raise ExecutionError("subqueries are not allowed in VALUES lists")

    def _table_context(self, entry) -> Tuple[CompileContext, Scope]:
        scope = Scope([(entry.schema.name, entry.schema.column_names)])
        planner = Planner(
            self.catalog,
            self.functions,
            views=self.views,
            stats=self.stats,
            cost_based=self.planner_mode == "cost",
        )
        frames = [Frame(scope)]
        ctx = CompileContext(frames, planner._plan_subquery, self.functions)
        return ctx, scope

    def _matching_row_ids(self, entry, where, params, env) -> List[int]:
        ctx, __ = self._table_context(entry)
        predicate = (
            compile_expression(where, ctx) if where is not None else None
        )
        matches = []
        for row_id, row in entry.storage.scan():
            if predicate is None or predicate(row, env) is True:
                matches.append(row_id)
        return matches

    def _update(self, statement: ast.Update, params: Sequence[Any]) -> ResultSet:
        from repro.concurrency.footprint import update_footprint  # local: avoid cycle

        entry = self.catalog.lookup(statement.table)
        schema = entry.schema
        env = self._environment(params)
        ctx, __ = self._table_context(entry)
        compiled = [
            (schema.column_index(column), compile_expression(value, ctx))
            for column, value in statement.assignments
        ]
        requests = update_footprint(
            schema.name,
            statement.where,
            self._where_subquery_tables(statement.where),
        )
        with self._lock_scope() as (owner, parkable):
            self._acquire_footprint(owner, parkable, requests)
            row_ids = self._matching_row_ids(entry, statement.where, params, env)
            # Row-level X on every matched row *before* the first mutation:
            # a conflict aborts the statement with nothing to undo, and the
            # rows are re-fetched below after the grant, so an assignment
            # like ``v = v + 1`` always reads the latest committed value.
            self._acquire_row_locks(owner, parkable, requests, row_ids)
            self._enlist(entry.storage)
            for row_id in row_ids:
                old_row = entry.storage.fetch(row_id)
                row = list(old_row)
                # SQL semantics: every assignment sees the pre-update row.
                for position, closure in compiled:
                    value = closure(old_row, env)
                    column = schema.columns[position]
                    row[position] = (
                        None if is_null(value) else coerce_value(value, column.sql_type)
                    )
                entry.storage.update(row_id, row)
        return ResultSet([], [], rowcount=len(row_ids))

    def _delete(self, statement: ast.Delete, params: Sequence[Any]) -> ResultSet:
        from repro.concurrency.footprint import delete_footprint  # local: avoid cycle

        entry = self.catalog.lookup(statement.table)
        env = self._environment(params)
        requests = delete_footprint(
            entry.schema.name,
            statement.where,
            self._where_subquery_tables(statement.where),
        )
        with self._lock_scope() as (owner, parkable):
            self._acquire_footprint(owner, parkable, requests)
            row_ids = self._matching_row_ids(entry, statement.where, params, env)
            self._acquire_row_locks(owner, parkable, requests, row_ids)
            self._enlist(entry.storage)
            for row_id in row_ids:
                entry.storage.delete(row_id)
        return ResultSet([], [], rowcount=len(row_ids))


class _TransactionContext:
    """Context manager returned by :meth:`Database.transaction`."""

    def __init__(self, database: Database, session: Hashable = None) -> None:
        self._database = database
        self._session = session

    def __enter__(self) -> Database:
        self._database.begin(self._session)
        return self._database

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._database.commit(self._session)
        else:
            try:
                self._database.rollback(self._session)
            except ExecutionError:
                # The transaction may already be gone: a deadlock/timeout
                # victim is rolled back at the point of the conflict, so
                # there is nothing left to undo here.
                pass
        return False
