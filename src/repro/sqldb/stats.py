"""Table/column statistics and the planner's cost model (``ANALYZE``).

The paper's tuning loop (Section 5) hinges on knowing which access path
is actually cheap — a sequential scan, a single-key index probe, or a
multi-key ``IN``-list probe.  This module supplies the numbers that
decision needs:

* :class:`StatsCatalog` stores per-table :class:`TableStats` collected by
  the ``ANALYZE [table]`` statement: exact row counts, per-column
  distinct counts, null fractions, min/max, and a small equi-depth
  histogram (exact, not sampled — tables here fit in memory, so ANALYZE
  is one full scan).
* Selectivity estimation walks WHERE/ON conjunct ASTs: ``=`` is priced
  ``(1 - null_frac) / n_distinct``, ranges read the histogram, ``IN`` is
  ``k`` equalities, ``AND``/``OR``/``NOT`` combine with independence
  assumptions, and a column-to-column equality across two tables uses
  the classic ``1 / max(nd_left, nd_right)`` equi-join selectivity.
* The cost model prices a sequential scan against index probes with the
  seq/random cost split of the classic System-R formulation (a probe
  costs :data:`PROBE_COST` ~ four sequential tuples).

Everything here is deterministic: statistics are computed from sorted
values, estimates are pure functions of the statistics, and the planner
breaks cost ties by discovery order — plans stay byte-stable per seed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sqldb import ast_nodes as ast
from repro.sqldb.schema import TableSchema
from repro.sqldb.storage import TableStorage

#: Number of equi-depth histogram buckets collected per column.
NUM_HISTOGRAM_BUCKETS = 10

#: Cost of scanning one tuple sequentially (the unit of the model).
SEQ_TUPLE_COST = 1.0

#: Cost of one index probe (a random access ~ four sequential tuples,
#: the ratio the classic cost models and SNIPPETS' CostBasedPlanner use).
PROBE_COST = 4.0

#: Cost of fetching one tuple through an index after the probe.
INDEX_TUPLE_COST = 1.0

#: Selectivity of a predicate the estimator cannot price (subqueries,
#: opaque expressions): one third, the traditional textbook default.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Default selectivity of a range comparison with no usable histogram.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Default selectivity of an equality on a column without statistics.
DEFAULT_EQ_SELECTIVITY = 0.1

#: Default selectivity of a ``LIKE`` pattern match.
DEFAULT_LIKE_SELECTIVITY = 0.25

#: An equality predicate keeping more than this fraction of a table is
#: considered non-selective: an index probe over it would touch a large
#: slice of the table anyway, so a seq-scan plan is not a smell.  The
#: static analyzer keys W002/P002 severity off this threshold.
SELECTIVE_FRACTION = 0.1

_NUMERIC_TYPES = (int, float)


def _is_number(value: object) -> bool:
    return isinstance(value, _NUMERIC_TYPES) and not isinstance(value, bool)


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column, collected by ``ANALYZE``."""

    #: Count of distinct non-NULL values.
    n_distinct: int
    #: Fraction of rows where the column is NULL.
    null_frac: float
    #: Smallest / largest non-NULL value (None when the column is empty
    #: or its values do not sort cleanly).
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    #: Equi-depth histogram boundaries: ``NUM_HISTOGRAM_BUCKETS + 1``
    #: sorted values splitting the non-NULL data into equal-count runs.
    #: Empty when fewer than two values were observed.
    histogram: Tuple[object, ...] = ()

    def eq_selectivity(self) -> float:
        """Fraction of rows matching ``col = <value>`` under the uniform
        assumption: the non-NULL mass split across the distinct values."""
        if self.n_distinct <= 0:
            return 0.0
        return _clamp((1.0 - self.null_frac) / self.n_distinct)

    def fraction_below(self, value: object) -> Optional[float]:
        """Fraction of non-NULL values strictly below *value*, read from
        the histogram (or interpolated from min/max when there is none).
        None when the value does not compare against the column."""
        edges = self.histogram
        try:
            if edges:
                if not _safely_comparable(value, edges[0]):
                    return None
                if value <= edges[0]:  # type: ignore[operator]
                    return 0.0
                if value >= edges[-1]:  # type: ignore[operator]
                    return 1.0
                index = bisect_right(list(edges), value) - 1
                lower, upper = edges[index], edges[index + 1]
                intra = 0.5
                if _is_number(value) and _is_number(lower) and _is_number(upper):
                    width = float(upper) - float(lower)  # type: ignore[arg-type]
                    if width > 0:
                        intra = (float(value) - float(lower)) / width  # type: ignore[arg-type]
                buckets = len(edges) - 1
                return _clamp((index + intra) / buckets)
            if (
                _is_number(value)
                and _is_number(self.min_value)
                and _is_number(self.max_value)
            ):
                low = float(self.min_value)  # type: ignore[arg-type]
                high = float(self.max_value)  # type: ignore[arg-type]
                if high <= low:
                    return 0.0 if float(value) <= low else 1.0
                return _clamp((float(value) - low) / (high - low))
        except TypeError:
            return None
        return None

    def range_selectivity(self, operator: str, value: object) -> float:
        """Selectivity of ``col <op> value`` for ``<``/``<=``/``>``/``>=``."""
        below = self.fraction_below(value)
        if below is None:
            return DEFAULT_RANGE_SELECTIVITY
        fraction = below if operator in ("<", "<=") else 1.0 - below
        return _clamp((1.0 - self.null_frac) * fraction)


def _safely_comparable(a: object, b: object) -> bool:
    if _is_number(a) and _is_number(b):
        return True
    return type(a) is type(b)


@dataclass(frozen=True)
class TableStats:
    """Statistics of one table, collected by ``ANALYZE``."""

    table: str
    row_count: int
    #: ``TableStorage.version`` at collection time; a mismatch at plan
    #: time means the statistics are stale (still used — re-ANALYZE to
    #: refresh, exactly like a production optimizer).
    version: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


def _equi_depth_edges(ordered: Sequence[object]) -> Tuple[object, ...]:
    """Histogram boundaries from the sorted non-NULL values: the sample
    quantiles at ``i / NUM_HISTOGRAM_BUCKETS``.  Deterministic — same
    data, same edges."""
    n = len(ordered)
    if n < 2:
        return ()
    buckets = NUM_HISTOGRAM_BUCKETS
    edges: List[object] = []
    for i in range(buckets + 1):
        position = (i * (n - 1)) // buckets
        edges.append(ordered[position])
    return tuple(edges)


def collect_table_stats(schema: TableSchema, storage: TableStorage) -> TableStats:
    """One full-scan statistics pass over *storage* (the ANALYZE body)."""
    rows = list(storage.rows())
    n = len(rows)
    columns: Dict[str, ColumnStats] = {}
    for position, column in enumerate(schema.columns):
        non_null = [row[position] for row in rows if row[position] is not None]
        null_frac = (n - len(non_null)) / n if n else 0.0
        try:
            ordered: List[object] = sorted(non_null)  # type: ignore[type-var]
        except TypeError:
            ordered = []
        columns[column.name.lower()] = ColumnStats(
            n_distinct=len(set(non_null)),
            null_frac=null_frac,
            min_value=ordered[0] if ordered else None,
            max_value=ordered[-1] if ordered else None,
            histogram=_equi_depth_edges(ordered),
        )
    return TableStats(
        table=schema.name,
        row_count=n,
        version=storage.version,
        columns=columns,
    )


class StatsCatalog:
    """Per-table statistics, keyed case-insensitively by table name.

    Purely advisory: losing it (server crash — statistics are not WAL
    logged) never changes results, only plan quality, and a fresh
    ``ANALYZE`` rebuilds it from the data.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, TableStats] = {}

    def analyze_table(self, schema: TableSchema, storage: TableStorage) -> TableStats:
        stats = collect_table_stats(schema, storage)
        self._tables[schema.name.lower()] = stats
        return stats

    def get(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name.lower())

    def drop(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def clear(self) -> None:
        self._tables.clear()

    def table_names(self) -> List[str]:
        return sorted(stats.table for stats in self._tables.values())


# -- cost model --------------------------------------------------------------


def seq_scan_cost(row_count: float) -> float:
    """Cost of sequentially scanning *row_count* tuples."""
    return SEQ_TUPLE_COST * row_count


def index_probe_cost(keys: int, rows_out: float) -> float:
    """Cost of *keys* index probes producing *rows_out* tuples total."""
    return PROBE_COST * keys + INDEX_TUPLE_COST * rows_out


def probe_rows(
    stats: TableStats, column: str, unique: bool, keys: int
) -> float:
    """Estimated rows produced by probing an index on *column* with
    *keys* distinct keys."""
    if unique:
        per_key = 1.0
    else:
        column_stats = stats.column(column)
        selectivity = (
            column_stats.eq_selectivity()
            if column_stats is not None
            else DEFAULT_EQ_SELECTIVITY
        )
        per_key = stats.row_count * selectivity
    return min(float(stats.row_count), keys * per_key)


# -- cardinality estimation over predicate ASTs ------------------------------

BindingStats = Dict[str, Optional[TableStats]]


def column_binding(
    column: ast.ColumnRef, binding_stats: BindingStats
) -> Optional[str]:
    """The binding a column reference resolves to, or None when it is
    unknown or ambiguous (outer references, bindings without statistics
    that might own the name)."""
    if column.qualifier is not None:
        key = column.qualifier.lower()
        return key if key in binding_stats else None
    if any(stats is None for stats in binding_stats.values()):
        return None  # a stats-less binding might own the bare name
    owners = [
        binding
        for binding, stats in binding_stats.items()
        if stats is not None and stats.column(column.name) is not None
    ]
    if len(owners) == 1:
        return owners[0]
    return None


def _column_stats(
    column: ast.ColumnRef, binding_stats: BindingStats
) -> Optional[ColumnStats]:
    binding = column_binding(column, binding_stats)
    if binding is None:
        return None
    table_stats = binding_stats.get(binding)
    if table_stats is None:
        return None
    return table_stats.column(column.name)


def references_only(
    expression: ast.Expression, binding: str, binding_stats: BindingStats
) -> bool:
    """True when every column reference in *expression* resolves to
    *binding* (and there is at least one), with no subqueries — i.e. the
    predicate restricts that one table alone."""
    wanted = binding.lower()
    found = False
    for node in ast.walk_expression(expression):
        if isinstance(node, (ast.ExistsTest, ast.InSubquery, ast.ScalarSubquery)):
            return False
        if isinstance(node, ast.ColumnRef):
            if column_binding(node, binding_stats) != wanted:
                return False
            found = True
    return found


def _literal_value(expression: ast.Expression) -> Tuple[bool, object]:
    if isinstance(expression, ast.Literal):
        return True, expression.value
    return False, None


def _has_column_refs(expression: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.ColumnRef)
        for node in ast.walk_expression(expression)
    )


def _equality_selectivity(
    conjunct: ast.BinaryOp, binding_stats: BindingStats
) -> float:
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef):
        left_binding = column_binding(left, binding_stats)
        right_binding = column_binding(right, binding_stats)
        if (
            left_binding is not None
            and right_binding is not None
            and left_binding != right_binding
        ):
            selectivity = equi_join_selectivity_from_stats(
                _column_stats(left, binding_stats),
                _column_stats(right, binding_stats),
            )
            if selectivity is not None:
                return selectivity
        return DEFAULT_EQ_SELECTIVITY
    for column_side, value_side in (
        (left, right),
        (right, left),
    ):
        if not isinstance(column_side, ast.ColumnRef):
            continue
        if _has_column_refs(value_side):
            continue
        stats = _column_stats(column_side, binding_stats)
        if stats is not None:
            return stats.eq_selectivity()
        return DEFAULT_EQ_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _range_op_selectivity(
    conjunct: ast.BinaryOp, binding_stats: BindingStats
) -> float:
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    for column_side, value_side, operator in (
        (conjunct.left, conjunct.right, conjunct.operator),
        (conjunct.right, conjunct.left, flipped[conjunct.operator]),
    ):
        if not isinstance(column_side, ast.ColumnRef):
            continue
        if _has_column_refs(value_side):
            continue
        stats = _column_stats(column_side, binding_stats)
        is_literal, value = _literal_value(value_side)
        if stats is not None and is_literal and value is not None:
            return stats.range_selectivity(operator, value)
        return DEFAULT_RANGE_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _between_selectivity(
    conjunct: ast.Between, binding_stats: BindingStats
) -> float:
    base = DEFAULT_RANGE_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
    if isinstance(conjunct.operand, ast.ColumnRef):
        stats = _column_stats(conjunct.operand, binding_stats)
        low_lit, low = _literal_value(conjunct.low)
        high_lit, high = _literal_value(conjunct.high)
        if stats is not None and low_lit and high_lit:
            below_low = stats.fraction_below(low)
            below_high = stats.fraction_below(high)
            if below_low is not None and below_high is not None:
                base = _clamp(
                    (1.0 - stats.null_frac) * max(0.0, below_high - below_low)
                )
    return _clamp(1.0 - base) if conjunct.negated else base


def conjunct_selectivity(
    expression: ast.Expression, binding_stats: BindingStats
) -> float:
    """Estimated fraction of candidate rows satisfying *expression*."""
    if isinstance(expression, ast.BinaryOp):
        operator = expression.operator.upper()
        if operator == "AND":
            return _clamp(
                conjunct_selectivity(expression.left, binding_stats)
                * conjunct_selectivity(expression.right, binding_stats)
            )
        if operator == "OR":
            left = conjunct_selectivity(expression.left, binding_stats)
            right = conjunct_selectivity(expression.right, binding_stats)
            return _clamp(left + right - left * right)
        if operator == "=":
            return _clamp(_equality_selectivity(expression, binding_stats))
        if operator in ("<>", "!="):
            equal = ast.BinaryOp("=", expression.left, expression.right)
            return _clamp(1.0 - _equality_selectivity(equal, binding_stats))
        if operator in ("<", "<=", ">", ">="):
            return _clamp(_range_op_selectivity(expression, binding_stats))
        return DEFAULT_SELECTIVITY
    if isinstance(expression, ast.UnaryOp):
        if expression.operator.upper() == "NOT":
            return _clamp(
                1.0 - conjunct_selectivity(expression.operand, binding_stats)
            )
        return DEFAULT_SELECTIVITY
    if isinstance(expression, ast.InList):
        selectivity = DEFAULT_SELECTIVITY
        if isinstance(expression.operand, ast.ColumnRef):
            stats = _column_stats(expression.operand, binding_stats)
            per_key = (
                stats.eq_selectivity()
                if stats is not None
                else DEFAULT_EQ_SELECTIVITY
            )
            selectivity = _clamp(len(expression.items) * per_key)
        return _clamp(1.0 - selectivity) if expression.negated else selectivity
    if isinstance(expression, ast.IsNullTest):
        null_frac = DEFAULT_EQ_SELECTIVITY
        if isinstance(expression.operand, ast.ColumnRef):
            stats = _column_stats(expression.operand, binding_stats)
            if stats is not None:
                null_frac = stats.null_frac
        return _clamp(1.0 - null_frac) if expression.negated else _clamp(null_frac)
    if isinstance(expression, ast.Between):
        return _between_selectivity(expression, binding_stats)
    if isinstance(expression, ast.Like):
        if expression.negated:
            return _clamp(1.0 - DEFAULT_LIKE_SELECTIVITY)
        return DEFAULT_LIKE_SELECTIVITY
    if isinstance(expression, ast.Literal):
        if expression.value is True:
            return 1.0
        if expression.value is False:
            return 0.0
    return DEFAULT_SELECTIVITY


def condition_selectivity(
    conjuncts: Sequence[ast.Expression], binding_stats: BindingStats
) -> float:
    """Combined selectivity of *conjuncts* under independence."""
    selectivity = 1.0
    for conjunct in conjuncts:
        selectivity *= conjunct_selectivity(conjunct, binding_stats)
    return _clamp(selectivity)


def equi_join_selectivity_from_stats(
    left: Optional[ColumnStats], right: Optional[ColumnStats]
) -> Optional[float]:
    """The classic ``1 / max(nd_left, nd_right)`` equi-join selectivity."""
    if left is None or right is None:
        return None
    distinct = max(left.n_distinct, right.n_distinct)
    if distinct <= 0:
        return 0.0
    return _clamp(1.0 / distinct)


def join_selectivity(
    conjunct: ast.Expression,
    left_group: Dict[str, TableStats],
    right_group: Dict[str, TableStats],
) -> Optional[float]:
    """Selectivity of *conjunct* if it is an equi-join predicate between
    the two binding groups; None otherwise."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.operator == "="):
        return None
    if not (
        isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    combined: BindingStats = {}
    combined.update(left_group)
    combined.update(right_group)
    left_binding = column_binding(conjunct.left, combined)
    right_binding = column_binding(conjunct.right, combined)
    if left_binding is None or right_binding is None:
        return None
    sides = {left_binding in left_group, right_binding in left_group}
    if sides != {True, False}:
        return None  # both columns on the same side: not a join edge
    return equi_join_selectivity_from_stats(
        _column_stats(conjunct.left, combined),
        _column_stats(conjunct.right, combined),
    )
