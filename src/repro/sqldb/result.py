"""Result sets returned by :meth:`repro.sqldb.database.Database.execute`."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class ResultSet:
    """An immutable query result: column names plus rows.

    For DML statements ``rows`` is empty and ``rowcount`` reports the number
    of affected rows; for queries ``rowcount`` equals ``len(rows)``.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
        rowcount: Optional[int] = None,
    ) -> None:
        self.columns: List[str] = list(columns)
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        self.rowcount: int = len(self.rows) if rowcount is None else rowcount
        self._column_index: Dict[str, int] = {}
        for position, name in enumerate(self.columns):
            self._column_index.setdefault(name.lower(), position)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def fetchall(self) -> List[Tuple[Any, ...]]:
        return list(self.rows)

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """Value of the first column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        """All values of the named column."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def column_index(self, name: str) -> int:
        try:
            return self._column_index[name.lower()]
        except KeyError:
            raise KeyError(
                f"result has no column {name!r}; columns: {self.columns}"
            ) from None

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by (lowercased) column name."""
        keys = [name.lower() for name in self.columns]
        return [dict(zip(keys, row)) for row in self.rows]

    def __repr__(self) -> str:
        return (
            f"ResultSet(columns={self.columns!r}, rows={len(self.rows)}, "
            f"rowcount={self.rowcount})"
        )
