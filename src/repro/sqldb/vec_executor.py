"""Vectorized physical operators: batch-at-a-time columnar execution.

The row executor (:mod:`repro.sqldb.executor`) interprets plans one tuple
at a time; under CPython the per-row cost — a generator resumption plus a
closure call per expression per row — dominates scan-heavy PDM queries.
The operators here process :class:`~repro.sqldb.columnar.Batch` chunks
instead: each exposes ``batches(env)`` yielding column batches, and
expression work runs through the columnar kernels compiled by
:mod:`repro.sqldb.expressions` (falling back to the row closure over the
batch's row view where no kernel exists, which is semantically identical
by construction).

The row executor remains the *semantics oracle*: a plan is vectorized
only when every operator in it has a batch implementation
(:func:`vectorized_root`), otherwise the whole plan runs row-at-a-time
unchanged — semantics never fork, they are either identical or the
columnar path is not taken.  Plans with CTEs, index access paths,
nested-loop joins or derived-table subplans fall back; the differential
test suite pins result identity for everything that does vectorize.

All operators preserve the row executor's exact output order (scan order,
left-order hash probe, first-seen group and distinct order), so ordered
result comparison against the oracle is exact, not set-based.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sqldb import executor as rowexec
from repro.sqldb.columnar import BATCH_SIZE, Batch, table_batches
from repro.sqldb.expressions import ExprFn, as_kernel
from repro.sqldb.planner import Plan, SubplanOperator

Row = Tuple[Any, ...]


class UnsupportedPlanError(Exception):
    """Internal: the plan contains an operator with no batch implementation."""


class VecOperator:
    """Base class: ``batches(env)`` yields :class:`Batch` chunks in order."""

    output_names: List[str] = []

    def batches(self, env) -> Iterator[Batch]:
        raise NotImplementedError

    def _emit(self, batch: Batch, env) -> Batch:
        """Account one outgoing batch in the execution counters."""
        counters = env.counters
        counters["vec_batches"] += 1
        counters["vec_rows"] += batch.length
        return batch

    def _materialised(self, rows: List[Row], env) -> Iterator[Batch]:
        """Re-chunk a materialised row list into output batches."""
        arity = len(self.output_names)
        for start in range(0, len(rows), BATCH_SIZE):
            yield self._emit(Batch.from_rows(rows[start : start + BATCH_SIZE], arity), env)


class VecSeqScan(VecOperator):
    """Full scan of a base table over its cached column chunks."""

    def __init__(self, storage) -> None:
        self.storage = storage
        self.output_names = list(storage.schema.column_names)

    def batches(self, env) -> Iterator[Batch]:
        for batch in table_batches(self.storage, snapshot=env.snapshot):
            env.counters["rows_scanned"] += batch.length
            yield self._emit(batch, env)


class VecRowsSource(VecOperator):
    """Batches over a pre-materialised row list (VALUES, test fixtures)."""

    def __init__(self, columns: List[str], rows: List[Row]) -> None:
        self.output_names = list(columns)
        self._rows = rows

    def batches(self, env) -> Iterator[Batch]:
        yield from self._materialised(self._rows, env)


class VecFilter(VecOperator):
    """Keep rows whose predicate is TRUE, via the predicate's kernel.

    A batch the predicate fully accepts passes through untouched (the
    common case for selective scans is all-or-mostly matches per chunk);
    otherwise matching positions are gathered into a fresh batch.
    """

    def __init__(self, child: VecOperator, predicate: ExprFn) -> None:
        self.child = child
        self.predicate = predicate
        self.kernel = as_kernel(predicate)
        self.output_names = list(child.output_names)

    def batches(self, env) -> Iterator[Batch]:
        kernel = self.kernel
        for batch in self.child.batches(env):
            mask = kernel(batch, env)
            # Strict identity (`is True`), like the row Filter: a predicate
            # yielding a plain 1 does not keep the row in either executor.
            selected = [i for i, value in enumerate(mask) if value is True]
            if len(selected) == batch.length:
                yield self._emit(batch, env)
            elif selected:
                yield self._emit(batch.gather(selected), env)


class VecProject(VecOperator):
    """Compute the select list column-at-a-time — no row materialisation."""

    def __init__(self, child: VecOperator, exprs: List[ExprFn], names: List[str]) -> None:
        self.child = child
        self.exprs = exprs
        self.kernels = [as_kernel(fn) for fn in exprs]
        self.output_names = list(names)

    def batches(self, env) -> Iterator[Batch]:
        kernels = self.kernels
        for batch in self.child.batches(env):
            columns = [kernel(batch, env) for kernel in kernels]
            yield self._emit(Batch(columns, batch.length), env)


class VecHashJoin(VecOperator):
    """Equi-join with batched build and probe.

    Build consumes the right child batch-wise, computing the key columns
    with kernels and inserting right rows in scan order; probe walks the
    left child in order, so the output row order matches the row
    executor's :class:`~repro.sqldb.executor.HashJoin` exactly.
    """

    def __init__(
        self,
        left: VecOperator,
        right: VecOperator,
        left_keys: List[ExprFn],
        right_keys: List[ExprFn],
        residual: Optional[ExprFn] = None,
        kind: str = "INNER",
    ) -> None:
        self.left = left
        self.right = right
        self.left_kernels = [as_kernel(fn) for fn in left_keys]
        self.right_kernels = [as_kernel(fn) for fn in right_keys]
        self.residual = residual
        self.kind = kind
        self.output_names = list(left.output_names) + list(right.output_names)

    def batches(self, env) -> Iterator[Batch]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        for batch in self.right.batches(env):
            key_columns = [kernel(batch, env) for kernel in self.right_kernels]
            rows = batch.rows()
            for i, key in enumerate(zip(*key_columns)):
                if any(part is None for part in key):
                    continue  # NULL never equi-joins
                table.setdefault(key, []).append(rows[i])
        pad = (None,) * len(self.right.output_names)
        residual = self.residual
        pad_left = self.kind == "LEFT"
        for batch in self.left.batches(env):
            key_columns = [kernel(batch, env) for kernel in self.left_kernels]
            left_rows = batch.rows()
            out: List[Row] = []
            append = out.append
            for i, key in enumerate(zip(*key_columns)):
                left_row = left_rows[i]
                matched = False
                if not any(part is None for part in key):
                    for right_row in table.get(key, ()):
                        combined = left_row + right_row
                        if residual is None or residual(combined, env) is True:
                            matched = True
                            append(combined)
                if pad_left and not matched:
                    append(left_row + pad)
            if out:
                yield self._emit(Batch.from_rows(out, len(self.output_names)), env)


class VecAggregate(VecOperator):
    """Hash aggregation fed column-at-a-time.

    Group keys and aggregate arguments are computed with kernels per
    batch; accumulation reuses the row executor's
    :class:`~repro.sqldb.functions.Aggregator` state machines, so DISTINCT
    handling, NULL screening and result typing cannot diverge.  Groups are
    emitted in first-seen order, matching the row operator.
    """

    def __init__(
        self,
        child: VecOperator,
        group_exprs: List[ExprFn],
        aggregates: List[rowexec.AggregateSpec],
        output_names: List[str],
    ) -> None:
        self.child = child
        self.group_kernels = [as_kernel(fn) for fn in group_exprs]
        self.aggregates = aggregates
        self.arg_kernels = [
            None if spec.star else as_kernel(spec.argument) for spec in aggregates
        ]
        self.output_names = list(output_names)

    def batches(self, env) -> Iterator[Batch]:
        groups: Dict[Tuple[Any, ...], list] = {}
        order: List[Tuple[Any, ...]] = []
        specs = self.aggregates
        group_kernels = self.group_kernels
        for batch in self.child.batches(env):
            if group_kernels:
                key_columns = [kernel(batch, env) for kernel in group_kernels]
                keys = list(zip(*key_columns))
            else:
                keys = [()] * batch.length
            arg_columns = [
                None if kernel is None else kernel(batch, env)
                for kernel in self.arg_kernels
            ]
            for i, key in enumerate(keys):
                aggregators = groups.get(key)
                if aggregators is None:
                    aggregators = [spec.new_aggregator() for spec in specs]
                    groups[key] = aggregators
                    order.append(key)
                for column, aggregator in zip(arg_columns, aggregators):
                    aggregator.add(None if column is None else column[i])
        if not group_kernels and not groups:
            # SELECT COUNT(*) FROM empty_table must yield one row.
            groups[()] = [spec.new_aggregator() for spec in specs]
            order.append(())
        result = [
            key + tuple(aggregator.result() for aggregator in groups[key])
            for key in order
        ]
        yield from self._materialised(result, env)


class VecSort(VecOperator):
    """Materialise, sort with the row executor's key logic, re-batch."""

    def __init__(self, child: VecOperator, keys: List[Tuple[ExprFn, bool]]) -> None:
        self.child = child
        self.keys = keys
        self.output_names = list(child.output_names)

    def batches(self, env) -> Iterator[Batch]:
        materialised: List[Row] = []
        for batch in self.child.batches(env):
            materialised.extend(batch.rows())
        # Stable sort by least-significant key first — identical to Sort.
        for key_fn, descending in reversed(self.keys):
            materialised.sort(
                key=lambda row: rowexec._null_safe_key(key_fn(row, env)),
                reverse=descending,
            )
        yield from self._materialised(materialised, env)


class VecDistinct(VecOperator):
    """Remove duplicates, first occurrence wins (row-operator order)."""

    def __init__(self, child: VecOperator) -> None:
        self.child = child
        self.output_names = list(child.output_names)

    def batches(self, env) -> Iterator[Batch]:
        seen: set = set()
        arity = len(self.output_names)
        for batch in self.child.batches(env):
            out: List[Row] = []
            for row in batch.rows():
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            if out:
                yield self._emit(Batch.from_rows(out, arity), env)


class VecUnionAll(VecOperator):
    """Concatenate children batch streams."""

    def __init__(self, children: List[VecOperator]) -> None:
        self.children = children
        self.output_names = list(children[0].output_names)

    def batches(self, env) -> Iterator[Batch]:
        for child in self.children:
            for batch in child.batches(env):
                yield self._emit(batch, env)


class VecOffset(VecOperator):
    """Skip the first N rows across batch boundaries."""

    def __init__(self, child: VecOperator, offset_fn: ExprFn) -> None:
        self.child = child
        self.offset_fn = offset_fn
        self.output_names = list(child.output_names)

    def batches(self, env) -> Iterator[Batch]:
        skip = self.offset_fn((), env)
        skip = 0 if skip is None else int(skip)
        for batch in self.child.batches(env):
            if skip == 0:
                yield self._emit(batch, env)
            elif skip >= batch.length:
                skip -= batch.length
            else:
                yield self._emit(batch.gather(list(range(skip, batch.length))), env)
                skip = 0


class VecLimit(VecOperator):
    """Yield at most N rows, truncating the final batch."""

    def __init__(self, child: VecOperator, limit_fn: ExprFn) -> None:
        self.child = child
        self.limit_fn = limit_fn
        self.output_names = list(child.output_names)

    def batches(self, env) -> Iterator[Batch]:
        remaining = self.limit_fn((), env)
        remaining = 0 if remaining is None else int(remaining)
        if remaining <= 0:
            return
        for batch in self.child.batches(env):
            if batch.length <= remaining:
                remaining -= batch.length
                yield self._emit(batch, env)
                if remaining == 0:
                    return
            else:
                yield self._emit(batch.gather(list(range(remaining))), env)
                return


def _vectorize(op: rowexec.Operator) -> VecOperator:
    """Translate a row operator tree into its batch equivalent.

    Raises :class:`UnsupportedPlanError` on the first operator without a
    batch implementation — vectorization is whole-plan or not at all.
    """
    if isinstance(op, rowexec.SeqScan):
        return VecSeqScan(op.storage)
    if isinstance(op, rowexec.RowsSource):
        return VecRowsSource(op.output_names, op._rows)
    if isinstance(op, rowexec.Filter):
        return VecFilter(_vectorize(op.child), op.predicate)
    if isinstance(op, rowexec.Project):
        return VecProject(_vectorize(op.child), op.exprs, op.output_names)
    if isinstance(op, rowexec.HashJoin):
        return VecHashJoin(
            _vectorize(op.left),
            _vectorize(op.right),
            op.left_keys,
            op.right_keys,
            residual=op.residual,
            kind=op.kind,
        )
    if isinstance(op, rowexec.Aggregate):
        return VecAggregate(
            _vectorize(op.child), op.group_exprs, op.aggregates, op.output_names
        )
    if isinstance(op, rowexec.Sort):
        return VecSort(_vectorize(op.child), op.keys)
    if isinstance(op, rowexec.Distinct):
        return VecDistinct(_vectorize(op.child))
    if isinstance(op, rowexec.UnionAll):
        return VecUnionAll([_vectorize(child) for child in op.children])
    if isinstance(op, rowexec.Offset):
        return VecOffset(_vectorize(op.child), op.offset_fn)
    if isinstance(op, rowexec.Limit):
        return VecLimit(_vectorize(op.child), op.limit_fn)
    if isinstance(op, SubplanOperator):
        raise UnsupportedPlanError("derived-table subplan runs row-at-a-time")
    raise UnsupportedPlanError(
        f"operator {type(op).__name__} has no vectorized implementation"
    )


def vectorized_root(plan: Plan) -> Tuple[Optional[VecOperator], str]:
    """The batch operator tree for *plan*, or ``(None, reason)``.

    Memoised on ``plan.vec_cache`` — plans are immutable after build (the
    database's plan cache reuses them across executions), so the
    translation is done once per plan, not once per query.
    """
    cached = plan.vec_cache
    if cached is not None:
        return cached  # type: ignore[return-value]
    if plan.ctes:
        result: Tuple[Optional[VecOperator], str] = (
            None,
            "plan materialises CTEs",
        )
    else:
        try:
            result = (_vectorize(plan.root), "")
        except UnsupportedPlanError as exc:
            result = (None, str(exc))
    plan.vec_cache = result
    return result


def vec_execute(root: VecOperator, env) -> List[Row]:
    """Drain the batch pipeline into the final row list."""
    rows: List[Row] = []
    for batch in root.batches(env):
        rows.extend(batch.rows())
    return rows
