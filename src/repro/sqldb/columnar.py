"""Column-chunk batches: the data representation of the vectorized executor.

A :class:`Batch` is a horizontal slice of a relation stored column-wise:
one Python list (or tuple) per output slot, all of the same length.  The
vectorized operators in :mod:`repro.sqldb.vec_executor` pass batches
instead of single rows, so per-tuple interpreter overhead — generator
frames, closure calls, tuple indexing — is paid once per ``BATCH_SIZE``
rows instead of once per row.  NULLs stay in-band as ``None`` (matching
the row executor), but every batch can materialise a *validity mask* per
column on demand; the IS [NOT] NULL kernels and aggregate inputs use the
mask instead of re-testing ``is None`` element by element.

Base-table batches are built lazily from :class:`~repro.sqldb.storage.
TableStorage` and cached on the storage object, keyed by its mutation
``version`` — any insert/update/delete (including transaction rollback
replay) invalidates the cached chunks, so a columnar scan can never see
stale data.  Batches are immutable by convention: operators must build
new column lists rather than mutate ones they received, because chunk
columns are shared between executions through the cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Rows per column chunk.  Big enough that the per-batch interpreter
#: overhead (one Python-level loop set-up per operator per batch) is
#: amortised over thousands of rows, small enough that a chunk's columns
#: stay cache-resident and short-circuiting operators (LIMIT, EXISTS-style
#: early exits) never materialise much more than they consume.
BATCH_SIZE = 2048

Row = Tuple[Any, ...]


class Batch:
    """One column-chunk: ``columns[slot][i]`` is row *i*'s value for *slot*.

    ``rows()`` materialises (and memoises) the row-tuple view used by
    operators or expressions that have no columnar implementation — the
    generic fallback stays batch-at-a-time but evaluates row closures.
    """

    __slots__ = ("columns", "length", "_rows", "_validity")

    # Either a plain list of column sequences or the lazy
    # :class:`_GatheredColumns` view produced by :meth:`gather`.
    columns: Any

    def __init__(
        self,
        columns: Sequence[Sequence[Any]],
        length: int,
        rows: Optional[List[Row]] = None,
    ) -> None:
        self.columns = list(columns)
        self.length = length
        self._rows = rows
        self._validity: Optional[Dict[int, List[bool]]] = None

    @classmethod
    def from_rows(cls, rows: List[Row], arity: int) -> "Batch":
        """Pivot a list of row tuples into a column chunk (rows kept)."""
        length = len(rows)
        if length == 0:
            columns: List[Sequence[Any]] = [() for __ in range(arity)]
        else:
            columns = list(zip(*rows)) if arity else []
        return cls(columns, length, rows=rows)

    def rows(self) -> List[Row]:
        """The row-tuple view of this batch (memoised)."""
        if self._rows is None:
            if self.columns:
                self._rows = list(zip(*self.columns))
            else:
                # Zero-arity relation (SELECT without FROM): every row is ().
                self._rows = [()] * self.length
        return self._rows

    def validity(self, slot: int) -> List[bool]:
        """Validity mask of one column: ``True`` where the value is non-NULL.

        Memoised per batch, so repeated IS NULL tests (and aggregate NULL
        screening) over the same cached chunk share one mask.
        """
        if self._validity is None:
            self._validity = {}
        mask = self._validity.get(slot)
        if mask is None:
            mask = [value is not None for value in self.columns[slot]]
            self._validity[slot] = mask
        return mask

    def gather(self, indices: List[int]) -> "Batch":
        """A new batch holding the given row positions (in that order).

        Columns are gathered *lazily*: a filtered batch often has only one
        or two of its columns read downstream (a narrow projection, a join
        key), so each column is materialised on first access rather than
        eagerly copied.
        """
        batch = object.__new__(Batch)
        batch.columns = _GatheredColumns(self.columns, indices)
        batch.length = len(indices)
        batch._rows = None
        batch._validity = None
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch(arity={len(self.columns)}, length={self.length})"


class _GatheredColumns:
    """Column list of a gathered batch, materialised per column on demand.

    Quacks like the list :class:`Batch` stores: ``[slot]`` indexing,
    ``len``, truthiness and iteration (``zip(*columns)`` in ``rows()``).
    """

    __slots__ = ("_source", "_indices", "_cache")

    def __init__(self, source_columns, indices: List[int]) -> None:
        self._source = source_columns
        self._indices = indices
        self._cache: Dict[int, List[Any]] = {}

    def __len__(self) -> int:
        return len(self._source)

    def __getitem__(self, slot: int) -> List[Any]:
        column = self._cache.get(slot)
        if column is None:
            source = self._source[slot]
            column = self._cache[slot] = [source[i] for i in self._indices]
        return column

    def __iter__(self):
        for slot in range(len(self._source)):
            yield self[slot]


def table_batches(storage, batch_size: int = BATCH_SIZE, snapshot=None) -> List[Batch]:
    """The column chunks of a base table, built lazily and cached.

    The cache key is ``(storage.version, batch_size)``: every mutation of
    the heap bumps the version, so a columnar scan after any DML (or a
    rollback) rebuilds the chunks.  The chunk batches keep a reference to
    the underlying row tuples, making the row-view (:meth:`Batch.rows`)
    free for fallback expressions.

    With *snapshot* (an MVCC snapshot read) the chunks are built from the
    rows *visible to that snapshot* and cached separately under
    ``(snapshot.stamp, storage.version, batch_size)`` — two reads of the
    same snapshot share chunks, a writer's commit (version bump) or a
    different snapshot rebuilds them, and the live-heap cache is never
    polluted with snapshot data.
    """
    if snapshot is not None:
        cached = getattr(storage, "_columnar_snapshot_cache", None)
        key = (snapshot.stamp, storage.version, batch_size)
        if cached is not None and cached[0] == key:
            return cached[1]
        rows = list(storage.snapshot_rows(snapshot))
        arity = storage.schema.arity
        batches = [
            Batch.from_rows(rows[start : start + batch_size], arity)
            for start in range(0, len(rows), batch_size)
        ]
        storage._columnar_snapshot_cache = (key, batches)
        return batches
    cached = getattr(storage, "_columnar_cache", None)
    if cached is not None and cached[0] == storage.version and cached[1] == batch_size:
        return cached[2]
    rows = list(storage.rows())
    arity = storage.schema.arity
    batches = [
        Batch.from_rows(rows[start : start + batch_size], arity)
        for start in range(0, len(rows), batch_size)
    ]
    storage._columnar_cache = (storage.version, batch_size, batches)
    return batches


def eval_batch(fn, batch: Batch, env) -> List[Any]:
    """Evaluate a compiled expression over a whole batch.

    Uses the columnar kernel attached by
    :func:`repro.sqldb.expressions.compile_expression` when the expression
    supports one; otherwise falls back to evaluating the row closure over
    the batch's row view — still batch-at-a-time, and semantically
    identical by construction because it *is* the row executor's closure.
    """
    kernel = getattr(fn, "vector", None)
    if kernel is not None:
        return kernel(batch, env)
    return [fn(row, env) for row in batch.rows()]
