"""Schema objects: columns, table schemas and the catalog.

The catalog maps case-insensitive table names to their schema and storage.
It is deliberately simple — no schemas/namespaces — because the paper's
PDM mapping is a flat set of tables (``assy``, ``comp``, ``link``,
``spec``, ``specified_by``, plus rule/option tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CatalogError
from repro.sqldb.types import SQLType


@dataclass(frozen=True)
class Column:
    """A column of a table: name, type and constraint flags."""

    name: str
    sql_type: SQLType
    not_null: bool = False
    primary_key: bool = False


@dataclass
class TableSchema:
    """The schema of one table."""

    name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index_by_name: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._index_by_name:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._index_by_name[key] = position

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        """Return the 0-based position of *name* (case-insensitive).

        Raises :class:`CatalogError` for unknown columns.
        """
        try:
            return self._index_by_name[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_by_name

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def primary_key_index(self) -> Optional[int]:
        """Position of the primary-key column, or None if the table has none."""
        for position, column in enumerate(self.columns):
            if column.primary_key:
                return position
        return None


class Catalog:
    """Case-insensitive registry of tables (schema + storage handle)."""

    def __init__(self) -> None:
        self._tables: Dict[str, "TableEntry"] = {}

    def create(self, schema: TableSchema, storage) -> None:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = TableEntry(schema=schema, storage=storage)

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def lookup(self, name: str) -> "TableEntry":
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def exists(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return [entry.schema.name for entry in self._tables.values()]


@dataclass
class TableEntry:
    """Catalog record binding a schema to its storage."""

    schema: TableSchema
    storage: object
