"""Semi-naive evaluation of ``WITH RECURSIVE`` common table expressions.

SQL:1999 linear recursion semantics: the non-recursive (seed) branches
initialise the working table; each iteration evaluates the recursive
branches with the CTE name bound to the *delta* of the previous iteration
(not the accumulated result), and appends the rows produced.  With UNION
(distinct) semantics, rows already in the accumulated result are dropped
and the fixpoint is reached when an iteration contributes nothing new;
with UNION ALL a growth limit guards against non-terminating recursion
over cyclic data.

This is the engine feature the whole paper hinges on: "with recursive SQL
(as defined in the SQL:1999 standard) we are able to collect all nodes of
a recursively defined object tree in one query" (Section 5.2).
"""

from __future__ import annotations

from typing import List

from repro.errors import ExecutionError
from repro.obs import maybe_span
from repro.sqldb.executor import CTEFrame, ExecutionEnv
from repro.sqldb.planner import Plan, PlannedCTE

#: Safety bound on fixpoint rounds; a δ=9 product tree needs 9.
MAX_ITERATIONS = 10_000


def _limit_error(planned: PlannedCTE, limit: int) -> ExecutionError:
    return ExecutionError(
        f"recursive CTE {planned.name!r} produced more than "
        f"{limit} rows; aborting (cyclic data with "
        f"UNION ALL?)"
    )


def materialize_cte(planned: PlannedCTE, env: ExecutionEnv) -> CTEFrame:
    """Materialise *planned* into *env* and return the final frame.

    The recursion limit is enforced *inside* the row-append loops (and
    the branches are iterated lazily), so a runaway round over cyclic
    data aborts as soon as the accumulated result crosses the limit —
    it never first materialises an unboundedly large round in memory.
    """
    if not planned.recursive:
        rows = _run_plan(planned.seed_plans[0], env)
        frame = CTEFrame(columns=list(planned.columns), rows=rows)
        env.bind_cte(planned.name, frame)
        return frame
    seminaive = getattr(env, "enable_seminaive", True)
    if not seminaive and not planned.distinct:
        raise ExecutionError(
            "naive fixpoint evaluation requires UNION (distinct) semantics"
        )
    recorder = getattr(env, "recorder", None)
    limit = env.recursion_limit
    seen = set()
    accumulated: List[tuple] = []
    delta: List[tuple] = []
    for plan in planned.seed_plans:
        for row in plan.rows(env):
            if planned.distinct:
                if row in seen:
                    continue
                seen.add(row)
            accumulated.append(row)
            if len(accumulated) > limit:
                raise _limit_error(planned, limit)
            delta.append(row)
    iterations = 0
    while delta:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise ExecutionError(
                f"recursive CTE {planned.name!r} exceeded "
                f"{MAX_ITERATIONS} iterations"
            )
        # Semi-naive: the recursive branches see only last round's new
        # rows.  Naive (the ablation baseline): they re-see everything
        # accumulated so far, redoing all previous rounds' join work.
        working = delta if seminaive else accumulated
        env.bind_cte(
            planned.name,
            CTEFrame(columns=list(planned.columns), rows=list(working)),
        )
        next_delta: List[tuple] = []
        with maybe_span(
            recorder,
            "cte.fixpoint_round",
            kind="executor",
            cte=planned.name,
            round=iterations,
            delta_in=len(working),
        ) as span:
            for plan in planned.recursive_plans:
                for row in plan.rows(env):
                    if planned.distinct:
                        if row in seen:
                            continue
                        seen.add(row)
                    accumulated.append(row)
                    if len(accumulated) > limit:
                        raise _limit_error(planned, limit)
                    next_delta.append(row)
            if span is not None:
                span.meta["delta_out"] = len(next_delta)
        delta = next_delta
    frame = CTEFrame(columns=list(planned.columns), rows=accumulated)
    env.bind_cte(planned.name, frame)
    return frame


def _run_plan(branch, env: ExecutionEnv) -> List[tuple]:
    """Execute one CTE branch (an operator tree — CTE bodies cannot carry
    their own WITH clauses in this dialect)."""
    return list(branch.rows(env))


def execute_plan(plan: Plan, env: ExecutionEnv) -> List[tuple]:
    """Materialise a full statement plan: CTEs first, then the root tree."""
    for planned in plan.ctes:
        materialize_cte(planned, env)
    return list(plan.root.rows(env))
