"""A from-scratch relational database engine with SQL:1999 recursion.

This package is the main substrate of the reproduction: the paper's PDM
system "sits on top of a relational DBMS using it (more or less) as a
simple record manager", and both tuning approaches (early rule evaluation
and recursive queries) are pure SQL techniques.  The engine therefore
implements the SQL subset the paper exercises, end to end:

* DDL: ``CREATE TABLE``, ``CREATE INDEX``, ``DROP TABLE``
* DML: ``INSERT``, ``UPDATE``, ``DELETE``
* Queries: ``SELECT`` with ``JOIN .. ON``, ``WHERE``, ``GROUP BY``,
  ``HAVING``, ``ORDER BY``, ``LIMIT``, ``UNION [ALL]``, ``EXISTS``/``IN``
  subqueries, scalar subqueries, aggregate functions, ``CAST``, and —
  centrally — ``WITH [RECURSIVE]`` common table expressions evaluated with
  the semi-naive fixpoint algorithm.
* Stored scalar functions registered from Python (the stand-in for
  SQL/PSM stored functions the paper relies on for set/interval
  comparisons, Section 3.2).

The public entry point is :class:`repro.sqldb.database.Database`.
"""

from repro.sqldb.database import Database
from repro.sqldb.result import ResultSet
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.types import (
    SQLType,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
    is_null,
)

__all__ = [
    "Database",
    "ResultSet",
    "Column",
    "TableSchema",
    "SQLType",
    "BOOLEAN",
    "DOUBLE",
    "INTEGER",
    "VARCHAR",
    "is_null",
]
