"""Reusable AST traversal helpers.

These started life as private functions inside the planner; the static
analyzer (:mod:`repro.analysis`) walks the same structures, so the shared
vocabulary lives here: conjunct splitting, set-operation flattening,
"does this query block reference table X" tests, and iterators over the
places predicates and subqueries can hide in a SELECT core.

Everything in this module is pure: no function mutates the AST it walks.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from repro.sqldb import ast_nodes as ast

#: A query body is either a single SELECT core or a set-operation tree.
Body = Union[ast.SelectCore, ast.SetOperation]

#: Expression wrappers that carry a nested SELECT statement.
SUBQUERY_NODES = (ast.ExistsTest, ast.InSubquery, ast.ScalarSubquery)


def split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Split a predicate on top-level ANDs."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.operator == "AND":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def flatten_set_operations(body: Body) -> Tuple[List[ast.SelectCore], List[str]]:
    """Flatten a set-operation tree into branch/operator lists:
    ``a UNION b UNION ALL c`` -> ([a, b, c], ["UNION", "UNION ALL"])."""
    if isinstance(body, ast.SelectCore):
        return [body], []
    left_branches, left_ops = flatten_set_operations(body.left)
    right_branches, right_ops = flatten_set_operations(body.right)
    return (
        left_branches + right_branches,
        left_ops + [body.operator] + right_ops,
    )


def iter_from_leaves(
    item: ast.FromItem,
) -> Iterator[Union[ast.TableRef, ast.SubqueryRef]]:
    """Yield the leaf relations (tables and derived tables) of a FROM item,
    descending through join trees."""
    if isinstance(item, ast.Join):
        yield from iter_from_leaves(item.left)
        yield from iter_from_leaves(item.right)
    else:
        yield item  # type: ignore[misc]


def iter_join_conditions(item: ast.FromItem) -> Iterator[ast.Expression]:
    """Yield every ON condition inside a FROM item's join tree."""
    if isinstance(item, ast.Join):
        yield from iter_join_conditions(item.left)
        yield from iter_join_conditions(item.right)
        if item.condition is not None:
            yield item.condition


def core_predicates(core: ast.SelectCore) -> List[Tuple[str, ast.Expression]]:
    """Every predicate conjunct of a SELECT core as (clause, conjunct)
    pairs; clause is ``"on"``, ``"where"`` or ``"having"``."""
    predicates: List[Tuple[str, ast.Expression]] = []
    for item in core.from_items:
        for condition in iter_join_conditions(item):
            predicates.extend(("on", c) for c in split_conjuncts(condition))
    predicates.extend(("where", c) for c in split_conjuncts(core.where))
    predicates.extend(("having", c) for c in split_conjuncts(core.having))
    return predicates


def core_expressions(core: ast.SelectCore) -> Iterator[ast.Expression]:
    """Every top-level expression of a SELECT core: select-list items,
    join conditions, WHERE, GROUP BY keys and HAVING."""
    for select_item in core.items:
        if isinstance(select_item, ast.SelectItem):
            yield select_item.expression
    for item in core.from_items:
        yield from iter_join_conditions(item)
    if core.where is not None:
        yield core.where
    for key in core.group_by:
        yield key
    if core.having is not None:
        yield core.having


def constantish(expression: ast.Expression) -> bool:
    """True when *expression* involves no columns and no subqueries — it
    evaluates to the same value for every candidate row (literals,
    parameters, arithmetic over them, function calls on constants).

    This is the analyzer's shared notion of "the other side of a
    sargable comparison"; the rule modules used to carry three identical
    private copies of it.
    """
    for node in ast.walk_expression(expression):
        if isinstance(
            node,
            (ast.ColumnRef, ast.ExistsTest, ast.InSubquery, ast.ScalarSubquery),
        ):
            return False
    return True


def iter_subqueries(
    expression: ast.Expression,
) -> Iterator[Tuple[ast.Expression, ast.SelectStatement]]:
    """Yield (wrapper node, nested statement) for every subquery wrapper
    reachable in *expression* (without descending into the subqueries)."""
    for node in ast.walk_expression(expression):
        if isinstance(node, SUBQUERY_NODES):
            yield node, node.subquery


def expression_references(expression: ast.Expression, wanted: str) -> bool:
    """True if a subquery inside *expression* references table *wanted*."""
    for __, subquery in iter_subqueries(expression):
        if statement_references(subquery, wanted):
            return True
    return False


def core_references(core: ast.SelectCore, table_name: str) -> bool:
    """True if *core* references *table_name* anywhere (FROM items, join
    trees, subqueries in any clause)."""
    wanted = table_name.lower()

    def from_item_references(item: ast.FromItem) -> bool:
        if isinstance(item, ast.TableRef):
            return item.name.lower() == wanted
        if isinstance(item, ast.SubqueryRef):
            return statement_references(item.subquery, wanted)
        if isinstance(item, ast.Join):
            if from_item_references(item.left) or from_item_references(item.right):
                return True
            if item.condition is not None and expression_references(
                item.condition, wanted
            ):
                return True
            return False
        return False

    for item in core.from_items:
        if from_item_references(item):
            return True
    for clause in (core.where, core.having):
        if clause is not None and expression_references(clause, wanted):
            return True
    for select_item in core.items:
        if isinstance(select_item, ast.SelectItem) and expression_references(
            select_item.expression, wanted
        ):
            return True
    return False


def statement_references(statement: ast.SelectStatement, wanted: str) -> bool:
    """True if any core of *statement* (CTE bodies included) references
    table *wanted*."""
    branches, __ = flatten_set_operations(statement.body)
    if statement.with_clause is not None:
        for cte in statement.with_clause.ctes:
            cte_branches, __ = flatten_set_operations(cte.body)
            if any(core_references(branch, wanted) for branch in cte_branches):
                return True
    return any(core_references(branch, wanted) for branch in branches)


def count_table_refs(core: ast.SelectCore, table_name: str) -> int:
    """How many times *core* refers to *table_name*: FROM leaves plus
    references inside nested subqueries (any clause).  The SQL:1999
    linear-recursion rule is "at most once per recursive branch", so the
    analyzer needs a count, not just a boolean."""
    wanted = table_name.lower()

    def count_from_item(item: ast.FromItem) -> int:
        if isinstance(item, ast.TableRef):
            return 1 if item.name.lower() == wanted else 0
        if isinstance(item, ast.SubqueryRef):
            return count_statement_refs(item.subquery, wanted)
        if isinstance(item, ast.Join):
            # ON conditions are covered by core_expressions below.
            return count_from_item(item.left) + count_from_item(item.right)
        return 0

    total = sum(count_from_item(item) for item in core.from_items)
    for expression in core_expressions(core):
        for __, subquery in iter_subqueries(expression):
            total += count_statement_refs(subquery, wanted)
    return total


def referenced_tables(statement: ast.SelectStatement) -> List[str]:
    """Lowercased names of every base relation *statement* references —
    FROM leaves through join trees, derived tables, subqueries in any
    clause, and CTE bodies — with CTE names themselves excluded.

    This is the lock footprint of a SELECT: the tables a table-level
    shared lock must cover (views are expanded by the database, which
    owns the view registry).
    """
    found: set = set()

    def walk_statement(stmt: ast.SelectStatement, outer_ctes: frozenset) -> None:
        ctes = set(outer_ctes)
        if stmt.with_clause is not None:
            for cte in stmt.with_clause.ctes:
                # Add before walking the body: recursive CTEs reference
                # themselves, and that self-reference is not a table.
                ctes.add(cte.name.lower())
                for branch in flatten_set_operations(cte.body)[0]:
                    walk_core(branch, frozenset(ctes))
        for branch in flatten_set_operations(stmt.body)[0]:
            walk_core(branch, frozenset(ctes))

    def walk_core(core: ast.SelectCore, ctes: frozenset) -> None:
        for item in core.from_items:
            for leaf in iter_from_leaves(item):
                if isinstance(leaf, ast.TableRef):
                    name = leaf.name.lower()
                    if name not in ctes:
                        found.add(name)
                elif isinstance(leaf, ast.SubqueryRef):
                    walk_statement(leaf.subquery, ctes)
        for expression in core_expressions(core):
            for __, subquery in iter_subqueries(expression):
                walk_statement(subquery, ctes)

    walk_statement(statement, frozenset())
    return sorted(found)


def count_statement_refs(statement: ast.SelectStatement, wanted: str) -> int:
    """Total reference count of table *wanted* across every core of
    *statement*, CTE bodies included."""
    total = 0
    if statement.with_clause is not None:
        for cte in statement.with_clause.ctes:
            for branch in flatten_set_operations(cte.body)[0]:
                total += count_table_refs(branch, wanted)
    for branch in flatten_set_operations(statement.body)[0]:
        total += count_table_refs(branch, wanted)
    return total
