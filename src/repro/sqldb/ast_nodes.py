"""Abstract syntax tree for the SQL dialect understood by the engine.

The nodes are plain frozen-ish dataclasses: the parser builds them, the
planner walks them, and nothing mutates them afterwards.  Expression nodes
and statement nodes live in the same module because they reference each
other (subqueries embed select statements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sqldb.types import SQLType


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, or NULL."""

    value: object


@dataclass
class ColumnRef(Expression):
    """A possibly qualified column reference, e.g. ``assy.obid``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass
class Parameter(Expression):
    """A positional ``?`` placeholder, bound at execution time."""

    index: int


@dataclass
class UnaryOp(Expression):
    """Unary operator: ``NOT expr``, ``-expr``, ``+expr``."""

    operator: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""

    operator: str
    left: Expression
    right: Expression


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT x)``
    and friends.  Whether the name denotes an aggregate is decided by the
    function registry at planning time.
    """

    name: str
    args: List[Expression] = field(default_factory=list)
    star: bool = False
    distinct: bool = False


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    target: SQLType


@dataclass
class IsNullTest(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``expr [NOT] IN (value, ...)``."""

    operand: Expression
    items: List[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "SelectStatement" = None
    negated: bool = False


@dataclass
class ExistsTest(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStatement" = None
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A parenthesised SELECT used as a scalar value."""

    subquery: "SelectStatement" = None


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression = None
    high: Expression = None
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression = None
    negated: bool = False


@dataclass
class CaseWhen(Expression):
    """Searched CASE expression: ``CASE WHEN c THEN v ... ELSE d END``."""

    branches: List[Tuple[Expression, Expression]] = field(default_factory=list)
    default: Optional[Expression] = None


# --------------------------------------------------------------------------
# SELECT structure
# --------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One item of a select list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


class FromItem:
    """Base class for FROM clause items."""


@dataclass
class TableRef(FromItem):
    """A named table (or CTE) reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """The name this table is known by inside the query."""
        return self.alias if self.alias else self.name


@dataclass
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) AS alias``."""

    subquery: "SelectStatement"
    alias: str = ""


@dataclass
class Join(FromItem):
    """A binary join between two FROM items.

    ``kind`` is one of ``"INNER"``, ``"LEFT"``, ``"CROSS"``.  ``condition``
    is None for CROSS joins.
    """

    left: FromItem
    right: FromItem
    kind: str = "INNER"
    condition: Optional[Expression] = None


@dataclass
class SelectCore:
    """A single SELECT block (no set operators, no ORDER BY)."""

    items: List[Union[SelectItem, Star]]
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass
class SetOperation:
    """A set operation combining two query bodies.

    ``operator`` is ``"UNION"``, ``"UNION ALL"``, ``"INTERSECT"`` or
    ``"EXCEPT"``.  Set operators associate left in this dialect.
    """

    operator: str
    left: Union[SelectCore, "SetOperation"]
    right: Union[SelectCore, "SetOperation"]


@dataclass
class OrderItem:
    """One ORDER BY key.

    ``expression`` may be a 1-based positional :class:`Literal` integer,
    per the SQL convention the paper's queries use (``ORDER BY 1, 2``).
    """

    expression: Expression
    descending: bool = False


@dataclass
class CommonTableExpr:
    """One CTE of a WITH clause: name, optional column list, and body."""

    name: str
    columns: List[str]
    body: Union[SelectCore, SetOperation]


@dataclass
class WithClause:
    """``WITH [RECURSIVE] cte [, cte ...]``."""

    recursive: bool
    ctes: List[CommonTableExpr]


@dataclass
class SelectStatement:
    """A complete query: optional WITH clause, body, ORDER BY,
    LIMIT/OFFSET."""

    body: Union[SelectCore, SetOperation]
    with_clause: Optional[WithClause] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None


# --------------------------------------------------------------------------
# DDL / DML statements
# --------------------------------------------------------------------------


@dataclass
class ColumnDef:
    """A column definition in CREATE TABLE."""

    name: str
    sql_type: SQLType
    not_null: bool = False
    primary_key: bool = False


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[str]
    unique: bool = False


@dataclass
class DropTable:
    name: str


@dataclass
class Insert:
    """``INSERT INTO t [(cols)] VALUES (...), ...`` or ``INSERT ... SELECT``."""

    table: str
    columns: Optional[List[str]]
    rows: Optional[List[List[Expression]]] = None
    select: Optional[SelectStatement] = None


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass
class CreateView:
    """``CREATE VIEW name [(columns)] AS select``.

    Views are stored as their defining statement and expanded at plan time
    — which is exactly why the paper's query modificator cannot see
    through them (Section 5.5: "if the recursive query (or a part of it)
    is hidden in a view ... the proposed modifications cannot be
    performed").
    """

    name: str
    columns: Optional[List[str]]
    select: "SelectStatement"


@dataclass
class DropView:
    name: str


@dataclass
class BeginTransaction:
    #: ``BEGIN [TRANSACTION] READ ONLY``: the transaction rejects DML and,
    #: on an MVCC database, reads a snapshot instead of taking S locks.
    read_only: bool = False


@dataclass
class CommitTransaction:
    pass


@dataclass
class RollbackTransaction:
    pass


@dataclass
class Explain:
    """``EXPLAIN [ANALYZE] <select>`` — the physical plan as text rows.

    With ``ANALYZE`` the statement is actually executed and each plan
    operator is annotated with its invocation and produced-row counts.
    """

    statement: "SelectStatement"
    analyze: bool = False


@dataclass
class Lint:
    """``LINT <select>`` — static-analysis findings as result rows.

    The wrapped statement is parsed and analyzed but never executed; the
    result set carries one row per :class:`repro.analysis.Finding`.
    """

    statement: "SelectStatement"


@dataclass
class LintTransaction:
    """``LINT TRANSACTION '<script>'`` — transaction-script findings.

    The quoted script (semicolon-separated statements, BEGIN/COMMIT
    included) is parsed and analyzed by :mod:`repro.analysis.txn` but
    never executed; the result set carries one row per finding, the
    C-rule family (lock-order inversion, retry idempotence, lock scope)
    included.
    """

    script: str


@dataclass
class Analyze:
    """``ANALYZE [table]`` — collect optimizer statistics.

    With no table name every table in the catalog is analyzed.  The
    result set reports one row per analyzed table.
    """

    table: Optional[str] = None


Statement = Union[
    SelectStatement, CreateTable, CreateIndex, DropTable, Insert, Update, Delete
]


def walk_expression(expression: Expression):
    """Yield *expression* and all its sub-expressions depth-first.

    Subqueries are yielded as their wrapper nodes but not descended into —
    the planner treats subquery boundaries explicitly.
    """
    stack = [expression]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        if isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, FunctionCall):
            stack.extend(node.args)
        elif isinstance(node, Cast):
            stack.append(node.operand)
        elif isinstance(node, IsNullTest):
            stack.append(node.operand)
        elif isinstance(node, InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, InSubquery):
            stack.append(node.operand)
        elif isinstance(node, Between):
            stack.extend((node.operand, node.low, node.high))
        elif isinstance(node, Like):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, CaseWhen):
            for condition, value in node.branches:
                stack.extend((condition, value))
            if node.default is not None:
                stack.append(node.default)
