"""MVCC snapshot reads beside strict 2PL (DESIGN §14).

The paper's workload is long read-only navigations — multi-level
expands, where-used audits — racing engineering-change writes.  Under
strict 2PL those reads block and get blocked by writers.  This module
adds the other classic answer: versioned rows with snapshot-isolation
reads, so a ``BEGIN READ ONLY`` transaction captures a :class:`Snapshot`
at start and reads a consistent committed state without acquiring a
single lock, while writes keep taking X locks through the existing
:class:`~repro.concurrency.locks.LockManager`.

Version format
    Each heap slot may own a :class:`VersionChain` of committed
    :class:`RowVersion` entries stamped ``[begin, end)`` with values of
    a monotonic commit counter (the :class:`MvccManager` clock).  The
    heap row itself is the *newest* state — possibly dirty while a write
    transaction is open.  A slot with **no chain** is trivially visible
    (the heap row, when present, is committed and unchanged since before
    every open snapshot); the first write to a slot captures the
    committed pre-image into a chain, so snapshot readers keep seeing it
    while the writer mutates the heap in place.

Visibility rule
    Version ``v`` is visible to snapshot ``s`` iff
    ``v.begin <= s.stamp < v.end`` (``end is None`` = still current).
    Chains hold only *committed* versions — dirty heap values never
    enter a chain until the writer's commit installs them — so a
    snapshot can never observe a torn or uncommitted row.

Garbage collection
    The low-water mark is the minimum stamp over open snapshots (the
    current clock when none are open).  Versions dead to the low-water
    mark are pruned; a chain that degenerates to a single live version
    equal to the heap row (and visible to every open snapshot) is
    dropped entirely, restoring the cheap chainless fast path.  With no
    open snapshots the steady-state chain count is zero.

Everything is deterministic: stamps come from the commit counter, GC is
a pure function of the chain/snapshot state, and iteration orders are
sorted — same seed, byte-identical reports.
"""

from __future__ import annotations

from typing import Dict, List, MutableMapping, Optional, Tuple

Row = Tuple[object, ...]

#: Begin stamp of a pre-image version: the row was committed before any
#: snapshot that can still be open, so it is visible "since forever".
PRE_IMAGE_STAMP = 0


class Snapshot:
    """A point-in-time visibility token captured at transaction start."""

    __slots__ = ("stamp", "sid")

    def __init__(self, stamp: int, sid: int) -> None:
        #: Commit-clock value at capture: the snapshot sees exactly the
        #: transactions with commit stamp <= ``stamp``.
        self.stamp = stamp
        #: Registry id inside the owning :class:`MvccManager`.
        self.sid = sid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(stamp={self.stamp}, sid={self.sid})"


class RowVersion:
    """One committed version of a row: value plus ``[begin, end)`` stamps."""

    __slots__ = ("begin", "end", "row")

    def __init__(self, begin: int, end: Optional[int], row: Row) -> None:
        self.begin = begin
        self.end = end
        self.row = row

    def visible_to(self, stamp: int) -> bool:
        return self.begin <= stamp and (self.end is None or stamp < self.end)

    def as_tuple(self) -> Tuple[int, Optional[int], Row]:
        return (self.begin, self.end, self.row)


class VersionChain:
    """The committed version history of one heap slot.

    ``pending`` counts uncommitted heap writes to the slot (strict 2PL
    guarantees at most one transaction holds them at a time); a pending
    chain is pinned against GC because its bookkeeping is still in
    flight.  An *empty* chain with ``pending`` writes is the insert
    marker: the uncommitted heap row exists but no snapshot may see it.
    """

    __slots__ = ("versions", "pending")

    def __init__(self) -> None:
        self.versions: List[RowVersion] = []
        self.pending = 0

    def visible(self, stamp: int) -> Optional[RowVersion]:
        for version in reversed(self.versions):
            if version.visible_to(stamp):
                return version
        return None

    def live_tail(self) -> Optional[RowVersion]:
        if self.versions and self.versions[-1].end is None:
            return self.versions[-1]
        return None


class VersionStore:
    """Version chains of one table, keyed by heap row id (slot)."""

    __slots__ = ("chains",)

    def __init__(self) -> None:
        self.chains: Dict[int, VersionChain] = {}

    # -- write side --------------------------------------------------------

    def record_write(self, row_id: int, old_row: Optional[Row]) -> None:
        """Note an (uncommitted) heap write to *row_id*.

        On the slot's first write the committed pre-image (*old_row*;
        None for an insert) is captured into a fresh chain, so snapshot
        readers keep resolving the slot while the heap value is dirty.
        Later writes by the same transaction find the chain in place —
        the dirty intermediate values must never become versions.
        """
        chain = self.chains.get(row_id)
        if chain is None:
            chain = self.chains[row_id] = VersionChain()
            if old_row is not None:
                chain.versions.append(
                    RowVersion(PRE_IMAGE_STAMP, None, old_row)
                )
        chain.pending += 1

    def install(
        self, row_ids: List[int], heap: List[Optional[Row]], stamp: int
    ) -> int:
        """Commit the writes to *row_ids* as versions stamped *stamp*.

        The heap already holds the committed state (writes are in-place);
        installing terminates each superseded live version at *stamp* and
        appends the new state — or only terminates, for a delete.
        Returns the number of versions created.
        """
        created = 0
        for row_id in sorted(set(row_ids)):
            chain = self.chains.get(row_id)
            if chain is None:  # pragma: no cover - writes always chain
                continue
            chain.pending = 0
            live = heap[row_id] if row_id < len(heap) else None
            tail = chain.live_tail()
            if live is None:
                if tail is not None:
                    tail.end = stamp
                continue
            if tail is not None:
                if tail.row == live:
                    continue  # no net change (e.g. update back to old value)
                tail.end = stamp
            chain.versions.append(RowVersion(stamp, None, live))
            created += 1
        return created

    def abort(self, row_ids: List[int], heap: List[Optional[Row]]) -> None:
        """Forget the pending writes to *row_ids* (rollback already
        restored the heap).  An aborted insert's empty marker chain is
        dropped so the dead slot stays invisible-and-chainless."""
        for row_id in sorted(set(row_ids)):
            chain = self.chains.get(row_id)
            if chain is None:
                continue
            chain.pending = 0
            live = heap[row_id] if row_id < len(heap) else None
            if not chain.versions and live is None:
                del self.chains[row_id]

    def gc(self, low_water: int, heap: List[Optional[Row]]) -> int:
        """Prune versions invisible to every open (and future) snapshot.

        Returns the number of versions dropped.  Chains with pending
        writes are pinned; a chain reduced to one live version equal to
        the heap row with ``begin <= low_water`` is redundant (the
        chainless fast path gives the same answer to every snapshot that
        can still exist) and is removed whole.
        """
        dropped = 0
        for row_id in sorted(self.chains):
            chain = self.chains[row_id]
            if chain.pending:
                continue
            kept = [
                version
                for version in chain.versions
                if version.end is None or version.end > low_water
            ]
            dropped += len(chain.versions) - len(kept)
            chain.versions = kept
            live = heap[row_id] if row_id < len(heap) else None
            if not kept:
                if live is None:
                    del self.chains[row_id]
                continue
            if (
                len(kept) == 1
                and kept[0].end is None
                and kept[0].begin <= low_water
                and kept[0].row == live
            ):
                dropped += 1
                del self.chains[row_id]
        return dropped

    # -- read side ---------------------------------------------------------

    def visible_row(
        self, row_id: int, live: Optional[Row], stamp: int
    ) -> Optional[Row]:
        """The row *snapshot stamp* sees in this slot (None = invisible)."""
        chain = self.chains.get(row_id)
        if chain is None:
            return live
        version = chain.visible(stamp)
        return None if version is None else version.row

    def dump(self) -> Dict[int, List[Tuple[int, Optional[int], Row]]]:
        """Deterministic chain dump for tests and recovery audits."""
        return {
            row_id: [version.as_tuple() for version in chain.versions]
            for row_id, chain in sorted(self.chains.items())
        }


class MvccManager:
    """Commit clock, snapshot registry, and GC across a database's tables."""

    def __init__(
        self, statistics: Optional[MutableMapping[str, int]] = None
    ) -> None:
        #: Stamp of the most recent committed write transaction.
        self.clock = 0
        self._snapshot_seq = 0
        #: Open snapshots: sid -> stamp (the GC low-water mark inputs).
        self._open: Dict[int, int] = {}
        #: Registered tables: sorted-stable list of (name, storage, store).
        self._tables: List[Tuple[str, object, VersionStore]] = []
        #: Shared counter sink (the owning Database's ``statistics``).
        self.statistics = statistics if statistics is not None else {}

    # -- registration ------------------------------------------------------

    def register(self, storage: object) -> VersionStore:
        """Attach a :class:`VersionStore` to *storage* and track it."""
        store = VersionStore()
        name = storage.schema.name  # type: ignore[attr-defined]
        storage.mvcc = store  # type: ignore[attr-defined]
        self._tables.append((name, storage, store))
        return store

    def forget(self, name: str) -> None:
        """Drop the store of a dropped table."""
        self._tables = [entry for entry in self._tables if entry[0] != name]

    # -- snapshots ---------------------------------------------------------

    def open_snapshot(self) -> Snapshot:
        self._snapshot_seq += 1
        snapshot = Snapshot(stamp=self.clock, sid=self._snapshot_seq)
        self._open[snapshot.sid] = snapshot.stamp
        return snapshot

    def close_snapshot(self, snapshot: Snapshot) -> None:
        self._open.pop(snapshot.sid, None)
        self.collect()

    def low_water(self) -> int:
        if not self._open:
            return self.clock
        return min(self._open.values())

    @property
    def open_snapshots(self) -> int:
        return len(self._open)

    # -- commit / abort ----------------------------------------------------

    def commit(self, writes: List[Tuple[object, int]]) -> Optional[int]:
        """Install *writes* (``(storage, row_id)`` pairs) as one commit.

        Bumps the clock once per commit that actually wrote (read-only
        and empty commits leave it untouched — that keeps the clock a
        pure function of the committed write history, which is what lets
        recovery replay rebuild it exactly).  Returns the stamp used, or
        None when there was nothing to install.
        """
        if not writes:
            return None
        self.clock += 1
        stamp = self.clock
        by_store: Dict[int, Tuple[object, List[int]]] = {}
        for storage, row_id in writes:
            entry = by_store.setdefault(id(storage), (storage, []))
            entry[1].append(row_id)
        created = 0
        for storage, row_ids in by_store.values():
            store: VersionStore = storage.mvcc  # type: ignore[attr-defined]
            created += store.install(
                row_ids, storage._rows, stamp  # type: ignore[attr-defined]
            )
        self._bump("versions_created", created)
        self.collect()
        return stamp

    def abort(self, writes: List[Tuple[object, int]]) -> None:
        if not writes:
            return
        by_store: Dict[int, Tuple[object, List[int]]] = {}
        for storage, row_id in writes:
            entry = by_store.setdefault(id(storage), (storage, []))
            entry[1].append(row_id)
        for storage, row_ids in by_store.values():
            store: VersionStore = storage.mvcc  # type: ignore[attr-defined]
            store.abort(row_ids, storage._rows)  # type: ignore[attr-defined]
        self.collect()

    def collect(self) -> int:
        """Run GC over every table; returns versions dropped."""
        low_water = self.low_water()
        dropped = 0
        for __, storage, store in self._tables:
            if store.chains:
                dropped += store.gc(
                    low_water, storage._rows  # type: ignore[attr-defined]
                )
        self._bump("versions_gc", dropped)
        return dropped

    def _bump(self, key: str, amount: int) -> None:
        if amount:
            self.statistics[key] = self.statistics.get(key, 0) + amount

    # -- introspection -----------------------------------------------------

    def chain_count(self) -> int:
        return sum(len(store.chains) for __, __s, store in self._tables)

    def dump(self) -> Dict[str, object]:
        """Deterministic full state: clock plus per-table chain dumps.

        The recovery test's yardstick: recovering the same log twice (or
        checkpoint-restoring and replaying) must reproduce this dump
        byte-for-byte.
        """
        tables: Dict[str, Dict[int, List[Tuple[int, Optional[int], Row]]]] = {}
        for name, __, store in sorted(self._tables, key=lambda e: e[0]):
            if store.chains:
                tables[name] = store.dump()
        return {"clock": self.clock, "tables": tables}
