"""Binary wire encoding of requests and result sets.

The experiments measure *bytes on the wire*, so the client/server stack
serialises queries and results with this small, deterministic format
instead of guessing sizes.  The format is deliberately close to what a
real DBMS wire protocol produces for the paper's schema: small per-value
type tags, length-prefixed strings, 8-byte integers.

Layout (big-endian):

* request  = opcode(1) u32-len + sql-utf8, u16 param count, params as values
* response = u16 column count, columns as strings, u32 row count, rows as
  values; or an error frame (opcode carried by the transport envelope)
* value    = tag(1) + payload:  N=null, I=int64, D=float64, B=bool(1),
  S=u32-len + utf8

The functions raise :class:`ProtocolError` on malformed frames — the tests
inject corruption to verify that.
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sqldb.result import ResultSet

_TAG_NULL = b"N"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_BOOL = b"B"
_TAG_STR = b"S"

#: The wire integer type is a signed 64-bit big-endian word; Python ints
#: outside this range must fail as a protocol error (an ERROR envelope),
#: never as a bare ``struct.error`` that would kill the server.
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def encode_value(value: Any) -> bytes:
    """Encode one SQL value."""
    if value is None:
        return _TAG_NULL
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        if not INT64_MIN <= value <= INT64_MAX:
            raise ProtocolError(
                f"integer {value} is outside the int64 wire range"
            )
        return _TAG_INT + struct.pack(">q", value)
    if isinstance(value, float):
        return _TAG_FLOAT + struct.pack(">d", value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _TAG_STR + struct.pack(">I", len(payload)) + payload
    raise ProtocolError(f"cannot encode value of type {type(value).__name__}")


def decode_value(buffer: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one value at *offset*; return (value, next offset)."""
    if offset >= len(buffer):
        raise ProtocolError("truncated value frame")
    tag = buffer[offset : offset + 1]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_BOOL:
        _check(buffer, offset, 1)
        return buffer[offset] != 0, offset + 1
    if tag == _TAG_INT:
        _check(buffer, offset, 8)
        return struct.unpack_from(">q", buffer, offset)[0], offset + 8
    if tag == _TAG_FLOAT:
        _check(buffer, offset, 8)
        return struct.unpack_from(">d", buffer, offset)[0], offset + 8
    if tag == _TAG_STR:
        _check(buffer, offset, 4)
        length = struct.unpack_from(">I", buffer, offset)[0]
        offset += 4
        _check(buffer, offset, length)
        text = _decode_utf8(buffer[offset : offset + length])
        return text, offset + length
    raise ProtocolError(f"unknown value tag {tag!r}")


def _check(buffer: bytes, offset: int, needed: int) -> None:
    if offset + needed > len(buffer):
        raise ProtocolError("truncated value frame")


def _decode_utf8(payload: bytes) -> str:
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid UTF-8 in frame: {exc}") from None


def _encode_str(text: str) -> bytes:
    payload = text.encode("utf-8")
    return struct.pack(">I", len(payload)) + payload


def _decode_str(buffer: bytes, offset: int) -> Tuple[str, int]:
    _check(buffer, offset, 4)
    length = struct.unpack_from(">I", buffer, offset)[0]
    offset += 4
    _check(buffer, offset, length)
    return _decode_utf8(buffer[offset : offset + length]), offset + length


def encode_query(sql: str, params: Sequence[Any] = ()) -> bytes:
    """Encode an execute-query request body."""
    if len(params) > 0xFFFF:
        raise ProtocolError("too many parameters")
    parts = [_encode_str(sql), struct.pack(">H", len(params))]
    parts.extend(encode_value(value) for value in params)
    return b"".join(parts)


def decode_query(buffer: bytes) -> Tuple[str, List[Any]]:
    """Decode an execute-query request body."""
    sql, offset = _decode_str(buffer, 0)
    _check(buffer, offset, 2)
    count = struct.unpack_from(">H", buffer, offset)[0]
    offset += 2
    params: List[Any] = []
    for __ in range(count):
        value, offset = decode_value(buffer, offset)
        params.append(value)
    if offset != len(buffer):
        raise ProtocolError("trailing bytes after query frame")
    return sql, params


def encode_result(result: ResultSet) -> bytes:
    """Encode a result set (columns + rows + rowcount)."""
    if len(result.columns) > 0xFFFF:
        raise ProtocolError("too many columns")
    parts = [struct.pack(">H", len(result.columns))]
    parts.extend(_encode_str(name) for name in result.columns)
    parts.append(struct.pack(">I", len(result.rows)))
    for row in result.rows:
        parts.extend(encode_value(value) for value in row)
    parts.append(struct.pack(">I", result.rowcount))
    return b"".join(parts)


def decode_result(buffer: bytes) -> ResultSet:
    """Decode a result set frame."""
    _check(buffer, 0, 2)
    column_count = struct.unpack_from(">H", buffer, 0)[0]
    offset = 2
    columns: List[str] = []
    for __ in range(column_count):
        name, offset = _decode_str(buffer, offset)
        columns.append(name)
    _check(buffer, offset, 4)
    row_count = struct.unpack_from(">I", buffer, offset)[0]
    offset += 4
    rows: List[Tuple[Any, ...]] = []
    for __ in range(row_count):
        values = []
        for __col in range(column_count):
            value, offset = decode_value(buffer, offset)
            values.append(value)
        rows.append(tuple(values))
    _check(buffer, offset, 4)
    rowcount = struct.unpack_from(">I", buffer, offset)[0]
    offset += 4
    if offset != len(buffer):
        raise ProtocolError("trailing bytes after result frame")
    return ResultSet(columns, rows, rowcount=rowcount)
