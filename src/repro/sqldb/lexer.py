"""Hand-written SQL tokeniser.

The lexer converts SQL text into a list of :class:`~repro.sqldb.tokens.Token`
objects.  It supports:

* identifiers (including ``"quoted identifiers"`` preserving case),
* string literals with ``''`` escaping,
* integer and decimal number literals,
* line comments (``-- ...``) and block comments (``/* ... */``),
* the operators and punctuation listed in :mod:`repro.sqldb.tokens`,
* ``?`` parameter placeholders.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError
from repro.sqldb.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind


def tokenize(sql: str) -> List[Token]:
    """Tokenise *sql* and return the token list terminated by an EOF token.

    Raises :class:`LexerError` on unterminated strings/comments or
    unexpected characters.
    """
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise LexerError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            literal, i = _read_string(sql, i)
            tokens.append(Token(TokenKind.STRING, literal, i))
            continue
        if ch == '"':
            ident, i = _read_quoted_identifier(sql, i)
            tokens.append(Token(TokenKind.IDENT, ident, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenKind.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            word, i = _read_word(sql, i)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            continue
        if ch == "?":
            tokens.append(Token(TokenKind.PARAM, "?", i))
            i += 1
            continue
        operator = _match_operator(sql, i)
        if operator is not None:
            tokens.append(Token(TokenKind.OPERATOR, operator, i))
            i += len(operator)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, None, n))
    return tokens


def _read_string(sql: str, start: int) -> tuple:
    """Read a ``'...'`` literal starting at *start*; return (text, next_i)."""
    i = start + 1
    parts: List[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if sql.startswith("''", i):
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _read_quoted_identifier(sql: str, start: int) -> tuple:
    """Read a ``"..."`` identifier starting at *start*; return (name, next_i)."""
    i = start + 1
    parts: List[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == '"':
            if sql.startswith('""', i):
                parts.append('"')
                i += 2
                continue
            if not parts:
                raise LexerError("empty quoted identifier", start)
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated quoted identifier", start)


def _read_number(sql: str, start: int):
    """Read a numeric literal; return (int-or-float, next_i)."""
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # Only treat as exponent if followed by digits or a signed digit.
            j = i + 1
            if j < n and sql[j] in "+-":
                j += 1
            if j < n and sql[j].isdigit():
                seen_exp = True
                i = j + 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return float(text), i
    return int(text), i


def _read_word(sql: str, start: int):
    """Read an identifier/keyword word; return (text, next_i)."""
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    return sql[start:i], i


def _match_operator(sql: str, i: int):
    """Return the longest operator starting at *i*, or None."""
    for operator in OPERATORS:
        if sql.startswith(operator, i):
            return operator
    return None
