"""Recursive-descent parser for the engine's SQL dialect.

Grammar summary (informal)::

    statement   := select_stmt | create_table | create_index | drop_table
                 | insert | update | delete
    select_stmt := [WITH [RECURSIVE] cte ("," cte)*] query_body
                   [ORDER BY order_item ("," order_item)*] [LIMIT expr]
    query_body  := select_core ((UNION [ALL] | INTERSECT | EXCEPT) select_core)*
    select_core := SELECT [DISTINCT] select_list [FROM from_list]
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]

Expression precedence, loosest first: OR, AND, NOT, comparison/predicates
(=, <>, <, <=, >, >=, IS NULL, IN, BETWEEN, LIKE, EXISTS), additive
(+ - ||), multiplicative (* / %), unary sign, primary.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import ParseError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.lexer import tokenize
from repro.sqldb.tokens import Token, TokenKind
from repro.sqldb.types import type_from_name

_AGGREGATE_KEYWORDS = ("AVG", "COUNT", "MAX", "MIN", "SUM")

_COMPARISON_OPERATORS = ("=", "<>", "!=", "<", "<=", ">", ">=")


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement and return its AST.

    A trailing semicolon is permitted.  Raises :class:`ParseError` if the
    input is empty, malformed, or contains trailing garbage.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements: List[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.parse_statement())
        if not parser.accept_punct(";"):
            break
    parser.expect_eof()
    return statements


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone SQL expression (used by the rule translator
    round-trip tests and the query modificator)."""
    parser = _Parser(tokenize(sql))
    expression = parser.parse_expr()
    parser.expect_eof()
    return expression


class _Parser:
    """Token-stream cursor with the actual grammar productions."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise ParseError(f"unexpected input after statement: {self.peek()}")

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().matches_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            expected = " or ".join(names)
            raise ParseError(f"expected {expected}, found {self.peek()}")
        return token

    def accept_operator(self, *ops: str) -> Optional[Token]:
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.value in ops:
            return self.advance()
        return None

    def accept_punct(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_punct(self, symbol: str) -> None:
        if not self.accept_punct(symbol):
            raise ParseError(f"expected {symbol!r}, found {self.peek()}")

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return token.value
        # Non-reserved use of soft keywords (e.g. a column named "left"
        # appears throughout the paper's schema) — allow any keyword that
        # cannot start a clause to act as an identifier.
        if token.kind is TokenKind.KEYWORD and token.value in _SOFT_KEYWORDS:
            self.advance()
            return token.value.lower()
        raise ParseError(f"expected {what}, found {token}")

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches_keyword("SELECT", "WITH"):
            return self.parse_select_statement()
        if token.matches_keyword("CREATE"):
            return self._parse_create()
        if token.matches_keyword("DROP"):
            return self._parse_drop()
        if token.matches_keyword("INSERT"):
            return self._parse_insert()
        if token.matches_keyword("UPDATE"):
            return self._parse_update()
        if token.matches_keyword("DELETE"):
            return self._parse_delete()
        if token.matches_keyword("BEGIN"):
            self.advance()
            self.accept_keyword("TRANSACTION")
            # READ ONLY is a soft-keyword pair (like ANALYZE/LINT): it only
            # has meaning here, so columns named "read" keep working.
            nxt = self.peek()
            if nxt.kind is TokenKind.IDENT and nxt.value.upper() == "READ":
                self.advance()
                only = self.peek()
                if not (
                    only.kind is TokenKind.IDENT and only.value.upper() == "ONLY"
                ):
                    raise ParseError(f"expected ONLY after READ, found {only}")
                self.advance()
                return ast.BeginTransaction(read_only=True)
            return ast.BeginTransaction()
        if token.matches_keyword("COMMIT"):
            self.advance()
            self.accept_keyword("TRANSACTION")
            return ast.CommitTransaction()
        if token.matches_keyword("ROLLBACK"):
            self.advance()
            self.accept_keyword("TRANSACTION")
            return ast.RollbackTransaction()
        if token.matches_keyword("EXPLAIN"):
            self.advance()
            # ANALYZE is deliberately not a reserved word; it only has
            # meaning directly after EXPLAIN.
            nxt = self.peek()
            analyze = (
                nxt.kind is TokenKind.IDENT and nxt.value.upper() == "ANALYZE"
            )
            if analyze:
                self.advance()
            return ast.Explain(
                statement=self.parse_select_statement(), analyze=analyze
            )
        # LINT is a soft keyword, like ANALYZE: it only has meaning at the
        # start of a statement, so a column or table named "lint" keeps
        # working everywhere else.
        if token.kind is TokenKind.IDENT and token.value.upper() == "LINT":
            nxt = self.peek(1)
            if nxt.matches_keyword("SELECT", "WITH"):
                self.advance()
                return ast.Lint(statement=self.parse_select_statement())
            # LINT TRANSACTION '<script>': the script travels as a string
            # literal so the statement stays a single parseable unit.
            if nxt.matches_keyword("TRANSACTION"):
                self.advance()
                self.advance()
                script = self.peek()
                if script.kind is not TokenKind.STRING:
                    raise ParseError(
                        f"expected a quoted transaction script after "
                        f"LINT TRANSACTION, found {script}"
                    )
                self.advance()
                return ast.LintTransaction(script=script.value)
        # ANALYZE is likewise soft: only meaningful as the whole statement
        # (optionally followed by one table name).
        if token.kind is TokenKind.IDENT and token.value.upper() == "ANALYZE":
            self.advance()
            table: Optional[str] = None
            if not self.at_eof():
                table = self.expect_identifier("table name")
            return ast.Analyze(table=table)
        raise ParseError(f"expected a statement, found {token}")

    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._parse_create_table()
        if self.accept_keyword("VIEW"):
            name = self.expect_identifier("view name")
            columns = None
            if self.accept_punct("("):
                columns = [self.expect_identifier("column name")]
                while self.accept_punct(","):
                    columns.append(self.expect_identifier("column name"))
                self.expect_punct(")")
            self.expect_keyword("AS")
            select = self.parse_select_statement()
            return ast.CreateView(name=name, columns=columns, select=select)
        unique = bool(self.accept_keyword("UNIQUE"))
        self.expect_keyword("INDEX")
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns = [self.expect_identifier("column name")]
        while self.accept_punct(","):
            columns.append(self.expect_identifier("column name"))
        self.expect_punct(")")
        return ast.CreateIndex(name=name, table=table, columns=columns, unique=unique)

    def _parse_create_table(self) -> ast.CreateTable:
        name = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: List[ast.ColumnDef] = []
        while True:
            columns.append(self._parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(name=name, columns=columns)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier("column name")
        type_name = self.expect_identifier("type name")
        length = None
        if self.accept_punct("("):
            token = self.peek()
            if token.kind is not TokenKind.NUMBER:
                raise ParseError(f"expected a length, found {token}")
            length = int(self.advance().value)
            self.expect_punct(")")
        sql_type = type_from_name(type_name, length)
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                not_null = True
            else:
                break
        return ast.ColumnDef(
            name=name, sql_type=sql_type, not_null=not_null, primary_key=primary_key
        )

    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("VIEW"):
            return ast.DropView(name=self.expect_identifier("view name"))
        self.expect_keyword("TABLE")
        return ast.DropTable(name=self.expect_identifier("table name"))

    def _parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: Optional[List[str]] = None
        if self.accept_punct("("):
            columns = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        if self.accept_keyword("VALUES"):
            rows: List[List[ast.Expression]] = []
            while True:
                self.expect_punct("(")
                row = [self.parse_expr()]
                while self.accept_punct(","):
                    row.append(self.parse_expr())
                self.expect_punct(")")
                rows.append(row)
                if not self.accept_punct(","):
                    break
            return ast.Insert(table=table, columns=columns, rows=rows)
        select = self.parse_select_statement()
        return ast.Insert(table=table, columns=columns, select=select)

    def _parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self):
        column = self.expect_identifier("column name")
        if not self.accept_operator("="):
            raise ParseError(f"expected '=' in assignment, found {self.peek()}")
        return (column, self.parse_expr())

    def _parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.Delete(table=table, where=where)

    # -- SELECT -----------------------------------------------------------

    def parse_select_statement(self) -> ast.SelectStatement:
        with_clause = None
        if self.accept_keyword("WITH"):
            recursive = bool(self.accept_keyword("RECURSIVE"))
            ctes = [self._parse_cte()]
            while self.accept_punct(","):
                ctes.append(self._parse_cte())
            with_clause = ast.WithClause(recursive=recursive, ctes=ctes)
        body = self._parse_query_body()
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expr()
        if self.accept_keyword("OFFSET"):
            offset = self.parse_expr()
        return ast.SelectStatement(
            body=body,
            with_clause=with_clause,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_cte(self) -> ast.CommonTableExpr:
        name = self.expect_identifier("CTE name")
        columns: List[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_identifier("column name"))
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        self.expect_keyword("AS")
        self.expect_punct("(")
        body = self._parse_query_body()
        self.expect_punct(")")
        return ast.CommonTableExpr(name=name, columns=columns, body=body)

    def _parse_query_body(self) -> Union[ast.SelectCore, ast.SetOperation]:
        left: Union[ast.SelectCore, ast.SetOperation] = self._parse_select_core()
        while True:
            if self.accept_keyword("UNION"):
                operator = "UNION ALL" if self.accept_keyword("ALL") else "UNION"
            elif self.accept_keyword("INTERSECT"):
                operator = "INTERSECT"
            elif self.accept_keyword("EXCEPT"):
                operator = "EXCEPT"
            else:
                return left
            right = self._parse_select_core()
            left = ast.SetOperation(operator=operator, left=left, right=right)

    def _parse_select_core(self) -> Union[ast.SelectCore, ast.SetOperation]:
        if self.accept_punct("("):
            # Parenthesised query body used as a set-operation operand.  A
            # parenthesised set operation keeps its grouping in the AST
            # (``a UNION (b EXCEPT c)`` stays right-nested), which is what
            # the renderer emits for non-left-associated trees.
            inner = self._parse_query_body()
            self.expect_punct(")")
            return inner
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        from_items: List[ast.FromItem] = []
        if self.accept_keyword("FROM"):
            from_items.append(self._parse_from_item())
            while self.accept_punct(","):
                from_items.append(self._parse_from_item())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: List[ast.Expression] = []
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        return ast.SelectCore(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self):
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.value == "*":
            self.advance()
            return ast.Star()
        # alias.* form
        if (
            token.kind is TokenKind.IDENT
            and self.peek(1).kind is TokenKind.PUNCT
            and self.peek(1).value == "."
            and self.peek(2).kind is TokenKind.OPERATOR
            and self.peek(2).value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return ast.Star(qualifier=token.value)
        expression = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_from_primary()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self._parse_from_primary()
                item = ast.Join(left=item, right=right, kind="CROSS")
                continue
            kind = None
            if self.peek().matches_keyword("JOIN"):
                self.advance()
                kind = "INNER"
            elif self.peek().matches_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.peek().matches_keyword("LEFT") and self.peek(1).matches_keyword(
                "JOIN", "OUTER"
            ):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            if kind is None:
                return item
            right = self._parse_from_primary()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            item = ast.Join(left=item, right=right, kind=kind, condition=condition)

    def _parse_from_primary(self) -> ast.FromItem:
        if self.accept_punct("("):
            if self.peek().matches_keyword("SELECT", "WITH"):
                subquery = self.parse_select_statement()
                self.expect_punct(")")
                self.accept_keyword("AS")
                alias = self.expect_identifier("derived table alias")
                return ast.SubqueryRef(subquery=subquery, alias=alias)
            inner = self._parse_from_item()
            self.expect_punct(")")
            return inner
        name = self.expect_identifier("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expression=expression, descending=descending)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp(operator="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(operator="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self.peek().matches_keyword("NOT") and not self.peek(1).matches_keyword(
            "EXISTS"
        ):
            self.advance()
            return ast.UnaryOp(operator="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self.peek().matches_keyword("EXISTS") or (
            self.peek().matches_keyword("NOT")
            and self.peek(1).matches_keyword("EXISTS")
        ):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("EXISTS")
            self.expect_punct("(")
            subquery = self.parse_select_statement()
            self.expect_punct(")")
            return ast.ExistsTest(subquery=subquery, negated=negated)
        left = self._parse_additive()
        token = self.accept_operator(*_COMPARISON_OPERATORS)
        if token is not None:
            operator = "<>" if token.value == "!=" else token.value
            right = self._parse_additive()
            return ast.BinaryOp(operator=operator, left=left, right=right)
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNullTest(operand=left, negated=negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if self.accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        if negated:
            raise ParseError(
                f"expected IN, BETWEEN or LIKE after NOT, found {self.peek()}"
            )
        return left

    def _parse_in_tail(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self.expect_punct("(")
        if self.peek().matches_keyword("SELECT", "WITH"):
            subquery = self.parse_select_statement()
            self.expect_punct(")")
            return ast.InSubquery(operand=operand, subquery=subquery, negated=negated)
        items = [self.parse_expr()]
        while self.accept_punct(","):
            items.append(self.parse_expr())
        self.expect_punct(")")
        return ast.InList(operand=operand, items=items, negated=negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.accept_operator("+", "-", "||")
            if token is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator=token.value, left=left, right=right)

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if token is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(operator=token.value, left=left, right=right)

    def _parse_unary(self) -> ast.Expression:
        token = self.accept_operator("-", "+")
        if token is not None:
            return ast.UnaryOp(operator=token.value, operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Literal(value=token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(value=token.value)
        if token.kind is TokenKind.PARAM:
            self.advance()
            index = self._param_count
            self._param_count += 1
            return ast.Parameter(index=index)
        if token.matches_keyword("NULL"):
            self.advance()
            return ast.Literal(value=None)
        if token.matches_keyword("TRUE"):
            self.advance()
            return ast.Literal(value=True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return ast.Literal(value=False)
        if token.matches_keyword("CAST"):
            return self._parse_cast()
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if token.matches_keyword(*_AGGREGATE_KEYWORDS):
            self.advance()
            return self._parse_call(str(token.value))
        if self.accept_punct("("):
            if self.peek().matches_keyword("SELECT", "WITH"):
                subquery = self.parse_select_statement()
                self.expect_punct(")")
                return ast.ScalarSubquery(subquery=subquery)
            expression = self.parse_expr()
            self.expect_punct(")")
            return expression
        if token.kind is TokenKind.IDENT or (
            token.kind is TokenKind.KEYWORD and token.value in _SOFT_KEYWORDS
        ):
            name = self.expect_identifier()
            if self.peek().kind is TokenKind.PUNCT and self.peek().value == "(":
                return self._parse_call(name)
            if self.accept_punct("."):
                column = self.expect_identifier("column name")
                return ast.ColumnRef(name=column, qualifier=name)
            return ast.ColumnRef(name=name)
        raise ParseError(f"expected an expression, found {token}")

    def _parse_cast(self) -> ast.Cast:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        operand = self.parse_expr()
        self.expect_keyword("AS")
        type_name = self.expect_identifier("type name")
        length = None
        if self.accept_punct("("):
            number = self.peek()
            if number.kind is not TokenKind.NUMBER:
                raise ParseError(f"expected a length, found {number}")
            length = int(self.advance().value)
            self.expect_punct(")")
        self.expect_punct(")")
        return ast.Cast(operand=operand, target=type_from_name(type_name, length))

    def _parse_case(self) -> ast.CaseWhen:
        self.expect_keyword("CASE")
        branches = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseWhen(branches=branches, default=default)

    def _parse_call(self, name: str) -> ast.FunctionCall:
        self.expect_punct("(")
        if self.accept_operator("*"):
            self.expect_punct(")")
            return ast.FunctionCall(name=name, star=True)
        distinct = bool(self.accept_keyword("DISTINCT"))
        args: List[ast.Expression] = []
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().value == ")"):
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        # Aggregate names arrive as (already uppercased) keywords; plain
        # function identifiers keep their case — the registry matching is
        # case-insensitive and rendering stays a fixpoint.
        return ast.FunctionCall(name=name, args=args, distinct=distinct)


#: Keywords that may double as identifiers (column/table names).  The
#: paper's schema uses ``left`` and ``right`` as column names, so the set
#: is not academic.
_SOFT_KEYWORDS = frozenset(
    {
        "LEFT",
        "KEY",
        "INDEX",
        "AVG",
        "COUNT",
        "MAX",
        "MIN",
        "SUM",
        "SET",
        "ALL",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
        "TABLE",
        "VALUES",
        "END",
    }
)
