"""Token definitions for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    PARAM = auto()  # a ? placeholder
    EOF = auto()


#: Reserved words recognised as keywords (uppercased by the lexer).
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "ASC",
        "AVG",
        "BEGIN",
        "BETWEEN",
        "BY",
        "COMMIT",
        "CASE",
        "CAST",
        "COUNT",
        "CREATE",
        "CROSS",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DROP",
        "ELSE",
        "EXPLAIN",
        "END",
        "EXCEPT",
        "EXISTS",
        "FALSE",
        "FROM",
        "GROUP",
        "HAVING",
        "IN",
        "INDEX",
        "INNER",
        "INSERT",
        "INTERSECT",
        "INTO",
        "IS",
        "JOIN",
        "KEY",
        "LEFT",
        "LIKE",
        "LIMIT",
        "MAX",
        "MIN",
        "NOT",
        "NULL",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "PRIMARY",
        "RECURSIVE",
        "ROLLBACK",
        "SELECT",
        "TRANSACTION",
        "VIEW",
        "SET",
        "SUM",
        "TABLE",
        "THEN",
        "TRUE",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "VALUES",
        "WHEN",
        "WHERE",
        "WITH",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

#: Single-character punctuation.
PUNCTUATION = frozenset({"(", ")", ",", ".", ";"})


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the uppercased keyword text for keywords, the raw
    identifier text for identifiers (case preserved; matching is
    case-insensitive downstream), the decoded literal for numbers/strings,
    and the operator/punctuation character(s) otherwise.
    """

    kind: TokenKind
    value: object
    position: int

    def matches_keyword(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<end of input>"
        return repr(self.value)
