"""SQL type system and three-valued logic primitives.

SQL NULL is represented by Python ``None``.  Boolean expressions evaluate
to one of ``True``, ``False`` or ``None`` (UNKNOWN); the helpers in this
module implement Kleene three-valued AND/OR/NOT and the null-aware
comparison rules used by :mod:`repro.sqldb.expressions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import TypeMismatchError

#: Marker for SQL NULL.  An alias so calling code reads ``NULL`` not ``None``.
NULL = None


def is_null(value: Any) -> bool:
    """Return True if *value* is the SQL NULL marker."""
    return value is None


@dataclass(frozen=True)
class SQLType:
    """A named SQL data type, optionally parameterised with a length.

    Only the properties the engine needs are modelled: a name used for
    display and CAST targets, an optional length (``VARCHAR(30)``), and the
    serialized width used by :mod:`repro.sqldb.wire` when estimating the
    number of bytes a value of this type occupies on the network.
    """

    name: str
    length: Optional[int] = None

    def __str__(self) -> str:
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name

    @property
    def is_numeric(self) -> bool:
        return self.name in ("INTEGER", "DOUBLE")

    @property
    def is_character(self) -> bool:
        return self.name in ("VARCHAR", "CHAR")


INTEGER = SQLType("INTEGER")
DOUBLE = SQLType("DOUBLE")
BOOLEAN = SQLType("BOOLEAN")


def VARCHAR(length: int) -> SQLType:
    """Build a VARCHAR type of the given maximum length."""
    return SQLType("VARCHAR", length)


def CHAR(length: int) -> SQLType:
    """Build a fixed-width CHAR type of the given length."""
    return SQLType("CHAR", length)


_TYPE_NAMES = {
    "INTEGER": lambda length: INTEGER,
    "INT": lambda length: INTEGER,
    "SMALLINT": lambda length: INTEGER,
    "BIGINT": lambda length: INTEGER,
    "DOUBLE": lambda length: DOUBLE,
    "FLOAT": lambda length: DOUBLE,
    "REAL": lambda length: DOUBLE,
    "DECIMAL": lambda length: DOUBLE,
    "NUMERIC": lambda length: DOUBLE,
    "BOOLEAN": lambda length: BOOLEAN,
    "VARCHAR": lambda length: SQLType("VARCHAR", length),
    "CHAR": lambda length: SQLType("CHAR", length if length is not None else 1),
    "CHARACTER": lambda length: SQLType("CHAR", length if length is not None else 1),
}


def type_from_name(name: str, length: Optional[int] = None) -> SQLType:
    """Resolve a type name from SQL text (e.g. ``varchar``) to a SQLType.

    Raises :class:`TypeMismatchError` for unknown type names.
    """
    factory = _TYPE_NAMES.get(name.upper())
    if factory is None:
        raise TypeMismatchError(f"unknown SQL type: {name!r}")
    return factory(length)


def coerce_value(value: Any, sql_type: SQLType) -> Any:
    """Coerce a Python value to the representation of *sql_type*.

    NULL passes through untouched.  Numeric strings are converted for
    numeric targets; everything is stringified for character targets.
    Raises :class:`TypeMismatchError` when the conversion is impossible.
    """
    if is_null(value):
        return NULL
    try:
        if sql_type.name == "INTEGER":
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if sql_type.name == "DOUBLE":
            return float(value)
        if sql_type.name == "BOOLEAN":
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
            raise ValueError(value)
        if sql_type.is_character:
            text = str(value)
            if sql_type.length is not None and len(text) > sql_type.length:
                # SQL would raise on overlong VARCHAR inserts; we truncate on
                # CAST which matches the engine's permissive storage model.
                text = text[: sql_type.length]
            return text
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {sql_type}"
        ) from exc
    raise TypeMismatchError(f"unsupported cast target {sql_type}")


def infer_type(value: Any) -> SQLType:
    """Infer the SQLType of a literal Python value (NULL maps to INTEGER,
    which is as good a guess as any for an untyped NULL)."""
    if is_null(value):
        return INTEGER
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return DOUBLE
    return SQLType("VARCHAR", None)


def logical_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def logical_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def logical_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene three-valued NOT."""
    if value is None:
        return None
    return not value


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Compare two SQL values; return -1/0/1, or None if either is NULL.

    Numbers compare numerically (booleans count as numbers per the engine's
    permissive model), strings lexicographically.  Comparing a number with
    a string raises :class:`TypeMismatchError` — silent cross-type ordering
    is a classic source of wrong results.
    """
    if is_null(left) or is_null(right):
        return None
    left_num = isinstance(left, (int, float, bool))
    right_num = isinstance(right, (int, float, bool))
    if left_num != right_num:
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if left < right:
        return -1
    if left > right:
        return 1
    return 0
