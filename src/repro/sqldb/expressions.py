"""Compile expression ASTs into executable closures.

Compilation resolves every column reference to a slot index at plan time
(:class:`Scope`), so evaluation is a straight tuple lookup.  References
that do not resolve in the current scope are searched in the enclosing
subquery frames; such references compile to reads of the runtime
outer-row stack and mark every frame they cross as *correlated*, which is
what disables result caching for the affected subqueries.

All predicates follow SQL three-valued logic: closures return ``True``,
``False`` or ``None`` (UNKNOWN); only ``True`` keeps a row.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ExecutionError, SQLError, TypeMismatchError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.functions import AGGREGATE_NAMES
from repro.sqldb.types import (
    coerce_value,
    compare_values,
    is_null,
    logical_and,
    logical_not,
    logical_or,
)

ExprFn = Callable[[Tuple[Any, ...], Any], Any]


class UnresolvedColumnError(SQLError):
    """Internal: a column reference did not resolve in any visible scope."""


class Scope:
    """Column namespace of one SELECT core.

    Slots are the concatenated output columns of the FROM clause; each slot
    carries the binding name it belongs to (table alias, lowercased) and
    its column name.  Resolution is case-insensitive and detects ambiguity.
    """

    def __init__(self, bindings: Sequence[Tuple[Optional[str], Sequence[str]]]) -> None:
        self.bindings: List[Tuple[Optional[str], List[str]]] = [
            (name.lower() if name else None, list(columns))
            for name, columns in bindings
        ]
        self._slots: List[Tuple[Optional[str], str]] = []
        for name, columns in self.bindings:
            for column in columns:
                self._slots.append((name, column.lower()))

    @property
    def arity(self) -> int:
        return len(self._slots)

    def binding_names(self) -> List[str]:
        return [name for name, __ in self.bindings if name]

    def has_binding(self, name: str) -> bool:
        return name.lower() in self.binding_names()

    def binding_slot_range(self, name: str) -> Tuple[int, int]:
        """Return the (start, end) slot range of a binding, for ``alias.*``."""
        offset = 0
        wanted = name.lower()
        for binding_name, columns in self.bindings:
            if binding_name == wanted:
                return offset, offset + len(columns)
            offset += len(columns)
        raise UnresolvedColumnError(f"unknown table alias {name!r}")

    def slot_names(self) -> List[str]:
        return [column for __, column in self._slots]

    def binding_of_slot(self, slot: int) -> Optional[str]:
        """The (lowercased) binding name a slot belongs to, or None."""
        return self._slots[slot][0]

    def resolve(self, qualifier: Optional[str], name: str) -> int:
        """Return the slot index of ``qualifier.name`` / ``name``.

        Raises :class:`UnresolvedColumnError` when absent and
        :class:`CatalogError` when an unqualified name is ambiguous.
        """
        wanted = name.lower()
        if qualifier is not None:
            qualifier = qualifier.lower()
            offset = 0
            for binding_name, columns in self.bindings:
                if binding_name == qualifier:
                    for position, column in enumerate(columns):
                        if column.lower() == wanted:
                            return offset + position
                    raise UnresolvedColumnError(
                        f"binding {qualifier!r} has no column {name!r}"
                    )
                offset += len(columns)
            raise UnresolvedColumnError(f"unknown table alias {qualifier!r}")
        matches = [
            index
            for index, (__, column) in enumerate(self._slots)
            if column == wanted
        ]
        if not matches:
            raise UnresolvedColumnError(f"unknown column {name!r}")
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference {name!r}")
        return matches[0]


class Frame:
    """One subquery nesting level during compilation.

    ``scope`` is mutable: a statement with a UNION body compiles each core
    sequentially against the same frame with the scope swapped in.
    ``correlated`` becomes True as soon as any expression compiled within
    this frame resolves a column in an enclosing frame.
    """

    __slots__ = ("scope", "correlated")

    def __init__(self, scope: Optional[Scope] = None) -> None:
        self.scope = scope
        self.correlated = False


class SlotRef(ast.Expression):
    """Planner-internal expression: read output slot *index* directly.

    Produced by the aggregate rewrite (group keys and aggregate results
    become slots of the Aggregate operator's output row).
    """

    def __init__(self, index: int) -> None:
        self.index = index


class CompileContext:
    """Everything :func:`compile_expression` needs.

    ``frames`` is the stack of subquery frames, innermost last.
    ``plan_subquery`` is the planner callback used for subquery
    expressions; it returns an object with ``exists/value_list/scalar``
    runtime methods (see :class:`repro.sqldb.planner.CompiledSubquery`).
    """

    def __init__(self, frames: List[Frame], plan_subquery, functions) -> None:
        self.frames = frames
        self.plan_subquery = plan_subquery
        self.functions = functions

    @property
    def scope(self) -> Scope:
        return self.frames[-1].scope

    def resolve_column(self, ref: ast.ColumnRef) -> Tuple[int, int]:
        """Resolve *ref* against the frame stack.

        Returns ``(depth, slot)`` where depth 0 is the current frame.
        Marks every frame inside the resolution point as correlated.
        """
        last_error: Optional[SQLError] = None
        for distance, frame in enumerate(reversed(self.frames)):
            if frame.scope is None:
                continue
            try:
                slot = frame.scope.resolve(ref.qualifier, ref.name)
            except UnresolvedColumnError as exc:
                last_error = exc
                continue
            if distance > 0:
                for inner in self.frames[len(self.frames) - distance :]:
                    inner.correlated = True
            return distance, slot
        if last_error is None:
            last_error = UnresolvedColumnError(f"unknown column {ref}")
        raise last_error


def compile_expression(node: ast.Expression, ctx: CompileContext) -> ExprFn:
    """Compile *node* into a closure ``(row, env) -> value``."""
    if isinstance(node, SlotRef):
        index = node.index
        return lambda row, env: row[index]
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda row, env: value
    if isinstance(node, ast.Parameter):
        index = node.index
        return lambda row, env: env.parameter(index)
    if isinstance(node, ast.ColumnRef):
        depth, slot = ctx.resolve_column(node)
        if depth == 0:
            return lambda row, env: row[slot]
        return lambda row, env: env.outer_rows[-depth][slot]
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node, ctx)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, ctx)
    if isinstance(node, ast.FunctionCall):
        return _compile_call(node, ctx)
    if isinstance(node, ast.Cast):
        operand = compile_expression(node.operand, ctx)
        target = node.target
        return lambda row, env: coerce_value(operand(row, env), target)
    if isinstance(node, ast.IsNullTest):
        operand = compile_expression(node.operand, ctx)
        if node.negated:
            return lambda row, env: not is_null(operand(row, env))
        return lambda row, env: is_null(operand(row, env))
    if isinstance(node, ast.InList):
        return _compile_in_list(node, ctx)
    if isinstance(node, ast.InSubquery):
        return _compile_in_subquery(node, ctx)
    if isinstance(node, ast.ExistsTest):
        subquery = ctx.plan_subquery(node.subquery, ctx.frames)
        if node.negated:
            return lambda row, env: not subquery.exists(row, env)
        return lambda row, env: subquery.exists(row, env)
    if isinstance(node, ast.ScalarSubquery):
        subquery = ctx.plan_subquery(node.subquery, ctx.frames)
        return lambda row, env: subquery.scalar(row, env)
    if isinstance(node, ast.Between):
        return _compile_between(node, ctx)
    if isinstance(node, ast.Like):
        return _compile_like(node, ctx)
    if isinstance(node, ast.CaseWhen):
        return _compile_case(node, ctx)
    raise ExecutionError(f"cannot compile {type(node).__name__}")


def to_bool(value: Any) -> Optional[bool]:
    """Interpret a value in boolean context (NULL stays UNKNOWN)."""
    if is_null(value):
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    raise TypeMismatchError(f"{value!r} is not a boolean")


def _compile_unary(node: ast.UnaryOp, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    if node.operator == "NOT":
        return lambda row, env: logical_not(to_bool(operand(row, env)))
    if node.operator == "-":
        def negate(row, env):
            value = operand(row, env)
            return None if is_null(value) else -value

        return negate
    if node.operator == "+":
        return operand
    raise ExecutionError(f"unknown unary operator {node.operator!r}")


_COMPARISONS = {
    "=": lambda cmp: cmp == 0,
    "<>": lambda cmp: cmp != 0,
    "<": lambda cmp: cmp < 0,
    "<=": lambda cmp: cmp <= 0,
    ">": lambda cmp: cmp > 0,
    ">=": lambda cmp: cmp >= 0,
}


def _compile_binary(node: ast.BinaryOp, ctx: CompileContext) -> ExprFn:
    operator = node.operator
    if operator == "AND":
        left = compile_expression(node.left, ctx)
        right = compile_expression(node.right, ctx)

        def and_fn(row, env):
            left_value = to_bool(left(row, env))
            if left_value is False:
                return False
            return logical_and(left_value, to_bool(right(row, env)))

        return and_fn
    if operator == "OR":
        left = compile_expression(node.left, ctx)
        right = compile_expression(node.right, ctx)

        def or_fn(row, env):
            left_value = to_bool(left(row, env))
            if left_value is True:
                return True
            return logical_or(left_value, to_bool(right(row, env)))

        return or_fn
    left = compile_expression(node.left, ctx)
    right = compile_expression(node.right, ctx)
    if operator in _COMPARISONS:
        decide = _COMPARISONS[operator]

        def compare(row, env):
            result = compare_values(left(row, env), right(row, env))
            return None if result is None else decide(result)

        return compare
    if operator in ("+", "-", "*", "/", "%"):
        return _arithmetic(operator, left, right)
    if operator == "||":
        def concat(row, env):
            left_value = left(row, env)
            right_value = right(row, env)
            if is_null(left_value) or is_null(right_value):
                return None
            return str(left_value) + str(right_value)

        return concat
    raise ExecutionError(f"unknown operator {operator!r}")


def _arithmetic(operator: str, left: ExprFn, right: ExprFn) -> ExprFn:
    def apply(row, env):
        left_value = left(row, env)
        right_value = right(row, env)
        if is_null(left_value) or is_null(right_value):
            return None
        if not isinstance(left_value, (int, float)) or not isinstance(
            right_value, (int, float)
        ):
            raise TypeMismatchError(
                f"arithmetic on non-numeric values "
                f"{left_value!r} {operator} {right_value!r}"
            )
        try:
            if operator == "+":
                return left_value + right_value
            if operator == "-":
                return left_value - right_value
            if operator == "*":
                return left_value * right_value
            if operator == "/":
                if isinstance(left_value, int) and isinstance(right_value, int):
                    # SQL integer division truncates toward zero.
                    return int(left_value / right_value)
                return left_value / right_value
            return left_value % right_value
        except ZeroDivisionError:
            raise ExecutionError("division by zero") from None

    return apply


def _compile_call(node: ast.FunctionCall, ctx: CompileContext) -> ExprFn:
    name = node.name.upper()
    if name in AGGREGATE_NAMES:
        raise ExecutionError(
            f"aggregate function {name} used outside of a grouped query context"
        )
    if name == "COALESCE":
        args = [compile_expression(arg, ctx) for arg in node.args]

        def coalesce(row, env):
            for arg in args:
                value = arg(row, env)
                if not is_null(value):
                    return value
            return None

        return coalesce
    if name == "NULLIF":
        if len(node.args) != 2:
            raise ExecutionError("NULLIF takes exactly two arguments")
        first = compile_expression(node.args[0], ctx)
        second = compile_expression(node.args[1], ctx)

        def nullif(row, env):
            value = first(row, env)
            if compare_values(value, second(row, env)) == 0:
                return None
            return value

        return nullif
    args = [compile_expression(arg, ctx) for arg in node.args]

    def call(row, env):
        return env.functions.call(name, [arg(row, env) for arg in args])

    return call


def _compile_in_list(node: ast.InList, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    negated = node.negated
    # Fast path: a list of literals/parameters is row-independent, so the
    # membership set can be built once per execution.  This matters for the
    # bulk check-out statements (``WHERE obid IN (?, ?, ..thousands..)``),
    # where the naive per-row linear scan would be quadratic.
    if all(
        isinstance(item, (ast.Literal, ast.Parameter)) for item in node.items
    ):
        item_fns = [compile_expression(item, ctx) for item in node.items]
        cache_token = object()

        def contains_static(row, env):
            cached = env.subquery_cache.get(cache_token)
            if cached is None:
                values = set()
                has_null = False
                for fn in item_fns:
                    item_value = fn(row, env)
                    if is_null(item_value):
                        has_null = True
                    else:
                        values.add(item_value)
                cached = (values, has_null)
                env.subquery_cache[cache_token] = cached
            values, has_null = cached
            value = operand(row, env)
            if is_null(value):
                result: Optional[bool] = None if (values or has_null) else False
            elif value in values:
                result = True
            elif has_null:
                result = None
            else:
                result = False
            return logical_not(result) if negated else result

        return contains_static
    items = [compile_expression(item, ctx) for item in node.items]

    def contains(row, env):
        value = operand(row, env)
        result: Optional[bool] = False
        for item in items:
            comparison = compare_values(value, item(row, env))
            if comparison == 0:
                result = True
                break
            if comparison is None:
                result = None
        return logical_not(result) if negated else result

    return contains


def _compile_in_subquery(node: ast.InSubquery, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    subquery = ctx.plan_subquery(node.subquery, ctx.frames)
    negated = node.negated

    def contains(row, env):
        value = operand(row, env)
        values, has_null = subquery.value_set(row, env)
        if not is_null(value) and value in values:
            result: Optional[bool] = True
        elif is_null(value) and (values or has_null):
            result = None
        elif has_null:
            result = None
        else:
            result = False
        return logical_not(result) if negated else result

    return contains


def _compile_between(node: ast.Between, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    low = compile_expression(node.low, ctx)
    high = compile_expression(node.high, ctx)
    negated = node.negated

    def between(row, env):
        value = operand(row, env)
        low_cmp = compare_values(value, low(row, env))
        high_cmp = compare_values(value, high(row, env))
        above_low = None if low_cmp is None else low_cmp >= 0
        below_high = None if high_cmp is None else high_cmp <= 0
        result = logical_and(above_low, below_high)
        return logical_not(result) if negated else result

    return between


def _compile_like(node: ast.Like, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    pattern = compile_expression(node.pattern, ctx)
    negated = node.negated
    cache: dict = {}

    def like(row, env):
        value = operand(row, env)
        pattern_value = pattern(row, env)
        if is_null(value) or is_null(pattern_value):
            return None
        regex = cache.get(pattern_value)
        if regex is None:
            regex = _like_to_regex(str(pattern_value))
            cache[pattern_value] = regex
        result = regex.fullmatch(str(value)) is not None
        return (not result) if negated else result

    return like


def _like_to_regex(pattern: str) -> "re.Pattern":
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def _compile_case(node: ast.CaseWhen, ctx: CompileContext) -> ExprFn:
    branches = [
        (compile_expression(condition, ctx), compile_expression(value, ctx))
        for condition, value in node.branches
    ]
    default = (
        compile_expression(node.default, ctx) if node.default is not None else None
    )

    def case(row, env):
        for condition, value in branches:
            if to_bool(condition(row, env)) is True:
                return value(row, env)
        if default is not None:
            return default(row, env)
        return None

    return case


def contains_aggregate(node: ast.Expression) -> bool:
    """True if *node* contains an aggregate call outside any subquery."""
    for sub in ast.walk_expression(node):
        if isinstance(sub, ast.FunctionCall) and sub.name.upper() in AGGREGATE_NAMES:
            return True
    return False
