"""Compile expression ASTs into executable closures.

Compilation resolves every column reference to a slot index at plan time
(:class:`Scope`), so evaluation is a straight tuple lookup.  References
that do not resolve in the current scope are searched in the enclosing
subquery frames; such references compile to reads of the runtime
outer-row stack and mark every frame they cross as *correlated*, which is
what disables result caching for the affected subqueries.

All predicates follow SQL three-valued logic: closures return ``True``,
``False`` or ``None`` (UNKNOWN); only ``True`` keeps a row.

Columnar kernels
----------------
Besides the row closure ``(row, env) -> value``, compilation attaches a
*columnar kernel* ``(batch, env) -> list`` as the closure's ``vector``
attribute whenever the expression shape supports one.  Kernels evaluate a
whole :class:`repro.sqldb.columnar.Batch` per call, hoisting the dispatch
that the row closure pays per tuple out to once per batch; they must be
*semantically identical* to the row closure over the same rows (same
values, same NULL handling, same error classes).  Two rules keep that
contract honest:

* AND/OR kernels **mask**: the right operand is evaluated only on the
  rows the row executor would have evaluated it on (left not-False for
  AND, left not-True for OR), so data-dependent errors — ``a <> 0 AND
  10 / a > 2`` — surface on exactly the same rows in both executors.
* Column-at-a-time evaluation may order two *independent* errors
  differently than row-at-a-time (the left column is finished before the
  right column starts).  Both executors still raise an
  :class:`~repro.errors.SQLError`; the differential harness pins exactly
  that contract.

Expressions without a kernel (CASE, function calls, subqueries, outer
references) simply lack the attribute; batch operators fall back to
evaluating the row closure over the batch's row view, which is identical
by construction.
"""

from __future__ import annotations

import operator as _py_operator
import re
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ExecutionError, SQLError, TypeMismatchError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.functions import AGGREGATE_NAMES
from repro.sqldb.types import (
    coerce_value,
    compare_values,
    is_null,
    logical_and,
    logical_not,
    logical_or,
)

ExprFn = Callable[[Tuple[Any, ...], Any], Any]

#: Columnar kernel: evaluate the expression over a whole column batch.
VectorFn = Callable[[Any, Any], List[Any]]


class UnresolvedColumnError(SQLError):
    """Internal: a column reference did not resolve in any visible scope."""


class Scope:
    """Column namespace of one SELECT core.

    Slots are the concatenated output columns of the FROM clause; each slot
    carries the binding name it belongs to (table alias, lowercased) and
    its column name.  Resolution is case-insensitive and detects ambiguity.
    """

    def __init__(self, bindings: Sequence[Tuple[Optional[str], Sequence[str]]]) -> None:
        self.bindings: List[Tuple[Optional[str], List[str]]] = [
            (name.lower() if name else None, list(columns))
            for name, columns in bindings
        ]
        self._slots: List[Tuple[Optional[str], str]] = []
        for name, columns in self.bindings:
            for column in columns:
                self._slots.append((name, column.lower()))

    @property
    def arity(self) -> int:
        return len(self._slots)

    def binding_names(self) -> List[str]:
        return [name for name, __ in self.bindings if name]

    def has_binding(self, name: str) -> bool:
        return name.lower() in self.binding_names()

    def binding_slot_range(self, name: str) -> Tuple[int, int]:
        """Return the (start, end) slot range of a binding, for ``alias.*``."""
        offset = 0
        wanted = name.lower()
        for binding_name, columns in self.bindings:
            if binding_name == wanted:
                return offset, offset + len(columns)
            offset += len(columns)
        raise UnresolvedColumnError(f"unknown table alias {name!r}")

    def slot_names(self) -> List[str]:
        return [column for __, column in self._slots]

    def binding_of_slot(self, slot: int) -> Optional[str]:
        """The (lowercased) binding name a slot belongs to, or None."""
        return self._slots[slot][0]

    def resolve(self, qualifier: Optional[str], name: str) -> int:
        """Return the slot index of ``qualifier.name`` / ``name``.

        Raises :class:`UnresolvedColumnError` when absent and
        :class:`CatalogError` when an unqualified name is ambiguous.
        """
        wanted = name.lower()
        if qualifier is not None:
            qualifier = qualifier.lower()
            offset = 0
            for binding_name, columns in self.bindings:
                if binding_name == qualifier:
                    for position, column in enumerate(columns):
                        if column.lower() == wanted:
                            return offset + position
                    raise UnresolvedColumnError(
                        f"binding {qualifier!r} has no column {name!r}"
                    )
                offset += len(columns)
            raise UnresolvedColumnError(f"unknown table alias {qualifier!r}")
        matches = [
            index
            for index, (__, column) in enumerate(self._slots)
            if column == wanted
        ]
        if not matches:
            raise UnresolvedColumnError(f"unknown column {name!r}")
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference {name!r}")
        return matches[0]


class Frame:
    """One subquery nesting level during compilation.

    ``scope`` is mutable: a statement with a UNION body compiles each core
    sequentially against the same frame with the scope swapped in.
    ``correlated`` becomes True as soon as any expression compiled within
    this frame resolves a column in an enclosing frame.
    """

    __slots__ = ("scope", "correlated")

    def __init__(self, scope: Optional[Scope] = None) -> None:
        self.scope = scope
        self.correlated = False


class SlotRef(ast.Expression):
    """Planner-internal expression: read output slot *index* directly.

    Produced by the aggregate rewrite (group keys and aggregate results
    become slots of the Aggregate operator's output row).
    """

    def __init__(self, index: int) -> None:
        self.index = index


class CompileContext:
    """Everything :func:`compile_expression` needs.

    ``frames`` is the stack of subquery frames, innermost last.
    ``plan_subquery`` is the planner callback used for subquery
    expressions; it returns an object with ``exists/value_list/scalar``
    runtime methods (see :class:`repro.sqldb.planner.CompiledSubquery`).
    """

    def __init__(self, frames: List[Frame], plan_subquery, functions) -> None:
        self.frames = frames
        self.plan_subquery = plan_subquery
        self.functions = functions

    @property
    def scope(self) -> Scope:
        return self.frames[-1].scope

    def resolve_column(self, ref: ast.ColumnRef) -> Tuple[int, int]:
        """Resolve *ref* against the frame stack.

        Returns ``(depth, slot)`` where depth 0 is the current frame.
        Marks every frame inside the resolution point as correlated.
        """
        last_error: Optional[SQLError] = None
        for distance, frame in enumerate(reversed(self.frames)):
            if frame.scope is None:
                continue
            try:
                slot = frame.scope.resolve(ref.qualifier, ref.name)
            except UnresolvedColumnError as exc:
                last_error = exc
                continue
            if distance > 0:
                for inner in self.frames[len(self.frames) - distance :]:
                    inner.correlated = True
            return distance, slot
        if last_error is None:
            last_error = UnresolvedColumnError(f"unknown column {ref}")
        raise last_error


def _attach_kernel(
    fn: ExprFn, kernel: VectorFn, column_slot: Optional[int] = None
) -> ExprFn:
    """Attach a columnar kernel (and optional slot tag) to a row closure.

    ``column_slot`` marks closures that are a bare read of one input slot;
    IS [NOT] NULL uses it to answer from the batch's cached validity mask
    instead of scanning the column.
    """
    setattr(fn, "vector", kernel)
    if column_slot is not None:
        setattr(fn, "column_slot", column_slot)
    return fn


def vector_kernel(fn: ExprFn) -> Optional[VectorFn]:
    """The columnar kernel of a compiled expression, if it has one."""
    return getattr(fn, "vector", None)


def as_kernel(fn: ExprFn) -> VectorFn:
    """A kernel for *fn*, falling back to a row loop over the batch.

    The fallback evaluates the row closure itself over the batch's row
    view, so it is semantically identical to the row executor no matter
    what the expression contains (subqueries included) — just without the
    columnar speedup.
    """
    kernel = vector_kernel(fn)
    if kernel is not None:
        return kernel

    def row_loop(batch, env):
        return [fn(row, env) for row in batch.rows()]

    return row_loop


def _slot_reader(index: int) -> ExprFn:
    """Read one input slot: the hottest expression in any plan."""

    def read(row, env):
        return row[index]

    def read_kernel(batch, env):
        return batch.columns[index]

    return _attach_kernel(read, read_kernel, column_slot=index)


def compile_expression(node: ast.Expression, ctx: CompileContext) -> ExprFn:
    """Compile *node* into a closure ``(row, env) -> value``.

    Where the expression shape has a columnar implementation the closure
    also carries a ``vector`` attribute — a kernel ``(batch, env) ->
    list`` evaluating the whole batch (see module docstring).
    """
    if isinstance(node, SlotRef):
        return _slot_reader(node.index)
    if isinstance(node, ast.Literal):
        value = node.value

        def literal(row, env):
            return value

        def literal_kernel(batch, env):
            return [value] * batch.length

        return _attach_kernel(literal, literal_kernel)
    if isinstance(node, ast.Parameter):
        index = node.index

        def parameter(row, env):
            return env.parameter(index)

        def parameter_kernel(batch, env):
            return [env.parameter(index)] * batch.length

        return _attach_kernel(parameter, parameter_kernel)
    if isinstance(node, ast.ColumnRef):
        depth, slot = ctx.resolve_column(node)
        if depth == 0:
            return _slot_reader(slot)
        # Outer reference: only reachable inside subquery plans, which are
        # never vectorized as part of the enclosing plan — no kernel.
        return lambda row, env: env.outer_rows[-depth][slot]
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node, ctx)
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, ctx)
    if isinstance(node, ast.FunctionCall):
        return _compile_call(node, ctx)
    if isinstance(node, ast.Cast):
        operand = compile_expression(node.operand, ctx)
        target = node.target

        def cast(row, env):
            return coerce_value(operand(row, env), target)

        operand_kernel = vector_kernel(operand)
        if operand_kernel is not None:

            def cast_kernel(batch, env):
                return [coerce_value(value, target) for value in operand_kernel(batch, env)]

            return _attach_kernel(cast, cast_kernel)
        return cast
    if isinstance(node, ast.IsNullTest):
        return _compile_is_null(node, ctx)
    if isinstance(node, ast.InList):
        return _compile_in_list(node, ctx)
    if isinstance(node, ast.InSubquery):
        return _compile_in_subquery(node, ctx)
    if isinstance(node, ast.ExistsTest):
        subquery = ctx.plan_subquery(node.subquery, ctx.frames)
        if node.negated:
            return lambda row, env: not subquery.exists(row, env)
        return lambda row, env: subquery.exists(row, env)
    if isinstance(node, ast.ScalarSubquery):
        subquery = ctx.plan_subquery(node.subquery, ctx.frames)
        return lambda row, env: subquery.scalar(row, env)
    if isinstance(node, ast.Between):
        return _compile_between(node, ctx)
    if isinstance(node, ast.Like):
        return _compile_like(node, ctx)
    if isinstance(node, ast.CaseWhen):
        return _compile_case(node, ctx)
    raise ExecutionError(f"cannot compile {type(node).__name__}")


def to_bool(value: Any) -> Optional[bool]:
    """Interpret a value in boolean context (NULL stays UNKNOWN)."""
    if is_null(value):
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    raise TypeMismatchError(f"{value!r} is not a boolean")


def _compile_unary(node: ast.UnaryOp, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    operand_kernel = as_kernel(operand)
    if node.operator == "NOT":

        def not_fn(row, env):
            return logical_not(to_bool(operand(row, env)))

        def not_kernel(batch, env):
            return [logical_not(to_bool(value)) for value in operand_kernel(batch, env)]

        return _attach_kernel(not_fn, not_kernel)
    if node.operator == "-":

        def negate(row, env):
            value = operand(row, env)
            return None if is_null(value) else -value

        def negate_kernel(batch, env):
            return [
                None if value is None else -value
                for value in operand_kernel(batch, env)
            ]

        return _attach_kernel(negate, negate_kernel)
    if node.operator == "+":
        return operand
    raise ExecutionError(f"unknown unary operator {node.operator!r}")


_COMPARISONS = {
    "=": lambda cmp: cmp == 0,
    "<>": lambda cmp: cmp != 0,
    "<": lambda cmp: cmp < 0,
    "<=": lambda cmp: cmp <= 0,
    ">": lambda cmp: cmp > 0,
    ">=": lambda cmp: cmp >= 0,
}

#: Direct Python comparison per SQL operator — identical to deciding on
#: the sign of :func:`compare_values` once both operands are known to be
#: the same kind (both numeric or both strings).
_VEC_COMPARISONS = {
    "=": _py_operator.eq,
    "<>": _py_operator.ne,
    "<": _py_operator.lt,
    "<=": _py_operator.le,
    ">": _py_operator.gt,
    ">=": _py_operator.ge,
}

#: Ordering comparisons can run as a bare C-level ``map``: every case the
#: careful path treats specially (NULL operands, number-vs-string) raises
#: TypeError under ``<``/``>`` in Python, which triggers the fallback.
#: Equality cannot (``None == 5`` is False, not an error), so ``=``/``<>``
#: need the type precheck instead.
_VEC_ORDERING = frozenset(("<", "<=", ">", ">="))

_NUMERIC_KINDS = frozenset((int, float, bool))
_STRING_KINDS = frozenset((str,))
_BOOLEAN_KINDS = frozenset((bool, type(None)))
_NONE_TYPE = type(None)


def _column_kinds(*columns: List[Any]) -> set:
    """The exact element types present across *columns* (one C pass each)."""
    kinds: set = set()
    for column in columns:
        kinds.update(map(type, column))
    return kinds


def _bool_column(values: List[Any]) -> List[Optional[bool]]:
    """Apply :func:`to_bool` to a column, skipping the per-element calls
    when the column is already three-valued booleans (the common case —
    comparison kernels produce exactly that)."""
    if _column_kinds(values) <= _BOOLEAN_KINDS:
        return values
    return [to_bool(value) for value in values]


def _compile_binary(node: ast.BinaryOp, ctx: CompileContext) -> ExprFn:
    operator = node.operator
    if operator == "AND":
        left = compile_expression(node.left, ctx)
        right = compile_expression(node.right, ctx)

        def and_fn(row, env):
            left_value = to_bool(left(row, env))
            if left_value is False:
                return False
            return logical_and(left_value, to_bool(right(row, env)))

        left_kernel = as_kernel(left)
        right_kernel = as_kernel(right)

        def and_kernel(batch, env):
            # Masked evaluation: the right operand runs only on rows where
            # the left side did not already decide False, mirroring the row
            # closure's short-circuit — including which rows can raise.
            left_bools = _bool_column(left_kernel(batch, env))
            out: List[Optional[bool]] = [False] * batch.length
            pending = [i for i, value in enumerate(left_bools) if value is not False]
            if pending:
                sub = batch if len(pending) == batch.length else batch.gather(pending)
                right_bools = _bool_column(right_kernel(sub, env))
                # Inlined logical_and with the left side known not-False:
                # TRUE AND r = r;  UNKNOWN AND r = FALSE if r FALSE else UNKNOWN.
                for position, i in enumerate(pending):
                    right_value = right_bools[position]
                    if left_bools[i] is True:
                        out[i] = right_value
                    elif right_value is False:
                        out[i] = False
                    else:
                        out[i] = None
            return out

        return _attach_kernel(and_fn, and_kernel)
    if operator == "OR":
        left = compile_expression(node.left, ctx)
        right = compile_expression(node.right, ctx)

        def or_fn(row, env):
            left_value = to_bool(left(row, env))
            if left_value is True:
                return True
            return logical_or(left_value, to_bool(right(row, env)))

        left_kernel = as_kernel(left)
        right_kernel = as_kernel(right)

        def or_kernel(batch, env):
            left_bools = _bool_column(left_kernel(batch, env))
            out: List[Optional[bool]] = [True] * batch.length
            pending = [i for i, value in enumerate(left_bools) if value is not True]
            if pending:
                sub = batch if len(pending) == batch.length else batch.gather(pending)
                right_bools = _bool_column(right_kernel(sub, env))
                # Inlined logical_or with the left side known not-True:
                # FALSE OR r = r;  UNKNOWN OR r = TRUE if r TRUE else UNKNOWN.
                for position, i in enumerate(pending):
                    right_value = right_bools[position]
                    if left_bools[i] is False:
                        out[i] = right_value
                    elif right_value is True:
                        out[i] = True
                    else:
                        out[i] = None
            return out

        return _attach_kernel(or_fn, or_kernel)
    left = compile_expression(node.left, ctx)
    right = compile_expression(node.right, ctx)
    if operator in _COMPARISONS:
        decide = _COMPARISONS[operator]

        def compare(row, env):
            result = compare_values(left(row, env), right(row, env))
            return None if result is None else decide(result)

        left_kernel = as_kernel(left)
        right_kernel = as_kernel(right)
        direct = _VEC_COMPARISONS[operator]
        ordering = operator in _VEC_ORDERING

        def compare_kernel(batch, env):
            left_values = left_kernel(batch, env)
            right_values = right_kernel(batch, env)
            # Optimistic C-level pass over both columns; any case needing
            # SQL semantics (NULL, cross-kind) drops to the careful loop.
            if ordering:
                try:
                    return list(map(direct, left_values, right_values))
                except TypeError:
                    pass
            else:
                kinds = _column_kinds(left_values, right_values)
                if _NONE_TYPE not in kinds and (
                    kinds <= _NUMERIC_KINDS or kinds <= _STRING_KINDS
                ):
                    return list(map(direct, left_values, right_values))
            out: List[Optional[bool]] = []
            append = out.append
            for left_value, right_value in zip(left_values, right_values):
                if left_value is None or right_value is None:
                    append(None)
                elif isinstance(left_value, (int, float)) != isinstance(
                    right_value, (int, float)
                ):
                    # Same type discipline as compare_values (bool counts
                    # as numeric there too, being an int subclass).
                    raise TypeMismatchError(
                        f"cannot compare {type(left_value).__name__} "
                        f"with {type(right_value).__name__}"
                    )
                else:
                    append(direct(left_value, right_value))
            return out

        return _attach_kernel(compare, compare_kernel)
    if operator in ("+", "-", "*", "/", "%"):
        return _arithmetic(operator, left, right)
    if operator == "||":

        def concat(row, env):
            left_value = left(row, env)
            right_value = right(row, env)
            if is_null(left_value) or is_null(right_value):
                return None
            return str(left_value) + str(right_value)

        left_kernel = as_kernel(left)
        right_kernel = as_kernel(right)

        def concat_kernel(batch, env):
            return [
                None
                if left_value is None or right_value is None
                else str(left_value) + str(right_value)
                for left_value, right_value in zip(
                    left_kernel(batch, env), right_kernel(batch, env)
                )
            ]

        return _attach_kernel(concat, concat_kernel)
    raise ExecutionError(f"unknown operator {operator!r}")


def _arith_value(operator: str, left_value: Any, right_value: Any) -> Any:
    """One arithmetic application — shared by the row closure and kernel
    so NULL propagation, the type check and error classes cannot drift."""
    if left_value is None or right_value is None:
        return None
    if not isinstance(left_value, (int, float)) or not isinstance(
        right_value, (int, float)
    ):
        raise TypeMismatchError(
            f"arithmetic on non-numeric values "
            f"{left_value!r} {operator} {right_value!r}"
        )
    try:
        if operator == "+":
            return left_value + right_value
        if operator == "-":
            return left_value - right_value
        if operator == "*":
            return left_value * right_value
        if operator == "/":
            if isinstance(left_value, int) and isinstance(right_value, int):
                # SQL integer division truncates toward zero.
                return int(left_value / right_value)
            return left_value / right_value
        return left_value % right_value
    except ZeroDivisionError:
        raise ExecutionError("division by zero") from None


_VEC_ARITHMETIC = {
    "+": _py_operator.add,
    "-": _py_operator.sub,
    "*": _py_operator.mul,
}


def _arithmetic(operator: str, left: ExprFn, right: ExprFn) -> ExprFn:
    def apply(row, env):
        return _arith_value(operator, left(row, env), right(row, env))

    left_kernel = as_kernel(left)
    right_kernel = as_kernel(right)
    # + - * on all-numeric NULL-free columns are a single C-level map;
    # / and % stay per-element (integer division truncates toward zero
    # and zero divisors must surface as ExecutionError in row order).
    fast = _VEC_ARITHMETIC.get(operator)

    def apply_kernel(batch, env):
        left_values = left_kernel(batch, env)
        right_values = right_kernel(batch, env)
        if fast is not None and _column_kinds(
            left_values, right_values
        ) <= _NUMERIC_KINDS:
            return list(map(fast, left_values, right_values))
        return [
            _arith_value(operator, left_value, right_value)
            for left_value, right_value in zip(left_values, right_values)
        ]

    return _attach_kernel(apply, apply_kernel)


def _compile_is_null(node: ast.IsNullTest, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    if node.negated:

        def not_null_fn(row, env):
            return not is_null(operand(row, env))

        fn = not_null_fn
    else:

        def null_fn(row, env):
            return is_null(operand(row, env))

        fn = null_fn
    slot = getattr(operand, "column_slot", None)
    if slot is not None:
        # Bare column: answer straight from the cached validity mask.
        if node.negated:

            def valid_kernel(batch, env):
                return batch.validity(slot)

            return _attach_kernel(fn, valid_kernel)

        def invalid_kernel(batch, env):
            return [not valid for valid in batch.validity(slot)]

        return _attach_kernel(fn, invalid_kernel)
    operand_kernel = vector_kernel(operand)
    if operand_kernel is None:
        return fn
    if node.negated:

        def not_null_kernel(batch, env):
            return [value is not None for value in operand_kernel(batch, env)]

        return _attach_kernel(fn, not_null_kernel)

    def null_kernel(batch, env):
        return [value is None for value in operand_kernel(batch, env)]

    return _attach_kernel(fn, null_kernel)


def _compile_call(node: ast.FunctionCall, ctx: CompileContext) -> ExprFn:
    name = node.name.upper()
    if name in AGGREGATE_NAMES:
        raise ExecutionError(
            f"aggregate function {name} used outside of a grouped query context"
        )
    if name == "COALESCE":
        args = [compile_expression(arg, ctx) for arg in node.args]

        def coalesce(row, env):
            for arg in args:
                value = arg(row, env)
                if not is_null(value):
                    return value
            return None

        return coalesce
    if name == "NULLIF":
        if len(node.args) != 2:
            raise ExecutionError("NULLIF takes exactly two arguments")
        first = compile_expression(node.args[0], ctx)
        second = compile_expression(node.args[1], ctx)

        def nullif(row, env):
            value = first(row, env)
            if compare_values(value, second(row, env)) == 0:
                return None
            return value

        return nullif
    args = [compile_expression(arg, ctx) for arg in node.args]

    def call(row, env):
        return env.functions.call(name, [arg(row, env) for arg in args])

    return call


def _compile_in_list(node: ast.InList, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    negated = node.negated
    # Fast path: a list of literals/parameters is row-independent, so the
    # membership set can be built once per execution.  This matters for the
    # bulk check-out statements (``WHERE obid IN (?, ?, ..thousands..)``),
    # where the naive per-row linear scan would be quadratic.
    if all(
        isinstance(item, (ast.Literal, ast.Parameter)) for item in node.items
    ):
        item_fns = [compile_expression(item, ctx) for item in node.items]
        cache_token = object()

        def _membership_set(env):
            cached = env.subquery_cache.get(cache_token)
            if cached is None:
                values = set()
                has_null = False
                for fn in item_fns:
                    # Items are literals/parameters: row-independent.
                    item_value = fn((), env)
                    if is_null(item_value):
                        has_null = True
                    else:
                        values.add(item_value)
                cached = (values, has_null)
                env.subquery_cache[cache_token] = cached
            return cached

        def _decide(value, values, has_null):
            if is_null(value):
                result: Optional[bool] = None if (values or has_null) else False
            elif value in values:
                result = True
            elif has_null:
                result = None
            else:
                result = False
            return logical_not(result) if negated else result

        def contains_static(row, env):
            values, has_null = _membership_set(env)
            return _decide(operand(row, env), values, has_null)

        operand_kernel = as_kernel(operand)

        def contains_static_kernel(batch, env):
            values, has_null = _membership_set(env)
            return [
                _decide(value, values, has_null)
                for value in operand_kernel(batch, env)
            ]

        return _attach_kernel(contains_static, contains_static_kernel)
    items = [compile_expression(item, ctx) for item in node.items]

    def contains(row, env):
        value = operand(row, env)
        result: Optional[bool] = False
        for item in items:
            comparison = compare_values(value, item(row, env))
            if comparison == 0:
                result = True
                break
            if comparison is None:
                result = None
        return logical_not(result) if negated else result

    return contains


def _compile_in_subquery(node: ast.InSubquery, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    subquery = ctx.plan_subquery(node.subquery, ctx.frames)
    negated = node.negated

    def contains(row, env):
        value = operand(row, env)
        values, has_null = subquery.value_set(row, env)
        if not is_null(value) and value in values:
            result: Optional[bool] = True
        elif is_null(value) and (values or has_null):
            result = None
        elif has_null:
            result = None
        else:
            result = False
        return logical_not(result) if negated else result

    return contains


def _compile_between(node: ast.Between, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    low = compile_expression(node.low, ctx)
    high = compile_expression(node.high, ctx)
    negated = node.negated

    def _decide(value, low_value, high_value):
        low_cmp = compare_values(value, low_value)
        high_cmp = compare_values(value, high_value)
        above_low = None if low_cmp is None else low_cmp >= 0
        below_high = None if high_cmp is None else high_cmp <= 0
        result = logical_and(above_low, below_high)
        return logical_not(result) if negated else result

    def between(row, env):
        return _decide(operand(row, env), low(row, env), high(row, env))

    operand_kernel = as_kernel(operand)
    low_kernel = as_kernel(low)
    high_kernel = as_kernel(high)

    def between_kernel(batch, env):
        return [
            _decide(value, low_value, high_value)
            for value, low_value, high_value in zip(
                operand_kernel(batch, env),
                low_kernel(batch, env),
                high_kernel(batch, env),
            )
        ]

    return _attach_kernel(between, between_kernel)


def _compile_like(node: ast.Like, ctx: CompileContext) -> ExprFn:
    operand = compile_expression(node.operand, ctx)
    pattern = compile_expression(node.pattern, ctx)
    negated = node.negated
    cache: dict = {}

    def _match(value, pattern_value):
        if is_null(value) or is_null(pattern_value):
            return None
        regex = cache.get(pattern_value)
        if regex is None:
            regex = _like_to_regex(str(pattern_value))
            cache[pattern_value] = regex
        result = regex.fullmatch(str(value)) is not None
        return (not result) if negated else result

    def like(row, env):
        return _match(operand(row, env), pattern(row, env))

    operand_kernel = as_kernel(operand)
    pattern_kernel = as_kernel(pattern)

    def like_kernel(batch, env):
        return [
            _match(value, pattern_value)
            for value, pattern_value in zip(
                operand_kernel(batch, env), pattern_kernel(batch, env)
            )
        ]

    return _attach_kernel(like, like_kernel)


def _like_to_regex(pattern: str) -> "re.Pattern":
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), re.DOTALL)


def _compile_case(node: ast.CaseWhen, ctx: CompileContext) -> ExprFn:
    branches = [
        (compile_expression(condition, ctx), compile_expression(value, ctx))
        for condition, value in node.branches
    ]
    default = (
        compile_expression(node.default, ctx) if node.default is not None else None
    )

    def case(row, env):
        for condition, value in branches:
            if to_bool(condition(row, env)) is True:
                return value(row, env)
        if default is not None:
            return default(row, env)
        return None

    return case


def contains_aggregate(node: ast.Expression) -> bool:
    """True if *node* contains an aggregate call outside any subquery."""
    for sub in ast.walk_expression(node):
        if isinstance(sub, ast.FunctionCall) and sub.name.upper() in AGGREGATE_NAMES:
            return True
    return False
