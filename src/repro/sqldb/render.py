"""Render SQL AST nodes back to SQL text.

Used in three places: the aggregate planner needs a canonical textual key
to match GROUP BY expressions against select-list subexpressions; the rule
query-modificator builds queries structurally and renders them at the end;
and the client ships query *text* over the simulated network, so rendering
determines the request byte counts the experiments measure.
"""

from __future__ import annotations

from typing import List, Union

from repro.sqldb import ast_nodes as ast


def render_statement(statement: ast.Statement) -> str:
    """Render any supported statement to SQL text."""
    if isinstance(statement, ast.SelectStatement):
        return render_select(statement)
    if isinstance(statement, ast.CreateTable):
        columns = ", ".join(_render_column_def(col) for col in statement.columns)
        return f"CREATE TABLE {statement.name} ({columns})"
    if isinstance(statement, ast.CreateIndex):
        unique = "UNIQUE " if statement.unique else ""
        columns = ", ".join(statement.columns)
        return (
            f"CREATE {unique}INDEX {statement.name} "
            f"ON {statement.table} ({columns})"
        )
    if isinstance(statement, ast.DropTable):
        return f"DROP TABLE {statement.name}"
    if isinstance(statement, ast.Insert):
        return _render_insert(statement)
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{column} = {render_expression(value)}"
            for column, value in statement.assignments
        )
        text = f"UPDATE {statement.table} SET {assignments}"
        if statement.where is not None:
            text += f" WHERE {render_expression(statement.where)}"
        return text
    if isinstance(statement, ast.Delete):
        text = f"DELETE FROM {statement.table}"
        if statement.where is not None:
            text += f" WHERE {render_expression(statement.where)}"
        return text
    if isinstance(statement, ast.CreateView):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        return (
            f"CREATE VIEW {statement.name}{columns} AS "
            f"{render_select(statement.select)}"
        )
    if isinstance(statement, ast.DropView):
        return f"DROP VIEW {statement.name}"
    if isinstance(statement, ast.BeginTransaction):
        if statement.read_only:
            return "BEGIN TRANSACTION READ ONLY"
        return "BEGIN TRANSACTION"
    if isinstance(statement, ast.CommitTransaction):
        return "COMMIT"
    if isinstance(statement, ast.RollbackTransaction):
        return "ROLLBACK"
    if isinstance(statement, ast.Explain):
        return f"EXPLAIN {render_select(statement.statement)}"
    if isinstance(statement, ast.Lint):
        return f"LINT {render_select(statement.statement)}"
    if isinstance(statement, ast.LintTransaction):
        escaped = statement.script.replace("'", "''")
        return f"LINT TRANSACTION '{escaped}'"
    if isinstance(statement, ast.Analyze):
        if statement.table is not None:
            return f"ANALYZE {statement.table}"
        return "ANALYZE"
    raise TypeError(f"cannot render {type(statement).__name__}")


def _render_column_def(column: ast.ColumnDef) -> str:
    text = f"{column.name} {column.sql_type}"
    if column.primary_key:
        text += " PRIMARY KEY"
    elif column.not_null:
        text += " NOT NULL"
    return text


def _render_insert(statement: ast.Insert) -> str:
    text = f"INSERT INTO {statement.table}"
    if statement.columns:
        text += " (" + ", ".join(statement.columns) + ")"
    if statement.rows is not None:
        rows = ", ".join(
            "(" + ", ".join(render_expression(value) for value in row) + ")"
            for row in statement.rows
        )
        return f"{text} VALUES {rows}"
    return f"{text} {render_select(statement.select)}"


def render_select(statement: ast.SelectStatement) -> str:
    parts: List[str] = []
    if statement.with_clause is not None:
        keyword = "WITH RECURSIVE" if statement.with_clause.recursive else "WITH"
        ctes = []
        for cte in statement.with_clause.ctes:
            columns = f" ({', '.join(cte.columns)})" if cte.columns else ""
            ctes.append(f"{cte.name}{columns} AS ({render_body(cte.body)})")
        parts.append(f"{keyword} " + ", ".join(ctes))
    parts.append(render_body(statement.body))
    if statement.order_by:
        keys = ", ".join(
            render_expression(item.expression) + (" DESC" if item.descending else "")
            for item in statement.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if statement.limit is not None:
        parts.append(f"LIMIT {render_expression(statement.limit)}")
    if statement.offset is not None:
        parts.append(f"OFFSET {render_expression(statement.offset)}")
    return " ".join(parts)


def render_body(body: Union[ast.SelectCore, ast.SetOperation]) -> str:
    if isinstance(body, ast.SetOperation):
        # Set operators associate left in this dialect, so a right-nested
        # operand must keep its parentheses: rendering
        # ``a UNION (b EXCEPT c)`` without them would re-parse as
        # ``(a UNION b) EXCEPT c`` — a different query.
        right = render_body(body.right)
        if isinstance(body.right, ast.SetOperation):
            right = f"({right})"
        return f"{render_body(body.left)} {body.operator} {right}"
    return _render_core(body)


def _render_core(core: ast.SelectCore) -> str:
    items = []
    for item in core.items:
        if isinstance(item, ast.Star):
            items.append(f"{item.qualifier}.*" if item.qualifier else "*")
        else:
            rendered = render_expression(item.expression)
            if item.alias:
                rendered += f' AS "{item.alias}"'
            items.append(rendered)
    distinct = "DISTINCT " if core.distinct else ""
    text = f"SELECT {distinct}" + ", ".join(items)
    if core.from_items:
        text += " FROM " + ", ".join(
            _render_from_item(item) for item in core.from_items
        )
    if core.where is not None:
        text += f" WHERE {render_expression(core.where)}"
    if core.group_by:
        text += " GROUP BY " + ", ".join(
            render_expression(expr) for expr in core.group_by
        )
    if core.having is not None:
        text += f" HAVING {render_expression(core.having)}"
    return text


def _render_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        if item.alias:
            return f"{item.name} AS {item.alias}"
        return item.name
    if isinstance(item, ast.SubqueryRef):
        return f"({render_select(item.subquery)}) AS {item.alias}"
    if isinstance(item, ast.Join):
        left = _render_from_item(item.left)
        right = _render_from_item(item.right)
        if item.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = "JOIN" if item.kind == "INNER" else f"{item.kind} JOIN"
        return f"{left} {keyword} {right} ON {render_expression(item.condition)}"
    raise TypeError(f"cannot render {type(item).__name__}")


def render_expression(expression: ast.Expression) -> str:
    """Render an expression with conservative (fully explicit) parentheses
    around binary operations, so precedence never changes on re-parse."""
    if isinstance(expression, ast.Literal):
        return _render_literal(expression.value)
    if isinstance(expression, ast.ColumnRef):
        return str(expression)
    if isinstance(expression, ast.Parameter):
        return "?"
    if isinstance(expression, ast.UnaryOp):
        if expression.operator == "NOT":
            # Self-parenthesised so NOT can appear anywhere an operand can.
            return f"(NOT ({render_expression(expression.operand)}))"
        # Fold sign into numeric literals ("-(-1)" re-parses as a nested
        # negation; "1" is a fixpoint) and parenthesise everything else —
        # "-" followed by a negative literal must not become a "--" line
        # comment.
        if expression.operator == "-" and isinstance(
            expression.operand, ast.Literal
        ):
            value = expression.operand.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return _render_literal(-value)
        operand = render_expression(expression.operand)
        return f"{expression.operator}({operand})"
    if isinstance(expression, ast.BinaryOp):
        left = render_expression(expression.left)
        right = render_expression(expression.right)
        if expression.operator in ("AND", "OR"):
            return f"({left} {expression.operator} {right})"
        return f"({left} {expression.operator} {right})"
    if isinstance(expression, ast.FunctionCall):
        if expression.star:
            return f"{expression.name}(*)"
        args = ", ".join(render_expression(arg) for arg in expression.args)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{args})"
    if isinstance(expression, ast.Cast):
        return (
            f"CAST({render_expression(expression.operand)} AS {expression.target})"
        )
    if isinstance(expression, ast.IsNullTest):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"({render_expression(expression.operand)} {suffix})"
    if isinstance(expression, ast.InList):
        items = ", ".join(render_expression(item) for item in expression.items)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"({render_expression(expression.operand)} {keyword} ({items}))"
    if isinstance(expression, ast.InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return (
            f"({render_expression(expression.operand)} {keyword} "
            f"({render_select(expression.subquery)}))"
        )
    if isinstance(expression, ast.ExistsTest):
        keyword = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{keyword} ({render_select(expression.subquery)})"
    if isinstance(expression, ast.ScalarSubquery):
        return f"({render_select(expression.subquery)})"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (
            f"({render_expression(expression.operand)} {keyword} "
            f"{render_expression(expression.low)} AND "
            f"{render_expression(expression.high)})"
        )
    if isinstance(expression, ast.Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return (
            f"({render_expression(expression.operand)} {keyword} "
            f"{render_expression(expression.pattern)})"
        )
    if isinstance(expression, ast.CaseWhen):
        parts = ["CASE"]
        for condition, value in expression.branches:
            parts.append(
                f"WHEN {render_expression(condition)} "
                f"THEN {render_expression(value)}"
            )
        if expression.default is not None:
            parts.append(f"ELSE {render_expression(expression.default)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"cannot render {type(expression).__name__}")


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


def expression_key(expression: ast.Expression) -> str:
    """Canonical case-insensitive key for structural expression equality
    (GROUP BY matching)."""
    return render_expression(expression).lower()
