"""Scalar and aggregate function registry, including stored functions.

The paper (Section 3.2) points out that row conditions which exceed the
expressive power of plain SQL predicates — set comparisons, interval
overlaps, transient attribute computations — must be provided as *stored
functions* at the server (SQL/PSM).  This registry is the engine's stand-in
for SQL/PSM: Python callables registered under an SQL name, callable from
any expression.

Built-in scalar functions cover the usual string/numeric helpers; the PDM
layer registers domain functions such as ``options_overlap`` and
``effectivity_overlaps`` on top (see :mod:`repro.pdm.schema`).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExecutionError
from repro.sqldb.types import is_null

ScalarFunction = Callable[..., Any]

#: Names that denote aggregate functions in this dialect.
AGGREGATE_NAMES = frozenset({"AVG", "COUNT", "MAX", "MIN", "SUM"})


class FunctionRegistry:
    """Case-insensitive registry of scalar functions.

    A fresh registry starts with the built-in functions; servers register
    additional stored functions at runtime.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, ScalarFunction] = {}
        self._null_propagating: Dict[str, bool] = {}
        for name, function in _BUILTINS.items():
            self.register(name, function)

    def register(
        self, name: str, function: ScalarFunction, propagate_null: bool = True
    ) -> None:
        """Register *function* under *name* (replacing any previous binding).

        When ``propagate_null`` is true (the default, matching SQL scalar
        function semantics) the function is not invoked if any argument is
        NULL; the result is NULL instead.
        """
        key = name.upper()
        self._functions[key] = function
        self._null_propagating[key] = propagate_null

    def is_registered(self, name: str) -> bool:
        return name.upper() in self._functions

    def call(self, name: str, args: List[Any]) -> Any:
        key = name.upper()
        function = self._functions.get(key)
        if function is None:
            raise ExecutionError(f"unknown function {name!r}")
        if self._null_propagating[key] and any(is_null(arg) for arg in args):
            return None
        try:
            return function(*args)
        except ExecutionError:
            raise
        except Exception as exc:  # surface stored-function bugs as SQL errors
            raise ExecutionError(f"function {name!r} failed: {exc}") from exc

    def names(self) -> List[str]:
        return sorted(self._functions)


def _sql_substr(text: str, start: int, length: Optional[int] = None) -> str:
    """1-based SUBSTR with SQL semantics."""
    begin = max(int(start) - 1, 0)
    if length is None:
        return str(text)[begin:]
    return str(text)[begin : begin + int(length)]


_BUILTINS: Dict[str, ScalarFunction] = {
    "ABS": abs,
    "CEIL": lambda x: math.ceil(x),
    "CEILING": lambda x: math.ceil(x),
    "FLOOR": lambda x: math.floor(x),
    "ROUND": lambda x, digits=0: round(x, int(digits)),
    "SQRT": math.sqrt,
    "MOD": lambda a, b: a % b,
    "POWER": lambda a, b: a**b,
    "LENGTH": lambda s: len(str(s)),
    "LOWER": lambda s: str(s).lower(),
    "UPPER": lambda s: str(s).upper(),
    "TRIM": lambda s: str(s).strip(),
    "LTRIM": lambda s: str(s).lstrip(),
    "RTRIM": lambda s: str(s).rstrip(),
    "SUBSTR": _sql_substr,
    "SUBSTRING": _sql_substr,
    "REPLACE": lambda s, old, new: str(s).replace(str(old), str(new)),
    "CONCAT": lambda *parts: "".join(str(part) for part in parts),
    "SIGN": lambda x: (x > 0) - (x < 0),
}


class Aggregator:
    """Incremental computation of one aggregate function.

    SQL semantics: NULL inputs are ignored; COUNT(*) counts rows; an empty
    group yields NULL for AVG/MAX/MIN/SUM and 0 for COUNT.
    """

    def __init__(self, name: str, distinct: bool = False, star: bool = False) -> None:
        self.name = name.upper()
        if self.name not in AGGREGATE_NAMES:
            raise ExecutionError(f"{name!r} is not an aggregate function")
        self.distinct = distinct
        self.star = star
        self._count = 0
        self._total: Any = None
        self._extreme: Any = None
        self._seen = set() if distinct else None

    def add(self, value: Any) -> None:
        """Feed one input value (ignored if NULL, unless COUNT(*))."""
        if self.star:
            self._count += 1
            return
        if is_null(value):
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1
        if self.name in ("SUM", "AVG"):
            self._total = value if self._total is None else self._total + value
        elif self.name == "MAX":
            if self._extreme is None or value > self._extreme:
                self._extreme = value
        elif self.name == "MIN":
            if self._extreme is None or value < self._extreme:
                self._extreme = value

    def result(self) -> Any:
        """Return the aggregate value for the rows fed so far."""
        if self.name == "COUNT":
            return self._count
        if self._count == 0:
            return None
        if self.name == "SUM":
            return self._total
        if self.name == "AVG":
            return self._total / self._count
        return self._extreme
