"""Render physical plans as indented text (the ``EXPLAIN`` statement).

Useful for verifying the planner's access-path decisions — e.g. that the
recursive multi-level expand probes the ``link`` table through its hash
index instead of rescanning it per fixpoint iteration.
"""

from __future__ import annotations

from typing import List

from repro.sqldb.executor import (
    Aggregate,
    CTEScan,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    IndexNestedLoopJoin,
    Limit,
    MultiKeyIndexLookup,
    NestedLoopJoin,
    Operator,
    Project,
    RowsSource,
    SeqScan,
    SetDifference,
    SetIntersection,
    Sort,
    UnionAll,
)
from repro.sqldb.planner import Plan, PlannedCTE, SubplanOperator


def explain_plan(plan: Plan) -> List[str]:
    """Flatten a plan (CTE materialisations first, then the root tree)."""
    lines: List[str] = []
    for cte in plan.ctes:
        lines.extend(_explain_cte(cte))
    lines.extend(_explain_operator(plan.root, 0))
    return lines


def _explain_cte(cte: PlannedCTE) -> List[str]:
    kind = "recursive cte" if cte.recursive else "cte"
    dedup = "UNION" if cte.distinct else "UNION ALL"
    lines = [f"materialize {kind} {cte.name} ({dedup})"]
    for branch in cte.seed_plans:
        lines.append("  seed branch:")
        lines.extend(_explain_operator(branch, 2))
    for branch in cte.recursive_plans:
        lines.append("  recursive branch (joins the delta):")
        lines.extend(_explain_operator(branch, 2))
    return lines


def _label(operator: Operator) -> str:
    if isinstance(operator, SeqScan):
        return f"SeqScan({operator.storage.schema.name})"
    if isinstance(operator, IndexLookup):
        return (
            f"IndexLookup({operator.storage.schema.name} "
            f"via {operator.index.name})"
        )
    if isinstance(operator, MultiKeyIndexLookup):
        return (
            f"MultiKeyIndexLookup({operator.storage.schema.name} "
            f"via {operator.index.name}, {len(operator.key_fns)} keys)"
        )
    if isinstance(operator, IndexNestedLoopJoin):
        return (
            f"IndexNestedLoopJoin({operator.kind} probe "
            f"{operator.storage.schema.name} via {operator.index.name})"
        )
    if isinstance(operator, CTEScan):
        return f"CTEScan({operator.name})"
    if isinstance(operator, RowsSource):
        return "Values"
    if isinstance(operator, Filter):
        return "Filter"
    if isinstance(operator, Project):
        return f"Project({', '.join(operator.output_names)})"
    if isinstance(operator, NestedLoopJoin):
        kind = "CROSS" if operator.condition is None else operator.kind
        return f"NestedLoopJoin({kind})"
    if isinstance(operator, HashJoin):
        return f"HashJoin({len(operator.left_keys)} key(s))"
    if isinstance(operator, UnionAll):
        return "UnionAll"
    if isinstance(operator, Distinct):
        return "Distinct"
    if isinstance(operator, SetDifference):
        return "Except"
    if isinstance(operator, SetIntersection):
        return "Intersect"
    if isinstance(operator, Aggregate):
        return (
            f"Aggregate({len(operator.group_exprs)} group key(s), "
            f"{len(operator.aggregates)} aggregate(s))"
        )
    if isinstance(operator, Sort):
        return f"Sort({len(operator.keys)} key(s))"
    if isinstance(operator, Limit):
        return "Limit"
    if isinstance(operator, SubplanOperator):
        return "Subplan"
    return type(operator).__name__


def _children(operator: Operator) -> List[Operator]:
    if isinstance(operator, SubplanOperator):
        return [operator.subquery.plan.root]
    if isinstance(operator, UnionAll):
        return list(operator.children)
    children: List[Operator] = []
    for attribute in ("child", "left", "right"):
        value = getattr(operator, attribute, None)
        if isinstance(value, Operator):
            children.append(value)
    return children


def _explain_operator(operator: Operator, depth: int) -> List[str]:
    lines = ["  " * depth + "-> " + _label(operator)]
    for child in _children(operator):
        lines.extend(_explain_operator(child, depth + 1))
    return lines
