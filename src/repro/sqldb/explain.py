"""Render physical plans as indented text (the ``EXPLAIN`` statement).

Useful for verifying the planner's access-path decisions — e.g. that the
recursive multi-level expand probes the ``link`` table through its hash
index instead of rescanning it per fixpoint iteration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sqldb.executor import (
    Aggregate,
    CTEScan,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    IndexNestedLoopJoin,
    Limit,
    MultiKeyIndexLookup,
    NestedLoopJoin,
    Operator,
    Project,
    RowsSource,
    SeqScan,
    SetDifference,
    SetIntersection,
    Sort,
    UnionAll,
)
from repro.sqldb.planner import Plan, PlannedCTE, SubplanOperator


def explain_plan(plan: Plan) -> List[str]:
    """Flatten a plan (CTE materialisations first, then the root tree)."""
    lines: List[str] = []
    for cte in plan.ctes:
        lines.extend(_explain_cte(cte))
    lines.extend(_explain_operator(plan.root, 0))
    return lines


def explain_analyze_plan(plan: Plan, env, mode: str = "row") -> List[str]:
    """Execute *plan* in *env* and render it with runtime statistics.

    Every operator's ``rows`` generator is wrapped with a per-instance
    counting shim before execution, so each rendered line carries the
    operator's invocation count (``loops``) and the total rows it
    produced; an operator the execution never pulled from is marked
    ``(never executed)``.  The plan must be freshly built — EXPLAIN
    ANALYZE statements bypass the plan cache, so the instrumented
    operator instances are discarded with the plan.

    With ``mode="columnar"`` and a vectorizable plan, the batch pipeline
    runs instead and every line carries per-operator batch/row counts; a
    non-vectorizable plan falls back to the row rendering, labelled with
    the fallback reason.  The trailing ``Executor:`` line always states
    which executor actually ran.
    """
    from repro.sqldb.recursive import execute_plan
    from repro.sqldb.vec_executor import vectorized_root

    executor_line = "Executor: row"
    if mode == "columnar":
        root, reason = vectorized_root(plan)
        if root is None:
            executor_line = f"Executor: row (columnar fallback: {reason})"
        else:
            return _explain_analyze_columnar(root, env)

    stats = {}
    for operator in _all_operators(plan):
        if id(operator) in stats:
            continue
        record = stats[id(operator)] = {"loops": 0, "rows": 0}
        original = operator.rows

        def counting_rows(env, _original=original, _record=record):
            _record["loops"] += 1
            for row in _original(env):
                _record["rows"] += 1
                yield row

        operator.rows = counting_rows

    rows = execute_plan(plan, env)

    def annotate(operator: Operator) -> str:
        estimate = _estimate(operator)
        prefix = "" if estimate is None else f"est_rows={estimate} "
        record = stats.get(id(operator))
        if record is None or record["loops"] == 0:
            return f" ({prefix}never executed)"
        return f" ({prefix}loops={record['loops']} rows={record['rows']})"

    lines: List[str] = []
    for cte in plan.ctes:
        lines.extend(_explain_cte(cte, annotate))
    lines.extend(_explain_operator(plan.root, 0, annotate))
    lines.append(f"Execution: {len(rows)} row(s) returned")
    lines.append(executor_line)
    for name in ("rows_scanned", "index_probes", "subquery_executions"):
        lines.append(f"  {name}: {env.counters.get(name, 0)}")
    return lines


def _explain_analyze_columnar(root, env) -> List[str]:
    """Run the batch pipeline with per-operator counting shims."""
    from repro.sqldb.vec_executor import vec_execute

    stats = {}
    for operator in _vec_operators(root):
        if id(operator) in stats:
            continue
        record = stats[id(operator)] = {"loops": 0, "batches": 0, "rows": 0}
        original = operator.batches

        def counting_batches(env, _original=original, _record=record):
            _record["loops"] += 1
            for batch in _original(env):
                _record["batches"] += 1
                _record["rows"] += batch.length
                yield batch

        operator.batches = counting_batches

    rows = vec_execute(root, env)

    def annotate(operator) -> str:
        record = stats.get(id(operator))
        if record is None or record["loops"] == 0:
            return " (never executed)"
        return f" (batches={record['batches']} rows={record['rows']})"

    lines = _explain_vec_operator(root, 0, annotate)
    lines.append(f"Execution: {len(rows)} row(s) returned")
    lines.append("Executor: columnar")
    for name in (
        "rows_scanned",
        "index_probes",
        "subquery_executions",
        "vec_batches",
        "vec_rows",
    ):
        lines.append(f"  {name}: {env.counters.get(name, 0)}")
    return lines


def _vec_operators(root) -> List[object]:
    """Every vectorized operator instance under *root*."""
    operators: List[object] = []

    def walk(operator) -> None:
        operators.append(operator)
        for child in _vec_children(operator):
            walk(child)

    walk(root)
    return operators


def _vec_children(operator) -> List[object]:
    from repro.sqldb.vec_executor import VecOperator, VecUnionAll

    if isinstance(operator, VecUnionAll):
        return list(operator.children)
    children: List[object] = []
    for attribute in ("child", "left", "right"):
        value = getattr(operator, attribute, None)
        if isinstance(value, VecOperator):
            children.append(value)
    return children


def _vec_label(operator) -> str:
    from repro.sqldb import vec_executor as vec

    if isinstance(operator, vec.VecSeqScan):
        return f"VecSeqScan({operator.storage.schema.name})"
    if isinstance(operator, vec.VecRowsSource):
        return "VecValues"
    if isinstance(operator, vec.VecFilter):
        return "VecFilter"
    if isinstance(operator, vec.VecProject):
        return f"VecProject({', '.join(operator.output_names)})"
    if isinstance(operator, vec.VecHashJoin):
        return f"VecHashJoin({len(operator.left_kernels)} key(s))"
    if isinstance(operator, vec.VecAggregate):
        return (
            f"VecAggregate({len(operator.group_kernels)} group key(s), "
            f"{len(operator.aggregates)} aggregate(s))"
        )
    if isinstance(operator, vec.VecSort):
        return f"VecSort({len(operator.keys)} key(s))"
    if isinstance(operator, vec.VecDistinct):
        return "VecDistinct"
    if isinstance(operator, vec.VecUnionAll):
        return "VecUnionAll"
    if isinstance(operator, vec.VecLimit):
        return "VecLimit"
    if isinstance(operator, vec.VecOffset):
        return "VecOffset"
    return type(operator).__name__


def _explain_vec_operator(operator, depth: int, annotate) -> List[str]:
    lines = ["  " * depth + "-> " + _vec_label(operator) + annotate(operator)]
    for child in _vec_children(operator):
        lines.extend(_explain_vec_operator(child, depth + 1, annotate))
    return lines


def plan_operators(plan: Plan) -> List[Operator]:
    """Every operator instance in *plan*, CTE branches included.  Public
    so the static analyzer (:mod:`repro.analysis`) can inspect access
    paths without executing anything."""
    return _all_operators(plan)


def _all_operators(plan: Plan) -> List[Operator]:
    """Every operator instance in the plan, CTE branches included."""
    operators: List[Operator] = []

    def walk(operator: Operator) -> None:
        operators.append(operator)
        for child in _children(operator):
            walk(child)

    for cte in plan.ctes:
        for branch in list(cte.seed_plans) + list(cte.recursive_plans):
            walk(branch)
    walk(plan.root)
    return operators


def _estimate(operator: Operator) -> Optional[int]:
    """Planner cardinality estimate, rounded for display (None when the
    plan was built without statistics — plain rule-based plans render
    exactly as before)."""
    est = getattr(operator, "est_rows", None)
    if est is None:
        return None
    return max(0, int(round(est)))


def _no_annotation(operator: Operator) -> str:
    estimate = _estimate(operator)
    if estimate is None:
        return ""
    return f" (est_rows={estimate})"


def _explain_cte(cte: PlannedCTE, annotate=_no_annotation) -> List[str]:
    kind = "recursive cte" if cte.recursive else "cte"
    dedup = "UNION" if cte.distinct else "UNION ALL"
    lines = [f"materialize {kind} {cte.name} ({dedup})"]
    for branch in cte.seed_plans:
        lines.append("  seed branch:")
        lines.extend(_explain_operator(branch, 2, annotate))
    for branch in cte.recursive_plans:
        lines.append("  recursive branch (joins the delta):")
        lines.extend(_explain_operator(branch, 2, annotate))
    return lines


def _label(operator: Operator) -> str:
    if isinstance(operator, SeqScan):
        return f"SeqScan({operator.storage.schema.name})"
    if isinstance(operator, IndexLookup):
        return (
            f"IndexLookup({operator.storage.schema.name} "
            f"via {operator.index.name})"
        )
    if isinstance(operator, MultiKeyIndexLookup):
        return (
            f"MultiKeyIndexLookup({operator.storage.schema.name} "
            f"via {operator.index.name}, {len(operator.key_fns)} keys)"
        )
    if isinstance(operator, IndexNestedLoopJoin):
        return (
            f"IndexNestedLoopJoin({operator.kind} probe "
            f"{operator.storage.schema.name} via {operator.index.name})"
        )
    if isinstance(operator, CTEScan):
        return f"CTEScan({operator.name})"
    if isinstance(operator, RowsSource):
        return "Values"
    if isinstance(operator, Filter):
        return "Filter"
    if isinstance(operator, Project):
        return f"Project({', '.join(operator.output_names)})"
    if isinstance(operator, NestedLoopJoin):
        kind = "CROSS" if operator.condition is None else operator.kind
        return f"NestedLoopJoin({kind})"
    if isinstance(operator, HashJoin):
        return f"HashJoin({len(operator.left_keys)} key(s))"
    if isinstance(operator, UnionAll):
        return "UnionAll"
    if isinstance(operator, Distinct):
        return "Distinct"
    if isinstance(operator, SetDifference):
        return "Except"
    if isinstance(operator, SetIntersection):
        return "Intersect"
    if isinstance(operator, Aggregate):
        return (
            f"Aggregate({len(operator.group_exprs)} group key(s), "
            f"{len(operator.aggregates)} aggregate(s))"
        )
    if isinstance(operator, Sort):
        return f"Sort({len(operator.keys)} key(s))"
    if isinstance(operator, Limit):
        return "Limit"
    if isinstance(operator, SubplanOperator):
        return "Subplan"
    return type(operator).__name__


def _children(operator: Operator) -> List[Operator]:
    if isinstance(operator, SubplanOperator):
        return [operator.subquery.plan.root]
    if isinstance(operator, UnionAll):
        return list(operator.children)
    children: List[Operator] = []
    for attribute in ("child", "left", "right"):
        value = getattr(operator, attribute, None)
        if isinstance(value, Operator):
            children.append(value)
    return children


def _explain_operator(
    operator: Operator, depth: int, annotate=_no_annotation
) -> List[str]:
    lines = ["  " * depth + "-> " + _label(operator) + annotate(operator)]
    for child in _children(operator):
        lines.extend(_explain_operator(child, depth + 1, annotate))
    return lines
