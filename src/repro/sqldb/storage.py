"""Row storage: an in-memory heap of tuples plus hash indexes.

Rows are stored as Python tuples in insertion order.  Hash indexes map a
key (tuple of column values) to the list of row ids holding that key; they
accelerate the equality lookups that dominate the paper's navigational
workload (``WHERE link.left = ?``) and the engine's hash joins.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, IntegrityError
from repro.sqldb.schema import TableSchema
from repro.sqldb.types import is_null

Row = Tuple[object, ...]


class HashIndex:
    """An equality index over one or more columns of a heap.

    NULL keys are never indexed (SQL equality with NULL is UNKNOWN, so an
    equality probe can never match them anyway).
    """

    def __init__(self, name: str, column_positions: Sequence[int], unique: bool = False) -> None:
        self.name = name
        self.column_positions = tuple(column_positions)
        self.unique = unique
        self._buckets: Dict[Tuple[object, ...], List[int]] = {}

    def key_for(self, row: Row) -> Optional[Tuple[object, ...]]:
        key = tuple(row[position] for position in self.column_positions)
        if any(is_null(part) for part in key):
            return None
        return key

    def add(self, row_id: int, row: Row) -> None:
        key = self.key_for(row)
        if key is None:
            return
        bucket = self._buckets.setdefault(key, [])
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated by key {key!r}"
            )
        bucket.append(row_id)

    def remove(self, row_id: int, row: Row) -> None:
        key = self.key_for(row)
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket and row_id in bucket:
            bucket.remove(row_id)
            if not bucket:
                del self._buckets[key]

    def probe(self, key: Tuple[object, ...]) -> List[int]:
        """Return the row ids whose indexed columns equal *key*."""
        if any(is_null(part) for part in key):
            return []
        return list(self._buckets.get(key, ()))


class TableStorage:
    """Heap storage for one table, with optional hash indexes.

    Row ids are stable for the lifetime of a row; deleted slots hold None
    and are skipped on scan.  This keeps index maintenance O(1) per
    operation without compaction machinery the workload does not need.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: List[Optional[Row]] = []
        self._live_count = 0
        self._indexes: Dict[str, HashIndex] = {}
        #: Undo log for the enclosing transaction; None when not enlisted.
        self._undo: Optional[List[tuple]] = None
        #: Redo journal sink (the database's WAL hook): called as
        #: ``journal(op, row_id, row)`` after every successful mutation.
        #: Detached (like ``_undo``) while a rollback replays inverses —
        #: an abort is logged as one ABORT record, not as compensation.
        self._journal = None
        #: Mutation counter: bumped by every insert/update/delete/restore.
        #: Derived caches (the columnar chunk cache) key on it to detect
        #: staleness without hooking every mutation path individually.
        self.version = 0
        #: MVCC version store (``repro.sqldb.mvcc.VersionStore``) when the
        #: owning database runs with snapshot reads; None otherwise.  The
        #: committed pre-image of every write is captured here *as part of
        #: the write*, so snapshot readers never see dirty heap values.
        self.mvcc = None
        #: Database dirty-write tracker: called as ``hook(storage, row_id)``
        #: after every mutation so the enclosing transaction (or autocommit
        #: statement scope) knows which slots to version-install at commit.
        #: Detached together with ``_journal`` during rollback replay.
        self._mvcc_hook = None
        pk_position = schema.primary_key_index()
        if pk_position is not None:
            self.create_index(f"{schema.name}_pk", [schema.columns[pk_position].name], unique=True)

    # -- rows --------------------------------------------------------------

    def __len__(self) -> int:
        return self._live_count

    def insert(self, row: Sequence[object]) -> int:
        """Validate and insert *row*; return its row id."""
        if len(row) != self.schema.arity:
            raise IntegrityError(
                f"table {self.schema.name!r} expects {self.schema.arity} values, "
                f"got {len(row)}"
            )
        stored = tuple(row)
        for column, value in zip(self.schema.columns, stored):
            if column.not_null and is_null(value):
                raise IntegrityError(
                    f"column {self.schema.name}.{column.name} is NOT NULL"
                )
        row_id = len(self._rows)
        # Index maintenance first so a unique violation leaves no trace.
        for index in self._indexes.values():
            index.add(row_id, stored)
        self._rows.append(stored)
        self._live_count += 1
        self.version += 1
        if self._undo is not None:
            self._undo.append(("insert", row_id))
        if self._journal is not None:
            self._journal("insert", row_id, stored)
        self._notify_mvcc(row_id, None)
        return row_id

    def insert_at(self, row_id: int, row: Sequence[object]) -> None:
        """Re-materialise a row in a specific slot (recovery redo path).

        Pads the heap with dead slots up to *row_id*: transactions whose
        inserts were discarded (aborted, or in flight at a crash) consumed
        row ids too, and replay must reproduce the exact slot layout so
        the row ids inside later WAL records keep resolving correctly.
        Skips constraint validation — the row passed it when the record
        was originally logged — but maintains the indexes.
        """
        while len(self._rows) <= row_id:
            self._rows.append(None)
        if self._rows[row_id] is not None:
            raise IntegrityError(
                f"cannot replay insert into occupied slot {row_id} of "
                f"{self.schema.name!r}"
            )
        stored = tuple(row)
        for index in self._indexes.values():
            index.add(row_id, stored)
        self._rows[row_id] = stored
        self._live_count += 1
        self.version += 1
        self._notify_mvcc(row_id, None)

    def pad_slots(self, total_slots: int) -> None:
        """Extend the heap with dead slots up to *total_slots* (restoring
        a checkpoint's row-id space, trailing deleted rows included)."""
        while len(self._rows) < total_slots:
            self._rows.append(None)

    def delete(self, row_id: int) -> None:
        row = self._rows[row_id]
        if row is None:
            return
        for index in self._indexes.values():
            index.remove(row_id, row)
        self._rows[row_id] = None
        self._live_count -= 1
        self.version += 1
        if self._undo is not None:
            self._undo.append(("delete", row_id, row))
        if self._journal is not None:
            self._journal("delete", row_id, row)
        self._notify_mvcc(row_id, row)

    def update(self, row_id: int, new_row: Sequence[object]) -> None:
        old_row = self._rows[row_id]
        if old_row is None:
            raise IntegrityError(f"row {row_id} of {self.schema.name!r} is deleted")
        stored = tuple(new_row)
        for column, value in zip(self.schema.columns, stored):
            if column.not_null and is_null(value):
                raise IntegrityError(
                    f"column {self.schema.name}.{column.name} is NOT NULL"
                )
        for index in self._indexes.values():
            index.remove(row_id, old_row)
        for index in self._indexes.values():
            index.add(row_id, stored)
        self._rows[row_id] = stored
        self.version += 1
        if self._undo is not None:
            self._undo.append(("update", row_id, old_row))
        if self._journal is not None:
            self._journal("update", row_id, stored)
        self._notify_mvcc(row_id, old_row)

    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Yield (row_id, row) for every live row in insertion order."""
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id, row

    def rows(self) -> Iterator[Row]:
        """Yield every live row (without row ids)."""
        for __, row in self.scan():
            yield row

    def fetch(self, row_id: int) -> Row:
        row = self._rows[row_id]
        if row is None:
            raise IntegrityError(f"row {row_id} of {self.schema.name!r} is deleted")
        return row

    # -- MVCC snapshot reads ---------------------------------------------------

    def _notify_mvcc(self, row_id: int, old_row: Optional[Row]) -> None:
        """Version bookkeeping for one successful heap write: capture the
        committed pre-image (first write to the slot) and report the dirty
        slot to the owning database's transaction scope."""
        if self.mvcc is not None:
            self.mvcc.record_write(row_id, old_row)
        if self._mvcc_hook is not None:
            self._mvcc_hook(self, row_id)

    def snapshot_rows(self, snapshot) -> Iterator[Row]:
        """Every row visible to *snapshot*, in slot order, lock-free."""
        store = self.mvcc
        if store is None or not store.chains:
            yield from self.rows()
            return
        chains = store.chains
        stamp = snapshot.stamp
        for row_id, live in enumerate(self._rows):
            chain = chains.get(row_id)
            if chain is None:
                if live is not None:
                    yield live
                continue
            version = chain.visible(stamp)
            if version is not None:
                yield version.row

    def snapshot_fetch(self, row_id: int, snapshot) -> Optional[Row]:
        """The row *snapshot* sees in slot *row_id*, or None."""
        live = self._rows[row_id] if row_id < len(self._rows) else None
        store = self.mvcc
        if store is None:
            return live
        return store.visible_row(row_id, live, snapshot.stamp)

    def snapshot_probe(self, index: HashIndex, key: Tuple[object, ...], snapshot) -> Iterator[Row]:
        """Index-equality probe evaluated under *snapshot* visibility.

        The hash index reflects the *current* heap, which may differ from
        the snapshot: dirty/newer rows must be filtered out (re-verify the
        key against the visible version) and rows whose current value left
        the key — but whose snapshot version still matches — must be found
        through a supplemental pass over the chained slots.  GC keeps that
        chain set tiny, so the common chainless case is the plain probe.
        """
        store = self.mvcc
        if store is None or not store.chains:
            for row_id in index.probe(key):
                yield self._rows[row_id]
            return
        matched: List[Tuple[int, Row]] = []
        seen = set()
        for row_id in index.probe(key):
            seen.add(row_id)
            row = self.snapshot_fetch(row_id, snapshot)
            if row is not None and index.key_for(row) == key:
                matched.append((row_id, row))
        for row_id in store.chains:
            if row_id in seen:
                continue
            row = self.snapshot_fetch(row_id, snapshot)
            if row is not None and index.key_for(row) == key:
                matched.append((row_id, row))
        matched.sort(key=lambda pair: pair[0])
        for __, row in matched:
            yield row

    # -- transactions ---------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._undo is not None

    def attach_undo(self, log: List[tuple]) -> None:
        """Point mutation logging at *log* (owned by one transaction).

        The database re-attaches the executing transaction's log before
        every DML statement, so concurrent sessions each collect their own
        inverses even when they touch the same table — strict 2PL keeps
        their row sets disjoint, which is what makes per-transaction
        replay safe.
        """
        self._undo = log

    def detach_undo(self) -> None:
        """Stop logging mutations (autocommit, or after commit)."""
        self._undo = None

    def begin_undo(self) -> None:
        """Enlist this table in a transaction: start recording inverses."""
        if self._undo is None:
            self._undo = []

    def commit_undo(self) -> None:
        """Forget the undo log (changes become permanent)."""
        self._undo = None

    def rollback_undo(self) -> None:
        """Replay the attached undo log backwards, restoring the
        pre-transaction state (rows and indexes)."""
        entries = self._undo
        self._undo = None  # replay must not log
        self.rollback_entries(entries or [])

    def rollback_entries(self, entries: List[tuple]) -> None:
        """Replay *entries* backwards with logging detached.

        Used by per-session transactions: the rolled-back transaction's
        log is replayed without disturbing whichever log happens to be
        attached (it is re-attached by the next statement anyway).
        """
        attached = self._undo
        journal = self._journal
        store = self.mvcc
        hook = self._mvcc_hook
        self._undo = None  # replay must not log
        self._journal = None  # the WAL sees one ABORT, not compensation ops
        # Inverse replay restores the committed state the chains already
        # describe — re-capturing "pre-images" of the compensation writes
        # would corrupt the pending counts, so MVCC detaches too.
        self.mvcc = None
        self._mvcc_hook = None
        try:
            for entry in reversed(entries):
                kind = entry[0]
                if kind == "insert":
                    self.delete(entry[1])
                elif kind == "delete":
                    self._restore(entry[1], entry[2])
                else:
                    self.update(entry[1], entry[2])
        finally:
            self._undo = None if attached is entries else attached
            self._journal = journal
            self.mvcc = store
            self._mvcc_hook = hook

    def _restore(self, row_id: int, row: Row) -> None:
        """Re-materialise a deleted row in its original slot."""
        if self._rows[row_id] is not None:
            raise IntegrityError(
                f"cannot restore row {row_id} of {self.schema.name!r}: "
                f"slot is occupied"
            )
        for index in self._indexes.values():
            index.add(row_id, row)
        self._rows[row_id] = row
        self._live_count += 1
        self.version += 1

    # -- indexes -------------------------------------------------------------

    def create_index(self, name: str, column_names: Sequence[str], unique: bool = False) -> None:
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        positions = [self.schema.column_index(column) for column in column_names]
        index = HashIndex(name, positions, unique=unique)
        for row_id, row in self.scan():
            index.add(row_id, row)
        self._indexes[key] = index

    def find_index(self, column_names: Sequence[str]) -> Optional[HashIndex]:
        """Return an index whose key is exactly *column_names*, if any."""
        wanted = tuple(self.schema.column_index(column) for column in column_names)
        for index in self._indexes.values():
            if index.column_positions == wanted:
                return index
        return None

    def index_names(self) -> List[str]:
        return [index.name for index in self._indexes.values()]
