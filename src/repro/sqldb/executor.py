"""Physical operators and the execution environment.

The engine uses the classic iterator ("volcano") model: every operator
exposes ``rows(env)`` yielding plain Python tuples.  Compiled expressions
are closures ``(row, env) -> value`` produced by
:mod:`repro.sqldb.expressions`; operators are therefore independent of the
AST and can be unit-tested with hand-written closures.

:class:`ExecutionEnv` carries everything that varies per execution:
statement parameters, the function registry, materialised CTE frames
(rebound per fixpoint iteration by :mod:`repro.sqldb.recursive`), the
outer-row stack used by correlated subqueries, and the uncorrelated
subquery cache with its invalidation epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sqldb.functions import Aggregator, FunctionRegistry
from repro.sqldb.storage import TableStorage
from repro.sqldb.types import is_null

Row = Tuple[Any, ...]
ExprFn = Callable[[Row, "ExecutionEnv"], Any]


@dataclass
class CTEFrame:
    """A materialised common table expression: column names plus rows."""

    columns: List[str]
    rows: List[Row] = field(default_factory=list)


class ExecutionEnv:
    """Per-execution state threaded through every operator and expression."""

    def __init__(
        self,
        params: Sequence[Any] = (),
        functions: Optional[FunctionRegistry] = None,
        recursion_limit: int = 1_000_000,
    ) -> None:
        self.params = tuple(params)
        self.functions = functions if functions is not None else FunctionRegistry()
        self.recursion_limit = recursion_limit
        self.cte_frames: Dict[str, CTEFrame] = {}
        self.outer_rows: List[Row] = []
        self.cache_epoch = 0
        self.subquery_cache: Dict[int, Tuple[int, Any]] = {}
        self.counters: Dict[str, int] = {
            "rows_scanned": 0,
            "subquery_executions": 0,
            "index_probes": 0,
            # Columnar executor: batches emitted / rows carried by them.
            # Stay 0 for row-mode executions.
            "vec_batches": 0,
            "vec_rows": 0,
        }
        #: When False, uncorrelated subqueries are re-evaluated every time —
        #: the "no intelligent optimizer" ablation (paper Section 5.3.1).
        self.enable_subquery_cache = True
        #: When False, recursive CTEs are evaluated with the naive fixpoint
        #: (the whole accumulated set re-joined each round) instead of the
        #: semi-naive delta algorithm — an engine ablation.
        self.enable_seminaive = True
        #: Optional :class:`repro.obs.TraceRecorder` threaded down from
        #: the owning :class:`~repro.sqldb.database.Database` (None keeps
        #: execution untraced).
        self.recorder = None
        #: Optional :class:`repro.sqldb.mvcc.Snapshot`: when set, base-table
        #: access paths evaluate version visibility at this stamp instead of
        #: reading the live heap.  Threaded through the environment (not the
        #: plan) because plans are cached and shared across transactions.
        self.snapshot = None

    def bind_cte(self, name: str, frame: CTEFrame) -> None:
        """(Re)bind a CTE name; invalidates the uncorrelated-subquery cache
        because cached results may depend on the old binding."""
        self.cte_frames[name.lower()] = frame
        self.cache_epoch += 1

    def cte(self, name: str) -> CTEFrame:
        try:
            return self.cte_frames[name.lower()]
        except KeyError:
            raise ExecutionError(f"CTE {name!r} is not materialised") from None

    def parameter(self, index: int) -> Any:
        if index >= len(self.params):
            raise ExecutionError(
                f"statement has a ?-parameter at position {index} but only "
                f"{len(self.params)} values were bound"
            )
        return self.params[index]


class Operator:
    """Base class for physical operators.

    ``output_names`` lists the result column names in slot order; they
    drive result-set metadata and star expansion.
    """

    output_names: List[str] = []

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        raise NotImplementedError


class SeqScan(Operator):
    """Full scan of a base table."""

    def __init__(self, storage: TableStorage) -> None:
        self.storage = storage
        self.output_names = list(storage.schema.column_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        snapshot = env.snapshot
        source = (
            self.storage.rows()
            if snapshot is None
            else self.storage.snapshot_rows(snapshot)
        )
        for row in source:
            env.counters["rows_scanned"] += 1
            yield row


class IndexLookup(Operator):
    """Equality probe into a hash index of a base table.

    ``key_fns`` compute the probe key; they may reference outer rows (for
    correlated lookups) but never the scanned table itself.
    """

    def __init__(self, storage: TableStorage, index, key_fns: List[ExprFn]) -> None:
        self.storage = storage
        self.index = index
        self.key_fns = key_fns
        self.output_names = list(storage.schema.column_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        key = tuple(fn((), env) for fn in self.key_fns)
        env.counters["index_probes"] += 1
        snapshot = env.snapshot
        if snapshot is not None:
            for row in self.storage.snapshot_probe(self.index, key, snapshot):
                env.counters["rows_scanned"] += 1
                yield row
            return
        for row_id in self.index.probe(key):
            env.counters["rows_scanned"] += 1
            yield self.storage.fetch(row_id)


class MultiKeyIndexLookup(Operator):
    """One equality probe per key of an IN-list (``col IN (?, ?, ?)``).

    The access path behind the level-at-a-time frontier fetch: all
    children of N parents in one indexed statement instead of N scans.
    Keys are deduplicated before probing — IN is a predicate, so a row
    must appear once even when the list names its key twice — and NULL
    keys are skipped (equality with NULL can never match; the residual
    filter above this operator owns the three-valued semantics).
    """

    def __init__(self, storage: TableStorage, index, key_fns: List[ExprFn]) -> None:
        self.storage = storage
        self.index = index
        self.key_fns = key_fns
        self.output_names = list(storage.schema.column_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        seen = set()
        snapshot = env.snapshot
        for fn in self.key_fns:
            value = fn((), env)
            if is_null(value):
                continue
            key = (value,)
            if key in seen:
                continue
            seen.add(key)
            env.counters["index_probes"] += 1
            if snapshot is not None:
                for row in self.storage.snapshot_probe(self.index, key, snapshot):
                    env.counters["rows_scanned"] += 1
                    yield row
                continue
            for row_id in self.index.probe(key):
                env.counters["rows_scanned"] += 1
                yield self.storage.fetch(row_id)


class CTEScan(Operator):
    """Scan of a materialised CTE frame looked up by name at runtime.

    The late lookup is what lets the recursive evaluator rebind the name to
    the per-iteration delta without re-planning.
    """

    def __init__(self, name: str, columns: List[str]) -> None:
        self.name = name
        self.output_names = list(columns)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        frame = env.cte(self.name)
        for row in frame.rows:
            env.counters["rows_scanned"] += 1
            yield row


class RowsSource(Operator):
    """An operator over a pre-materialised list of rows (derived tables,
    VALUES lists, test fixtures)."""

    def __init__(self, columns: List[str], rows: List[Row]) -> None:
        self.output_names = list(columns)
        self._rows = rows

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        return iter(self._rows)


class Filter(Operator):
    """Keep rows for which the predicate is TRUE (not FALSE, not UNKNOWN)."""

    def __init__(self, child: Operator, predicate: ExprFn) -> None:
        self.child = child
        self.predicate = predicate
        self.output_names = list(child.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.rows(env):
            if predicate(row, env) is True:
                yield row


class Project(Operator):
    """Compute the select list."""

    def __init__(self, child: Operator, exprs: List[ExprFn], names: List[str]) -> None:
        self.child = child
        self.exprs = exprs
        self.output_names = list(names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        exprs = self.exprs
        for row in self.child.rows(env):
            yield tuple(fn(row, env) for fn in exprs)


class NestedLoopJoin(Operator):
    """Tuple-at-a-time join supporting INNER, LEFT and CROSS kinds.

    The right child is materialised once (it may be an arbitrary subplan);
    the full ON condition is evaluated on concatenated rows.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Optional[ExprFn],
        kind: str = "INNER",
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.output_names = list(left.output_names) + list(right.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        right_rows = list(self.right.rows(env))
        pad = (None,) * len(self.right.output_names)
        for left_row in self.left.rows(env):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if self.condition is None or self.condition(combined, env) is True:
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + pad


class HashJoin(Operator):
    """Equi-join: build a hash table on the right child, probe with left.

    ``left_keys``/``right_keys`` are closures evaluated against the child
    rows *alone* (right keys see the right row padded into the combined
    slot layout is unnecessary — they are compiled against the right scope
    only).  A residual condition, if any, is checked on combined rows.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: List[ExprFn],
        right_keys: List[ExprFn],
        residual: Optional[ExprFn] = None,
        kind: str = "INNER",
    ) -> None:
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.kind = kind
        self.output_names = list(left.output_names) + list(right.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        table: Dict[Tuple[Any, ...], List[Row]] = {}
        for right_row in self.right.rows(env):
            key = tuple(fn(right_row, env) for fn in self.right_keys)
            if any(is_null(part) for part in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(right_row)
        pad = (None,) * len(self.right.output_names)
        for left_row in self.left.rows(env):
            key = tuple(fn(left_row, env) for fn in self.left_keys)
            matched = False
            if not any(is_null(part) for part in key):
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if self.residual is None or self.residual(combined, env) is True:
                        matched = True
                        yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + pad


class IndexNestedLoopJoin(Operator):
    """Join probing a base-table hash index once per left row.

    This is the operator that makes the paper-scale simulations feasible:
    the navigational child fetch and the recursive branch both join the
    working set against ``link`` (and then against ``assy``/``comp``) on
    indexed equality keys.  ``left_key_fns`` are compiled against the left
    scope; the residual condition (the full ON clause) is verified on the
    combined row, so a partially-matching index never loses correctness.
    """

    def __init__(
        self,
        left: Operator,
        storage: TableStorage,
        index,
        left_key_fns: List[ExprFn],
        residual: Optional[ExprFn],
        kind: str = "INNER",
    ) -> None:
        self.left = left
        self.storage = storage
        self.index = index
        self.left_key_fns = left_key_fns
        self.residual = residual
        self.kind = kind
        self.output_names = list(left.output_names) + list(
            storage.schema.column_names
        )

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        pad = (None,) * self.storage.schema.arity
        snapshot = env.snapshot
        for left_row in self.left.rows(env):
            key = tuple(fn(left_row, env) for fn in self.left_key_fns)
            env.counters["index_probes"] += 1
            matched = False
            if snapshot is not None:
                for right_row in self.storage.snapshot_probe(
                    self.index, key, snapshot
                ):
                    env.counters["rows_scanned"] += 1
                    combined = left_row + right_row
                    if self.residual is None or self.residual(combined, env) is True:
                        matched = True
                        yield combined
            else:
                for row_id in self.index.probe(key):
                    env.counters["rows_scanned"] += 1
                    combined = left_row + self.storage.fetch(row_id)
                    if self.residual is None or self.residual(combined, env) is True:
                        matched = True
                        yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + pad


class UnionAll(Operator):
    """Concatenate children (arity checked at plan time)."""

    def __init__(self, children: List[Operator]) -> None:
        self.children = children
        self.output_names = list(children[0].output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        for child in self.children:
            for row in child.rows(env):
                yield row


class Distinct(Operator):
    """Remove duplicate rows (used for UNION and SELECT DISTINCT)."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.output_names = list(child.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        seen = set()
        for row in self.child.rows(env):
            if row not in seen:
                seen.add(row)
                yield row


class SetDifference(Operator):
    """EXCEPT (distinct) — rows of left not present in right."""

    def __init__(self, left: Operator, right: Operator) -> None:
        self.left = left
        self.right = right
        self.output_names = list(left.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        exclude = set(self.right.rows(env))
        seen = set()
        for row in self.left.rows(env):
            if row not in exclude and row not in seen:
                seen.add(row)
                yield row


class SetIntersection(Operator):
    """INTERSECT (distinct) — rows occurring in both children."""

    def __init__(self, left: Operator, right: Operator) -> None:
        self.left = left
        self.right = right
        self.output_names = list(left.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        keep = set(self.right.rows(env))
        seen = set()
        for row in self.left.rows(env):
            if row in keep and row not in seen:
                seen.add(row)
                yield row


@dataclass
class AggregateSpec:
    """One aggregate computation: function name, input closure, flags."""

    name: str
    argument: Optional[ExprFn]
    distinct: bool = False
    star: bool = False

    def new_aggregator(self) -> Aggregator:
        return Aggregator(self.name, distinct=self.distinct, star=self.star)


class Aggregate(Operator):
    """Hash aggregation.

    Output rows are ``group key values + aggregate values``; the planner
    compiles the select list and HAVING against that synthetic layout.
    With no GROUP BY there is exactly one (possibly empty) group, matching
    SQL's scalar-aggregate semantics.
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: List[ExprFn],
        aggregates: List[AggregateSpec],
        output_names: List[str],
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.aggregates = aggregates
        self.output_names = list(output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        groups: Dict[Tuple[Any, ...], List[Aggregator]] = {}
        order: List[Tuple[Any, ...]] = []
        for row in self.child.rows(env):
            key = tuple(fn(row, env) for fn in self.group_exprs)
            aggregators = groups.get(key)
            if aggregators is None:
                aggregators = [spec.new_aggregator() for spec in self.aggregates]
                groups[key] = aggregators
                order.append(key)
            for spec, aggregator in zip(self.aggregates, aggregators):
                if spec.star:
                    aggregator.add(None)
                else:
                    aggregator.add(spec.argument(row, env))
        if not self.group_exprs and not groups:
            # SELECT COUNT(*) FROM empty_table must yield one row.
            groups[()] = [spec.new_aggregator() for spec in self.aggregates]
            order.append(())
        for key in order:
            yield key + tuple(agg.result() for agg in groups[key])


class Sort(Operator):
    """Stable multi-key sort; NULLs sort last ascending, first descending."""

    def __init__(self, child: Operator, keys: List[Tuple[ExprFn, bool]]) -> None:
        self.child = child
        self.keys = keys  # (closure, descending)
        self.output_names = list(child.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        materialised = list(self.child.rows(env))
        # Stable sort by least-significant key first.
        for key_fn, descending in reversed(self.keys):
            materialised.sort(
                key=lambda row: _null_safe_key(key_fn(row, env)),
                reverse=descending,
            )
        return iter(materialised)


def _null_safe_key(value: Any):
    """Total-order key: NULL greatest, numbers before strings by type rank."""
    if is_null(value):
        return (2, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, str(value))


class Offset(Operator):
    """Skip the first N rows; N comes from a compiled expression."""

    def __init__(self, child: Operator, offset_fn: ExprFn) -> None:
        self.child = child
        self.offset_fn = offset_fn
        self.output_names = list(child.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        skip = self.offset_fn((), env)
        skip = 0 if is_null(skip) else int(skip)
        for position, row in enumerate(self.child.rows(env)):
            if position >= skip:
                yield row


class Limit(Operator):
    """Yield at most N rows; N comes from a compiled expression."""

    def __init__(self, child: Operator, limit_fn: ExprFn) -> None:
        self.child = child
        self.limit_fn = limit_fn
        self.output_names = list(child.output_names)

    def rows(self, env: ExecutionEnv) -> Iterator[Row]:
        remaining = self.limit_fn((), env)
        if is_null(remaining):
            remaining = 0
        remaining = int(remaining)
        if remaining <= 0:
            return
        for row in self.child.rows(env):
            yield row
            remaining -= 1
            if remaining == 0:
                return
