"""Translate SQL ASTs into operator trees.

The planner implements the paper's three access-path decisions:

1. **Index lookups** for ``WHERE col = <independent expr>`` on the driving
   base table of a core (the navigational child fetch), including multi-key
   ``IN``-list probes.
2. **Index nested-loop joins** when the inner side of a join is a base
   table with a hash index on its equi-join key (the recursive branch of
   the multi-level expand, and the ∃structure EXISTS probes).
3. **Hash joins** for remaining equi-joins; nested loops otherwise.

Access-path *choice* runs in one of two regimes:

* **No statistics** (nothing ``ANALYZE``-d yet, or ``planner_mode="rule"``):
  deterministic rules — among matching index probes, unique-index probes
  first, then WHERE-clause order.
* **With statistics** (:mod:`repro.sqldb.stats`): every candidate probe is
  priced against the sequential scan with the stats-backed cost model,
  comma-joined tables are greedily reordered by estimated cardinality
  (deterministic tie-break on the written order), and every operator
  carries an ``est_rows`` estimate that ``EXPLAIN`` renders beside the
  actual counts.

The full WHERE / ON predicates are always kept as residual filters, so a
missed or partial optimisation can never change results — only speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError, ParseError, SQLError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.executor import (
    Aggregate,
    AggregateSpec,
    CTEScan,
    Distinct,
    ExecutionEnv,
    Filter,
    HashJoin,
    IndexLookup,
    IndexNestedLoopJoin,
    Limit,
    MultiKeyIndexLookup,
    NestedLoopJoin,
    Offset,
    Operator,
    Project,
    RowsSource,
    SeqScan,
    SetDifference,
    SetIntersection,
    Sort,
    UnionAll,
)
from repro.sqldb.ast_walk import (
    core_references as _core_references,
    flatten_set_operations as _flatten_set_operations,
    split_conjuncts as _split_conjuncts,
)
from repro.sqldb.expressions import (
    CompileContext,
    Frame,
    Scope,
    SlotRef,
    UnresolvedColumnError,
    compile_expression,
    contains_aggregate,
)
from repro.sqldb.functions import AGGREGATE_NAMES, FunctionRegistry
from repro.sqldb.render import expression_key
from repro.sqldb.schema import Catalog
from repro.sqldb import stats as table_stats_mod


@dataclass
class PlannedCTE:
    """A planned common table expression ready for materialisation.

    For non-recursive CTEs ``seed_plans`` holds a single plan of the whole
    body.  For recursive CTEs the UNION branches are split into seeds and
    recursive branches; ``distinct`` records whether UNION (as opposed to
    UNION ALL) semantics apply across the fixpoint.
    """

    name: str
    columns: List[str]
    seed_plans: List[Operator] = field(default_factory=list)
    recursive_plans: List[Operator] = field(default_factory=list)
    recursive: bool = False
    distinct: bool = True


@dataclass
class Plan:
    """An executable query plan: CTEs to materialise, then the root tree."""

    root: Operator
    output_names: List[str]
    ctes: List[PlannedCTE] = field(default_factory=list)
    #: Base tables the statement reads (views expanded, CTE names
    #: excluded) — the footprint a lock manager covers with table-level
    #: shared locks.  Stored on the plan so the plan-cache fast path can
    #: lock without re-parsing.
    tables: Tuple[str, ...] = ()
    #: Lazily computed vectorization of this plan: ``(vec_root, reason)``
    #: where ``vec_root`` is the columnar operator tree (None when the plan
    #: cannot be vectorized, with ``reason`` saying why).  Filled by
    #: :func:`repro.sqldb.vec_executor.vectorized_root` on first columnar
    #: execution; safe to cache because plans are immutable after build.
    vec_cache: Optional[Tuple[Optional[object], str]] = None


class CompiledSubquery:
    """Runtime wrapper around a planned subquery expression.

    Provides the three access styles expression closures need (EXISTS,
    IN-set, scalar).  Results of *uncorrelated* subqueries are cached in
    the execution environment, keyed by the cache epoch so that CTE
    rebinding (recursive fixpoint iterations) invalidates stale entries.
    The paper relies on exactly this behaviour: "an intelligent query
    optimizer will recognize that the inner clause needs to be evaluated
    only once, as it is an uncorrelated sub-query" (Section 5.3.1).
    """

    def __init__(self, plan: Plan, correlated: bool) -> None:
        self.plan = plan
        self.correlated = correlated

    # -- cache plumbing ----------------------------------------------------

    def _cached(self, env: ExecutionEnv, kind: str):
        if self.correlated or not env.enable_subquery_cache:
            return None
        hit = env.subquery_cache.get((id(self), kind))
        if hit is not None and hit[0] == env.cache_epoch:
            return hit
        return None

    def _store(self, env: ExecutionEnv, kind: str, value) -> None:
        if self.correlated or not env.enable_subquery_cache:
            return
        env.subquery_cache[(id(self), kind)] = (env.cache_epoch, value)

    def _enter(self, row, env: ExecutionEnv) -> Dict[str, object]:
        env.counters["subquery_executions"] += 1
        env.outer_rows.append(row)
        saved: Dict[str, object] = {}
        for cte in self.plan.ctes:
            key = cte.name.lower()
            saved[key] = env.cte_frames.get(key)
        from repro.sqldb.recursive import materialize_cte

        for cte in self.plan.ctes:
            materialize_cte(cte, env)
        return saved

    def _exit(self, env: ExecutionEnv, saved: Dict[str, object]) -> None:
        for key, frame in saved.items():
            if frame is None:
                env.cte_frames.pop(key, None)
            else:
                env.cte_frames[key] = frame
        if saved:
            env.cache_epoch += 1
        env.outer_rows.pop()

    # -- access styles -----------------------------------------------------

    def exists(self, row, env: ExecutionEnv) -> bool:
        """True if the subquery yields at least one row (early exit)."""
        hit = self._cached(env, "exists")
        if hit is not None:
            return hit[1]
        saved = self._enter(row, env)
        try:
            result = False
            for __ in self.plan.root.rows(env):
                result = True
                break
        finally:
            self._exit(env, saved)
        self._store(env, "exists", result)
        return result

    def value_set(self, row, env: ExecutionEnv):
        """Return ``(frozen set of non-NULL first-column values, has_null)``."""
        hit = self._cached(env, "value_set")
        if hit is not None:
            return hit[1]
        if len(self.plan.output_names) != 1:
            raise ExecutionError("IN subquery must return exactly one column")
        saved = self._enter(row, env)
        try:
            values = set()
            has_null = False
            for result_row in self.plan.root.rows(env):
                value = result_row[0]
                if value is None:
                    has_null = True
                else:
                    values.add(value)
        finally:
            self._exit(env, saved)
        payload = (values, has_null)
        self._store(env, "value_set", payload)
        return payload

    def scalar(self, row, env: ExecutionEnv):
        """Return the single value of the subquery (NULL when empty)."""
        hit = self._cached(env, "scalar")
        if hit is not None:
            return hit[1]
        if len(self.plan.output_names) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        saved = self._enter(row, env)
        try:
            value = None
            count = 0
            for result_row in self.plan.root.rows(env):
                count += 1
                if count > 1:
                    raise ExecutionError("scalar subquery returned more than one row")
                value = result_row[0]
        finally:
            self._exit(env, saved)
        self._store(env, "scalar", value)
        return value

    def rows(self, row, env: ExecutionEnv) -> List[tuple]:
        """Materialise all rows (used by derived tables and tests)."""
        saved = self._enter(row, env)
        try:
            return list(self.plan.root.rows(env))
        finally:
            self._exit(env, saved)


class SubplanOperator(Operator):
    """Operator adapter running a full :class:`Plan` (derived tables)."""

    def __init__(self, plan: Plan) -> None:
        self.subquery = CompiledSubquery(plan, correlated=True)
        self.output_names = list(plan.output_names)

    def rows(self, env: ExecutionEnv):
        # Derived tables see no extra outer row; push an empty tuple so the
        # outer-row stack depth stays consistent for the subplan.
        return iter(self.subquery.rows((), env))


class Planner:
    """Plans one statement; child planners are spawned for subqueries."""

    def __init__(
        self,
        catalog: Catalog,
        functions: FunctionRegistry,
        cte_columns: Optional[Dict[str, List[str]]] = None,
        views: Optional[Dict[str, "object"]] = None,
        expanding_views: Optional[set] = None,
        stats: Optional[table_stats_mod.StatsCatalog] = None,
        cost_based: bool = True,
    ) -> None:
        self.catalog = catalog
        self.functions = functions
        self.cte_columns: Dict[str, List[str]] = dict(cte_columns or {})
        #: name (lower) -> ast.CreateView; shared with the owning Database.
        self.views: Dict[str, object] = views if views is not None else {}
        #: Views currently being expanded (cycle detection).
        self._expanding_views: set = (
            expanding_views if expanding_views is not None else set()
        )
        #: ANALYZE-collected statistics (shared with the owning Database);
        #: None or cost_based=False keeps planning purely rule-based.
        self.stats = stats
        self.cost_based = cost_based

    # -- public entry points -------------------------------------------------

    def plan_select(
        self, statement: ast.SelectStatement, frames: Optional[List[Frame]] = None
    ) -> Plan:
        """Plan a SELECT statement (including its WITH clause)."""
        if frames is None:
            frames = [Frame(None)]
        planned_ctes: List[PlannedCTE] = []
        if statement.with_clause is not None:
            for cte in statement.with_clause.ctes:
                planned = self._plan_cte(
                    cte, statement.with_clause.recursive, frames
                )
                planned_ctes.append(planned)
                self.cte_columns[cte.name.lower()] = planned.columns
        root = self._plan_body(statement.body, frames)
        output_names = list(root.output_names)
        if statement.order_by:
            try:
                root = self._plan_order_by(root, statement.order_by, frames)
            except UnresolvedColumnError:
                # SQL resolves ORDER BY keys against the underlying FROM
                # scope too ("hidden" sort columns): re-plan the core with
                # the keys appended, sort, then strip them again.
                root = self._plan_order_by_hidden(statement, root, frames)
        if statement.offset is not None:
            offset_fn = self._compile_scalar(statement.offset, frames)
            root = Offset(root, offset_fn)
        if statement.limit is not None:
            limit_fn = self._compile_scalar(statement.limit, frames)
            root = Limit(root, limit_fn)
        for planned in planned_ctes:
            for branch in planned.seed_plans + planned.recursive_plans:
                _finalize_estimates(branch)
        _finalize_estimates(root)
        return Plan(root=root, output_names=output_names, ctes=planned_ctes)

    # -- WITH clause -----------------------------------------------------------

    def _plan_cte(
        self, cte: ast.CommonTableExpr, recursive_allowed: bool, frames: List[Frame]
    ) -> PlannedCTE:
        branches, operators = _flatten_set_operations(cte.body)
        self_referencing = [
            branch for branch in branches if _core_references(branch, cte.name)
        ]
        if not self_referencing:
            plan = self._plan_body(cte.body, frames)
            columns = cte.columns or list(plan.output_names)
            if cte.columns and len(cte.columns) != len(plan.output_names):
                raise ParseError(
                    f"CTE {cte.name!r} declares {len(cte.columns)} columns but "
                    f"its body produces {len(plan.output_names)}"
                )
            return PlannedCTE(
                name=cte.name, columns=columns, seed_plans=[plan], recursive=False
            )
        if not recursive_allowed:
            raise ParseError(
                f"CTE {cte.name!r} references itself but WITH is not RECURSIVE"
            )
        if any(op not in ("UNION", "UNION ALL") for op in operators):
            raise ParseError(
                "recursive CTEs support only UNION / UNION ALL between branches"
            )
        seeds = [b for b in branches if not _core_references(b, cte.name)]
        if not seeds:
            raise ParseError(
                f"recursive CTE {cte.name!r} has no non-recursive seed branch"
            )
        seed_plans = [self._plan_body(branch, frames) for branch in seeds]
        columns = cte.columns or list(seed_plans[0].output_names)
        for plan in seed_plans:
            if len(plan.output_names) != len(columns):
                raise ParseError(
                    f"branches of recursive CTE {cte.name!r} disagree on arity"
                )
        # The recursive branches may reference the CTE: register it first.
        self.cte_columns[cte.name.lower()] = columns
        recursive_plans = []
        for branch in self_referencing:
            plan = self._plan_body(branch, frames)
            if len(plan.output_names) != len(columns):
                raise ParseError(
                    f"branches of recursive CTE {cte.name!r} disagree on arity"
                )
            recursive_plans.append(plan)
        distinct = any(op == "UNION" for op in operators)
        return PlannedCTE(
            name=cte.name,
            columns=columns,
            seed_plans=seed_plans,
            recursive_plans=recursive_plans,
            recursive=True,
            distinct=distinct,
        )

    # -- query bodies ------------------------------------------------------------

    def _plan_body(
        self, body: Union[ast.SelectCore, ast.SetOperation], frames: List[Frame]
    ) -> Operator:
        if isinstance(body, ast.SelectCore):
            return self._plan_core(body, frames)
        left = self._plan_body(body.left, frames)
        right = self._plan_body(body.right, frames)
        if len(left.output_names) != len(right.output_names):
            raise ParseError(
                f"{body.operator} operands have different numbers of columns "
                f"({len(left.output_names)} vs {len(right.output_names)})"
            )
        if body.operator == "UNION ALL":
            return UnionAll([left, right])
        if body.operator == "UNION":
            return Distinct(UnionAll([left, right]))
        if body.operator == "EXCEPT":
            return SetDifference(left, right)
        if body.operator == "INTERSECT":
            return SetIntersection(left, right)
        raise ParseError(f"unknown set operator {body.operator!r}")

    def _plan_core(self, core: ast.SelectCore, frames: List[Frame]) -> Operator:
        frame = frames[-1]
        saved_scope = frame.scope
        frame.scope = None
        try:
            where_conjuncts = _split_conjuncts(core.where)
            binding_stats: table_stats_mod.BindingStats = {}
            consumed: set = set()
            source, bindings = self._plan_from(
                core.from_items, frames, where_conjuncts, binding_stats, consumed
            )
            scope = Scope(bindings)
            frame.scope = scope
            ctx = self._context(frames)
            operator: Operator = source
            if core.where is not None:
                operator = Filter(operator, compile_expression(core.where, ctx))
                source_est = getattr(source, "est_rows", None)
                if source_est is not None:
                    # Conjuncts already folded into an index probe must not
                    # be priced a second time here.
                    residual = [
                        conjunct
                        for conjunct in where_conjuncts
                        if id(conjunct) not in consumed
                    ]
                    operator.est_rows = (
                        source_est
                        * table_stats_mod.condition_selectivity(
                            residual, binding_stats
                        )
                    )
            needs_aggregate = bool(core.group_by) or any(
                contains_aggregate(item.expression)
                for item in core.items
                if isinstance(item, ast.SelectItem)
            )
            if core.having is not None and contains_aggregate(core.having):
                needs_aggregate = True
            if needs_aggregate:
                operator = self._plan_aggregate(core, operator, frames)
            else:
                if core.having is not None:
                    raise ParseError("HAVING requires GROUP BY or aggregates")
                operator = self._plan_projection(core.items, operator, scope, frames)
            if core.distinct:
                operator = Distinct(operator)
            return operator
        finally:
            frame.scope = saved_scope

    # -- FROM clause ------------------------------------------------------------

    def _plan_from(
        self,
        from_items: Sequence[ast.FromItem],
        frames: List[Frame],
        where_conjuncts: List[ast.Expression],
        binding_stats: table_stats_mod.BindingStats,
        consumed: set,
    ) -> Tuple[Operator, List[Tuple[Optional[str], List[str]]]]:
        if not from_items:
            return RowsSource([], [()]), []
        order = self._comma_order(from_items, where_conjuncts)
        operator: Optional[Operator] = None
        bindings: List[Tuple[Optional[str], List[str]]] = []
        planned: Dict[int, Tuple[Operator, List[Tuple[Optional[str], List[str]]]]] = {}
        for rank, position in enumerate(order):
            item_op, item_bindings = self._plan_from_item(
                from_items[position],
                frames,
                bindings,
                where_conjuncts,
                rank == 0,
                binding_stats,
                consumed,
            )
            bindings = bindings + item_bindings
            planned[position] = (item_op, item_bindings)
            if operator is None:
                operator = item_op
            else:
                joined = NestedLoopJoin(operator, item_op, condition=None)
                left_est = getattr(operator, "est_rows", None)
                right_est = getattr(item_op, "est_rows", None)
                if left_est is not None and right_est is not None:
                    joined.est_rows = left_est * right_est
                operator = joined
        if order == list(range(len(from_items))):
            return operator, bindings
        # The comma items were joined in cost order; restore the written
        # column (and binding) order with a projection so SELECT * output
        # and name resolution are unchanged by the reordering.
        offsets: Dict[int, int] = {}
        offset = 0
        for position in order:
            offsets[position] = offset
            offset += sum(len(cols) for __, cols in planned[position][1])
        exprs = []
        names: List[str] = []
        original_bindings: List[Tuple[Optional[str], List[str]]] = []
        for position in range(len(from_items)):
            start = offsets[position]
            for binding_name, cols in planned[position][1]:
                for column_offset, column in enumerate(cols):
                    exprs.append(_slot_ref_fn(start + column_offset))
                    names.append(column)
                start += len(cols)
                original_bindings.append((binding_name, list(cols)))
        project = Project(operator, exprs, names)
        est = getattr(operator, "est_rows", None)
        if est is not None:
            project.est_rows = est
        return project, original_bindings

    def _comma_order(
        self,
        from_items: Sequence[ast.FromItem],
        where_conjuncts: List[ast.Expression],
    ) -> List[int]:
        """Greedy cost-based ordering of comma-joined FROM items.

        Applies only when every item is a base table with collected
        statistics; otherwise (and in rule mode) the written order is
        kept.  Start from the item with the smallest estimated filtered
        cardinality, then repeatedly append the item minimising the
        estimated intermediate-result size through the WHERE clause's
        equi-join predicates.  Ties keep the written order, so the plan
        is deterministic for a given catalog + statistics state.
        """
        identity = list(range(len(from_items)))
        if len(from_items) < 2 or self.stats is None or not self.cost_based:
            return identity
        per_item: List[Tuple[str, table_stats_mod.TableStats]] = []
        for item in from_items:
            if not isinstance(item, ast.TableRef):
                return identity
            key = item.name.lower()
            if key in self.cte_columns or key in self.views:
                return identity
            if not self.catalog.exists(item.name):
                return identity
            item_stats = self.stats.get(item.name)
            if item_stats is None:
                return identity
            per_item.append((item.binding_name.lower(), item_stats))
        all_stats: table_stats_mod.BindingStats = dict(per_item)
        if len(all_stats) != len(per_item):
            return identity  # duplicate binding names: keep the written order
        filtered: List[float] = []
        for binding, item_stats in per_item:
            selectivity = 1.0
            for conjunct in where_conjuncts:
                if table_stats_mod.references_only(conjunct, binding, all_stats):
                    selectivity *= table_stats_mod.conjunct_selectivity(
                        conjunct, {binding: item_stats}
                    )
            filtered.append(item_stats.row_count * selectivity)
        remaining = identity[:]
        start = min(remaining, key=lambda position: (filtered[position], position))
        order = [start]
        remaining.remove(start)
        cardinality = filtered[start]
        included: Dict[str, table_stats_mod.TableStats] = {
            per_item[start][0]: per_item[start][1]
        }
        while remaining:
            best = remaining[0]
            best_cardinality: Optional[float] = None
            for position in remaining:
                candidate_group = {per_item[position][0]: per_item[position][1]}
                selectivity = 1.0
                for conjunct in where_conjuncts:
                    join_sel = table_stats_mod.join_selectivity(
                        conjunct, included, candidate_group
                    )
                    if join_sel is not None:
                        selectivity *= join_sel
                candidate = cardinality * filtered[position] * selectivity
                if best_cardinality is None or candidate < best_cardinality:
                    best = position
                    best_cardinality = candidate
            order.append(best)
            remaining.remove(best)
            if best_cardinality is not None:
                cardinality = best_cardinality
            included[per_item[best][0]] = per_item[best][1]
        return order

    def _plan_from_item(
        self,
        item: ast.FromItem,
        frames: List[Frame],
        left_bindings: List[Tuple[Optional[str], List[str]]],
        where_conjuncts: List[ast.Expression],
        leftmost: bool,
        binding_stats: table_stats_mod.BindingStats,
        consumed: set,
    ) -> Tuple[Operator, List[Tuple[Optional[str], List[str]]]]:
        if isinstance(item, ast.TableRef):
            return self._plan_table_ref(
                item, frames, where_conjuncts, leftmost, binding_stats, consumed
            )
        if isinstance(item, ast.SubqueryRef):
            child = Planner(
                self.catalog,
                self.functions,
                dict(self.cte_columns),
                views=self.views,
                expanding_views=self._expanding_views,
                stats=self.stats,
                cost_based=self.cost_based,
            )
            sub_frame = Frame(None)
            plan = child.plan_select(item.subquery, frames + [sub_frame])
            operator = SubplanOperator(plan)
            est = getattr(plan.root, "est_rows", None)
            if est is not None:
                operator.est_rows = est
            if item.alias:
                binding_stats.setdefault(item.alias.lower(), None)
            return operator, [(item.alias, list(plan.output_names))]
        if isinstance(item, ast.Join):
            left_op, left_binds = self._plan_from_item(
                item.left,
                frames,
                left_bindings,
                where_conjuncts,
                leftmost,
                binding_stats,
                consumed,
            )
            join_op, right_binds = self._plan_join(
                item, left_op, left_bindings + left_binds, frames, binding_stats
            )
            return join_op, left_binds + right_binds
        raise ParseError(f"unsupported FROM item {type(item).__name__}")

    def _plan_table_ref(
        self,
        ref: ast.TableRef,
        frames: List[Frame],
        where_conjuncts: List[ast.Expression],
        leftmost: bool,
        binding_stats: table_stats_mod.BindingStats,
        consumed: set,
    ) -> Tuple[Operator, List[Tuple[Optional[str], List[str]]]]:
        binding = ref.binding_name
        if ref.name.lower() in self.cte_columns:
            columns = self.cte_columns[ref.name.lower()]
            binding_stats.setdefault(binding.lower(), None)
            return CTEScan(ref.name, columns), [(binding, list(columns))]
        view = self.views.get(ref.name.lower())
        if view is not None:
            binding_stats.setdefault(binding.lower(), None)
            return self._plan_view(ref, view)
        entry = self.catalog.lookup(ref.name)
        storage = entry.storage
        columns = entry.schema.column_names
        table_stats = self._table_stats(ref.name)
        binding_stats[binding.lower()] = table_stats
        if leftmost and where_conjuncts:
            indexed = self._try_index_scan(
                entry, binding, where_conjuncts, frames, consumed, table_stats
            )
            if indexed is not None:
                return indexed, [(binding, list(columns))]
        scan = SeqScan(storage)
        if table_stats is not None:
            scan.est_rows = float(table_stats.row_count)
        return scan, [(binding, list(columns))]

    def _table_stats(self, name: str) -> Optional[table_stats_mod.TableStats]:
        if not self.cost_based or self.stats is None:
            return None
        return self.stats.get(name)

    def _plan_view(self, ref: ast.TableRef, view):
        """Expand a view reference by planning its defining statement.

        The expansion happens below the current query's scope — the query
        modificator never sees the view's internals, which is precisely
        the paper's Section 5.5 limitation.
        """
        key = ref.name.lower()
        if key in self._expanding_views:
            raise ParseError(f"view {view.name!r} is recursively defined")
        self._expanding_views.add(key)
        try:
            child = Planner(
                self.catalog,
                self.functions,
                views=self.views,
                expanding_views=self._expanding_views,
                stats=self.stats,
                cost_based=self.cost_based,
            )
            plan = child.plan_select(view.select)
        finally:
            self._expanding_views.discard(key)
        columns = list(view.columns or plan.output_names)
        if len(columns) != len(plan.output_names):
            raise ParseError(
                f"view {view.name!r} declares {len(columns)} columns but its "
                f"query produces {len(plan.output_names)}"
            )
        operator = SubplanOperator(plan)
        operator.output_names = columns
        est = getattr(plan.root, "est_rows", None)
        if est is not None:
            operator.est_rows = est
        return operator, [(ref.binding_name, columns)]

    def _try_index_scan(
        self,
        entry,
        binding: str,
        conjuncts: List[ast.Expression],
        frames: List[Frame],
        consumed: Optional[set] = None,
        table_stats: Optional[table_stats_mod.TableStats] = None,
    ) -> Optional[Operator]:
        """Turn a driving base-table scan into an index probe when a WHERE
        conjunct pins an indexed column to a scope-independent value, or to
        a list of them (``col IN (?, ?, ?)`` becomes a multi-key probe).

        All matching candidates are gathered; with statistics the cheapest
        costed path wins (and a sequential scan can win outright on small
        tables), without statistics the fallback is deterministic:
        unique-index probes first — a primary-key probe returns at most one
        row — then WHERE-clause order.  Previously the *first* matching
        conjunct always won, even when a later conjunct pinned the primary
        key.
        """
        candidates = self._access_paths(entry, binding, conjuncts, frames)
        if not candidates:
            return None
        if consumed is None:
            consumed = set()
        if table_stats is None:
            chosen = min(
                candidates,
                key=lambda path: (0 if path.unique else 1, path.position),
            )
            consumed.add(id(chosen.conjunct))
            return chosen.operator
        chosen = None
        chosen_cost = table_stats_mod.seq_scan_cost(table_stats.row_count)
        for candidate in candidates:
            est = table_stats_mod.probe_rows(
                table_stats, candidate.column, candidate.unique, candidate.keys
            )
            cost = table_stats_mod.index_probe_cost(candidate.keys, est)
            if cost < chosen_cost:
                chosen = candidate
                chosen_cost = cost
                chosen.operator.est_rows = est
        if chosen is None:
            return None  # the sequential scan is the cheapest access path
        consumed.add(id(chosen.conjunct))
        return chosen.operator

    def _access_paths(
        self,
        entry,
        binding: str,
        conjuncts: List[ast.Expression],
        frames: List[Frame],
    ) -> List["_AccessPath"]:
        """Every index probe a WHERE conjunct makes available, in
        WHERE-clause discovery order."""
        paths: List[_AccessPath] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.InList):
                multi = self._try_multikey_lookup(
                    entry, binding, conjunct, frames
                )
                if multi is not None:
                    operator, index, keys, column = multi
                    paths.append(
                        _AccessPath(
                            operator=operator,
                            conjunct=conjunct,
                            unique=index.unique,
                            keys=keys,
                            column=column,
                            position=len(paths),
                        )
                    )
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.operator == "="
            ):
                continue
            for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column_side, ast.ColumnRef):
                    continue
                if column_side.qualifier is not None:
                    if column_side.qualifier.lower() != binding.lower():
                        continue
                if not entry.schema.has_column(column_side.name):
                    continue
                index = entry.storage.find_index([column_side.name])
                if index is None:
                    continue
                key_fn = self._compile_independent(
                    value_side, frames, entry.schema
                )
                if key_fn is None:
                    continue
                paths.append(
                    _AccessPath(
                        operator=IndexLookup(entry.storage, index, [key_fn]),
                        conjunct=conjunct,
                        unique=index.unique,
                        keys=1,
                        column=column_side.name.lower(),
                        position=len(paths),
                    )
                )
                break
        return paths

    def _try_multikey_lookup(
        self,
        entry,
        binding: str,
        conjunct: ast.InList,
        frames: List[Frame],
    ) -> Optional[Tuple[Operator, object, int, str]]:
        """``col IN (v1, ..., vN)`` on an indexed column → N-key probe,
        returned as ``(operator, index, key_count, column)``.

        Only non-negated lists qualify (NOT IN must see every row), and
        every list item must compile independently of the scanned table.
        Duplicate *literal* items are dropped at plan time — ``IN (1, 1)``
        probes one key, not two (equal parameter values are deduplicated
        at run time by :class:`MultiKeyIndexLookup` itself).  The full
        WHERE clause stays as the residual filter above, so NULL items and
        three-valued logic are handled there; the probe only has to
        produce every row the predicate could accept.
        """
        if conjunct.negated or not conjunct.items:
            return None
        operand = conjunct.operand
        if not isinstance(operand, ast.ColumnRef):
            return None
        if operand.qualifier is not None:
            if operand.qualifier.lower() != binding.lower():
                return None
        if not entry.schema.has_column(operand.name):
            return None
        index = entry.storage.find_index([operand.name])
        if index is None:
            return None
        key_fns = []
        seen_literals = set()
        for item in conjunct.items:
            if isinstance(item, ast.Literal) and isinstance(
                item.value, (bool, int, float, str, type(None))
            ):
                if item.value in seen_literals:
                    continue
                seen_literals.add(item.value)
            key_fn = self._compile_independent(item, frames, entry.schema)
            if key_fn is None:
                return None
            key_fns.append(key_fn)
        operator = MultiKeyIndexLookup(entry.storage, index, key_fns)
        return operator, index, len(key_fns), operand.name.lower()

    def _plan_join(
        self,
        join: ast.Join,
        left_op: Operator,
        left_bindings: List[Tuple[Optional[str], List[str]]],
        frames: List[Frame],
        binding_stats: table_stats_mod.BindingStats,
    ) -> Tuple[Operator, List[Tuple[Optional[str], List[str]]]]:
        frame = frames[-1]
        if join.kind == "CROSS":
            right_op, right_binds = self._plan_from_item(
                join.right, frames, left_bindings, [], False, binding_stats, set()
            )
            bindings = _strip_prefix(left_bindings, right_binds)
            operator = NestedLoopJoin(left_op, right_op, condition=None)
            _annotate_join_estimate(
                operator, left_op, right_op, [], binding_stats, "INNER"
            )
            return operator, bindings
        # Try an index nested-loop join with the right side as a base table.
        if isinstance(join.right, ast.TableRef) and join.right.name.lower() not in (
            self.cte_columns
        ) and self.catalog.exists(join.right.name):
            indexed = self._try_index_join(
                join, left_op, left_bindings, frames, binding_stats
            )
            if indexed is not None:
                return indexed
        right_op, right_binds = self._plan_from_item(
            join.right, frames, left_bindings, [], False, binding_stats, set()
        )
        condition_conjuncts = _split_conjuncts(join.condition)
        combined_bindings = left_bindings + right_binds
        combined_scope = Scope(combined_bindings)
        saved = frame.scope
        frame.scope = combined_scope
        try:
            condition_fn = (
                compile_expression(join.condition, self._context(frames))
                if join.condition is not None
                else None
            )
            hash_join = None
            if join.kind == "INNER" and join.condition is not None:
                hash_join = self._try_hash_join(
                    join, left_op, right_op, left_bindings, right_binds, frames,
                    condition_fn,
                )
            if hash_join is not None:
                _annotate_join_estimate(
                    hash_join,
                    left_op,
                    right_op,
                    condition_conjuncts,
                    binding_stats,
                    "INNER",
                )
                return hash_join, _strip_prefix(left_bindings, right_binds)
        finally:
            frame.scope = saved
        operator = NestedLoopJoin(left_op, right_op, condition_fn, kind=join.kind)
        _annotate_join_estimate(
            operator, left_op, right_op, condition_conjuncts, binding_stats, join.kind
        )
        return operator, _strip_prefix(left_bindings, right_binds)

    def _try_index_join(
        self,
        join: ast.Join,
        left_op: Operator,
        left_bindings: List[Tuple[Optional[str], List[str]]],
        frames: List[Frame],
        binding_stats: table_stats_mod.BindingStats,
    ) -> Optional[Tuple[Operator, List[Tuple[Optional[str], List[str]]]]]:
        entry = self.catalog.lookup(join.right.name)
        right_binding = join.right.binding_name
        right_stats = self._table_stats(join.right.name)
        binding_stats[right_binding.lower()] = right_stats
        frame = frames[-1]
        conjuncts = _split_conjuncts(join.condition)
        left_scope = Scope(left_bindings)
        for conjunct in conjuncts:
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.operator == "="
            ):
                continue
            for column_side, key_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column_side, ast.ColumnRef):
                    continue
                qualifier = column_side.qualifier
                if qualifier is not None and qualifier.lower() != right_binding.lower():
                    continue
                if qualifier is None and _scope_has_column(
                    left_scope, column_side.name
                ):
                    continue  # would be ambiguous or belong to the left side
                if not entry.schema.has_column(column_side.name):
                    continue
                index = entry.storage.find_index([column_side.name])
                if index is None:
                    continue
                saved = frame.scope
                frame.scope = left_scope
                try:
                    key_fn = self._compile_independent(
                        key_side, frames, entry.schema
                    )
                finally:
                    frame.scope = saved
                if key_fn is None:
                    continue
                combined_bindings = left_bindings + [
                    (right_binding, list(entry.schema.column_names))
                ]
                saved = frame.scope
                frame.scope = Scope(combined_bindings)
                try:
                    residual = compile_expression(
                        join.condition, self._context(frames)
                    )
                finally:
                    frame.scope = saved
                operator = IndexNestedLoopJoin(
                    left_op,
                    entry.storage,
                    index,
                    [key_fn],
                    residual,
                    kind=join.kind,
                )
                left_est = getattr(left_op, "est_rows", None)
                if left_est is not None and right_stats is not None:
                    est = (
                        left_est
                        * right_stats.row_count
                        * table_stats_mod.condition_selectivity(
                            conjuncts, binding_stats
                        )
                    )
                    if join.kind == "LEFT":
                        est = max(est, left_est)
                    operator.est_rows = est
                return operator, [
                    (right_binding, list(entry.schema.column_names))
                ]
        return None

    def _try_hash_join(
        self,
        join: ast.Join,
        left_op: Operator,
        right_op: Operator,
        left_bindings,
        right_binds,
        frames: List[Frame],
        condition_fn,
    ) -> Optional[Operator]:
        frame = frames[-1]
        left_scope = Scope(left_bindings)
        right_scope = Scope(right_binds)
        left_keys = []
        right_keys = []
        for conjunct in _split_conjuncts(join.condition):
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.operator == "="
            ):
                return None
            pair = self._classify_equi_sides(
                conjunct, left_scope, right_scope, frames
            )
            if pair is None:
                return None
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        if not left_keys:
            return None
        return HashJoin(
            left_op,
            right_op,
            left_keys,
            right_keys,
            residual=None,
            kind="INNER",
        )

    def _classify_equi_sides(
        self,
        conjunct: ast.BinaryOp,
        left_scope: Scope,
        right_scope: Scope,
        frames: List[Frame],
    ):
        """Compile the sides of an equi-conjunct against (left, right) scopes.

        Returns ``(left_key_fn, right_key_fn)`` or None if the conjunct does
        not split cleanly across the join.
        """
        frame = frames[-1]

        def compile_against(expr, scope):
            saved = frame.scope
            frame.scope = scope
            try:
                return compile_expression(expr, self._context(frames))
            except SQLError:
                return None
            finally:
                frame.scope = saved

        left_fn = compile_against(conjunct.left, left_scope)
        right_fn = compile_against(conjunct.right, right_scope)
        if left_fn is not None and right_fn is not None:
            # Ensure neither side is actually resolvable on both scopes,
            # which would make this split ambiguous — fall back.
            if (
                compile_against(conjunct.left, right_scope) is not None
                or compile_against(conjunct.right, left_scope) is not None
            ):
                return None
            return (left_fn, right_fn)
        swapped_left = compile_against(conjunct.right, left_scope)
        swapped_right = compile_against(conjunct.left, right_scope)
        if swapped_left is not None and swapped_right is not None:
            return (swapped_left, swapped_right)
        return None

    def _compile_independent(self, expr: ast.Expression, frames: List[Frame], avoid_schema):
        """Compile *expr* so that it may reference outer frames and the
        current frame's (possibly partial) scope, but must not reference the
        table described by *avoid_schema* through unqualified names.

        Returns None when the expression cannot be compiled in that context
        (then the caller falls back to an unoptimised plan).
        """
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.ColumnRef) and node.qualifier is None:
                if avoid_schema.has_column(node.name):
                    return None
            if isinstance(
                node,
                (ast.ExistsTest, ast.InSubquery, ast.ScalarSubquery),
            ):
                return None  # keep the optimisation path simple and safe
        try:
            return compile_expression(expr, self._context(frames))
        except SQLError:
            return None

    # -- projection / aggregation -----------------------------------------------

    def _plan_projection(
        self,
        items: Sequence[Union[ast.SelectItem, ast.Star]],
        child: Operator,
        scope: Scope,
        frames: List[Frame],
    ) -> Operator:
        ctx = self._context(frames)
        exprs = []
        names: List[str] = []
        for item in items:
            if isinstance(item, ast.Star):
                start, end = (
                    scope.binding_slot_range(item.qualifier)
                    if item.qualifier
                    else (0, scope.arity)
                )
                display = _display_names(scope)
                for slot in range(start, end):
                    exprs.append(compile_expression(SlotRef(slot), ctx))
                    names.append(display[slot])
                continue
            exprs.append(compile_expression(item.expression, ctx))
            names.append(_output_name(item, len(names)))
        return Project(child, exprs, names)

    def _plan_aggregate(
        self, core: ast.SelectCore, child: Operator, frames: List[Frame]
    ) -> Operator:
        if any(isinstance(item, ast.Star) for item in core.items):
            raise ParseError("SELECT * cannot be combined with aggregation")
        ctx = self._context(frames)
        group_fns = [compile_expression(expr, ctx) for expr in core.group_by]
        group_keys = [expression_key(expr) for expr in core.group_by]
        aggregate_nodes: List[ast.FunctionCall] = []
        aggregate_keys: List[str] = []

        def collect(expression: ast.Expression) -> None:
            for node in ast.walk_expression(expression):
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name.upper() in AGGREGATE_NAMES
                ):
                    key = expression_key(node)
                    if key not in aggregate_keys:
                        aggregate_keys.append(key)
                        aggregate_nodes.append(node)

        for item in core.items:
            collect(item.expression)
        if core.having is not None:
            collect(core.having)
        specs: List[AggregateSpec] = []
        for node in aggregate_nodes:
            if node.star:
                specs.append(AggregateSpec(node.name, None, star=True))
                continue
            if len(node.args) != 1:
                raise ParseError(
                    f"aggregate {node.name} takes exactly one argument"
                )
            specs.append(
                AggregateSpec(
                    node.name,
                    compile_expression(node.args[0], ctx),
                    distinct=node.distinct,
                )
            )
        output_names = [f"__group_{i}" for i in range(len(group_fns))] + [
            f"__agg_{i}" for i in range(len(specs))
        ]
        aggregate_op = Aggregate(child, group_fns, specs, output_names)
        # Compile post-aggregation expressions: group keys and aggregate
        # calls become direct slot references.  Plain-column group keys
        # additionally stay addressable by name — including their original
        # table qualifier — so correlated subqueries in HAVING/SELECT can
        # reference the grouping column (``HAVING SUM(x) >= (SELECT goal
        # FROM t WHERE t.region = sale.region)``).
        frame = frames[-1]
        saved = frame.scope
        pre_scope = saved
        post_bindings: List[Tuple[Optional[str], List[str]]] = []
        for position, group_expr in enumerate(core.group_by):
            binding_name = None
            column_name = f"__group_{position}"
            if isinstance(group_expr, ast.ColumnRef):
                column_name = group_expr.name
                binding_name = group_expr.qualifier
                if binding_name is None and pre_scope is not None:
                    try:
                        slot = pre_scope.resolve(None, group_expr.name)
                        binding_name = pre_scope.binding_of_slot(slot)
                    except SQLError:
                        binding_name = None
            post_bindings.append((binding_name, [column_name]))
        post_bindings.append((None, [f"__agg_{i}" for i in range(len(specs))]))
        frame.scope = Scope(post_bindings)
        try:
            post_ctx = self._context(frames)

            def rewrite(expression: ast.Expression) -> ast.Expression:
                key = expression_key(expression)
                if key in group_keys:
                    return SlotRef(group_keys.index(key))
                if key in aggregate_keys:
                    return SlotRef(len(group_keys) + aggregate_keys.index(key))
                return _rebuild(expression, rewrite)

            operator: Operator = aggregate_op
            if core.having is not None:
                having_fn = compile_expression(rewrite(core.having), post_ctx)
                operator = Filter(operator, having_fn)
            exprs = []
            names = []
            for item in core.items:
                exprs.append(compile_expression(rewrite(item.expression), post_ctx))
                names.append(_output_name(item, len(names)))
            return Project(operator, exprs, names)
        finally:
            frame.scope = saved

    # -- ORDER BY / LIMIT ----------------------------------------------------------

    def _plan_order_by(
        self, child: Operator, order_by: List[ast.OrderItem], frames: List[Frame]
    ) -> Operator:
        frame = frames[-1]
        saved = frame.scope
        frame.scope = Scope([(None, list(child.output_names))])
        try:
            ctx = self._context(frames)
            keys = []
            for item in order_by:
                expression = item.expression
                if contains_aggregate(expression):
                    # ORDER BY SUM(x): handled by the hidden-key re-plan,
                    # where the aggregate rewrite sees the key.
                    raise UnresolvedColumnError(
                        "aggregate ORDER BY key needs a hidden sort column"
                    )
                if isinstance(expression, ast.Literal) and isinstance(
                    expression.value, int
                ):
                    position = expression.value
                    if not 1 <= position <= len(child.output_names):
                        raise ParseError(
                            f"ORDER BY position {position} is out of range"
                        )
                    expression = SlotRef(position - 1)
                keys.append((compile_expression(expression, ctx), item.descending))
            return Sort(child, keys)
        finally:
            frame.scope = saved

    def _plan_order_by_hidden(
        self,
        statement: ast.SelectStatement,
        planned_root: Operator,
        frames: List[Frame],
    ) -> Operator:
        """ORDER BY keys referencing non-output columns: re-plan the core
        with the keys appended to the select list, sort on the appended
        slots, then project the hidden slots away."""
        core = statement.body
        if not isinstance(core, ast.SelectCore):
            raise ParseError(
                "ORDER BY over a set operation must reference output columns"
            )
        if core.distinct:
            raise ParseError(
                "ORDER BY keys of a SELECT DISTINCT must appear in the "
                "select list"
            )
        output_names = list(planned_root.output_names)
        lower_names = [name.lower() for name in output_names]
        key_slots: List[Tuple[int, bool]] = []
        hidden_items: List[ast.SelectItem] = []
        for item in statement.order_by:
            expression = item.expression
            if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value
                if not 1 <= position <= len(output_names):
                    raise ParseError(
                        f"ORDER BY position {position} is out of range"
                    )
                key_slots.append((position - 1, item.descending))
                continue
            if (
                isinstance(expression, ast.ColumnRef)
                and expression.qualifier is None
                and lower_names.count(expression.name.lower()) == 1
            ):
                key_slots.append(
                    (lower_names.index(expression.name.lower()), item.descending)
                )
                continue
            slot = len(output_names) + len(hidden_items)
            hidden_items.append(
                ast.SelectItem(expression=expression, alias=f"__order_{slot}")
            )
            key_slots.append((slot, item.descending))
        extended = ast.SelectCore(
            items=list(core.items) + hidden_items,
            from_items=core.from_items,
            where=core.where,
            group_by=core.group_by,
            having=core.having,
            distinct=False,
        )
        extended_root = self._plan_core(extended, frames)
        keys = [
            ((lambda slot: (lambda row, env: row[slot]))(slot), descending)
            for slot, descending in key_slots
        ]
        sorted_root = Sort(extended_root, keys)
        strip = [
            (lambda slot: (lambda row, env: row[slot]))(position)
            for position in range(len(output_names))
        ]
        return Project(sorted_root, strip, output_names)

    def _compile_scalar(self, expression: ast.Expression, frames: List[Frame]):
        frame = frames[-1]
        saved = frame.scope
        frame.scope = Scope([])
        try:
            return compile_expression(expression, self._context(frames))
        finally:
            frame.scope = saved

    # -- helpers -------------------------------------------------------------------

    def _context(self, frames: List[Frame]) -> CompileContext:
        return CompileContext(frames, self._plan_subquery, self.functions)

    def _plan_subquery(
        self, statement: ast.SelectStatement, frames: List[Frame]
    ) -> CompiledSubquery:
        child = Planner(
                self.catalog,
                self.functions,
                dict(self.cte_columns),
                views=self.views,
                expanding_views=self._expanding_views,
                stats=self.stats,
                cost_based=self.cost_based,
            )
        sub_frame = Frame(None)
        plan = child.plan_select(statement, list(frames) + [sub_frame])
        return CompiledSubquery(plan, sub_frame.correlated)


@dataclass
class _AccessPath:
    """One candidate index probe for a base-table access."""

    operator: Operator
    #: The WHERE conjunct the probe implements (its id lands in the
    #: ``consumed`` set so cardinality estimation does not price it twice).
    conjunct: ast.Expression
    unique: bool
    #: Number of probe keys (1 for ``=``, the deduplicated list length
    #: for ``IN``).
    keys: int
    #: Probed column name (lower case), for per-key cardinality.
    column: str
    #: Discovery position, the deterministic tie-break.
    position: int


def _slot_ref_fn(slot: int):
    """Raw slot projection ``(row, env) -> row[slot]`` (same idiom as the
    hidden ORDER BY keys; plans using it fall back to the row executor)."""
    return lambda row, env: row[slot]


def _annotate_join_estimate(
    operator: Operator,
    left_op: Operator,
    right_op: Operator,
    conjuncts: List[ast.Expression],
    binding_stats: table_stats_mod.BindingStats,
    kind: str,
) -> None:
    """Estimate join output as |left| × |right| × selectivity(ON)."""
    left_est = getattr(left_op, "est_rows", None)
    right_est = getattr(right_op, "est_rows", None)
    if left_est is None or right_est is None:
        return
    est = (
        left_est
        * right_est
        * table_stats_mod.condition_selectivity(conjuncts, binding_stats)
    )
    if kind == "LEFT":
        est = max(est, left_est)  # every left row appears at least once
    operator.est_rows = est


def _operator_children(operator: Operator) -> List[Operator]:
    if isinstance(operator, SubplanOperator):
        return []  # its plan was finalized by the child planner
    if isinstance(operator, UnionAll):
        return list(operator.children)
    children: List[Operator] = []
    for attr in ("child", "left", "right"):
        node = getattr(operator, attr, None)
        if isinstance(node, Operator):
            children.append(node)
    return children


def _finalize_estimates(operator: Operator) -> None:
    """Post-pass filling ``est_rows`` on wrapper operators that pass their
    child's cardinality through unchanged (or bounded): projections, sorts
    and the like inherit, UNION ALL sums.  Operators whose output cannot
    be derived (aggregates, set difference, …) keep no estimate rather
    than a made-up one."""
    for child in _operator_children(operator):
        _finalize_estimates(child)
    if getattr(operator, "est_rows", None) is not None:
        return
    if isinstance(operator, (Project, Sort, Distinct, Filter, Limit, Offset)):
        child = getattr(operator, "child", None)
        if child is not None:
            est = getattr(child, "est_rows", None)
            if est is not None:
                operator.est_rows = est
    elif isinstance(operator, UnionAll):
        branch_ests = [
            getattr(branch, "est_rows", None) for branch in operator.children
        ]
        if branch_ests and all(est is not None for est in branch_ests):
            operator.est_rows = float(sum(branch_ests))


def _strip_prefix(left_bindings, right_binds):
    """Bindings contributed by a join node = right side only (the caller
    already owns the left bindings)."""
    return right_binds


def _scope_has_column(scope: Scope, name: str) -> bool:
    wanted = name.lower()
    return any(
        column.lower() == wanted
        for __, columns in scope.bindings
        for column in columns
    )


def _display_names(scope: Scope) -> List[str]:
    names: List[str] = []
    for __, columns in scope.bindings:
        names.extend(columns)
    return names


def _output_name(item: ast.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.Cast) and isinstance(
        expression.operand, ast.ColumnRef
    ):
        return expression.operand.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name.lower()
    return f"col{position + 1}"


def _rebuild(expression: ast.Expression, transform) -> ast.Expression:
    """Shallow-copy *expression* with children passed through *transform*.

    Subquery wrappers are kept as-is: their internals compile in their own
    frames and may not reference pre-aggregation columns.
    """
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(expression.operator, transform(expression.operand))
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.operator,
            transform(expression.left),
            transform(expression.right),
        )
    if isinstance(expression, ast.FunctionCall):
        return ast.FunctionCall(
            expression.name,
            [transform(arg) for arg in expression.args],
            star=expression.star,
            distinct=expression.distinct,
        )
    if isinstance(expression, ast.Cast):
        return ast.Cast(transform(expression.operand), expression.target)
    if isinstance(expression, ast.IsNullTest):
        return ast.IsNullTest(transform(expression.operand), expression.negated)
    if isinstance(expression, ast.InList):
        return ast.InList(
            transform(expression.operand),
            [transform(item) for item in expression.items],
            expression.negated,
        )
    if isinstance(expression, ast.Between):
        return ast.Between(
            transform(expression.operand),
            transform(expression.low),
            transform(expression.high),
            expression.negated,
        )
    if isinstance(expression, ast.Like):
        return ast.Like(
            transform(expression.operand),
            transform(expression.pattern),
            expression.negated,
        )
    if isinstance(expression, ast.CaseWhen):
        return ast.CaseWhen(
            [
                (transform(condition), transform(value))
                for condition, value in expression.branches
            ],
            transform(expression.default)
            if expression.default is not None
            else None,
        )
    return expression


