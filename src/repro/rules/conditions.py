"""Condition taxonomy (paper Figure 1) as a small domain-level AST.

Terms are the building blocks of row conditions: object attributes,
constants, variables of the user's environment (bound when the condition
is translated or evaluated) and applications of (stored) functions.

Conditions split into *row conditions* — evaluable on one object — and
*tree conditions*:

* :class:`ForAllRows` (∀rows): every node of the tree must satisfy a row
  condition, otherwise the result tree is empty ("all or nothing").
* :class:`ExistsStructure` (∃structure): a node of type O is visible only
  if a related object of type U exists via relation *rel*.
* :class:`TreeAggregate`: an aggregate over the whole tree compared
  against an expression ("at most ten assemblies").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.errors import RuleError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of row-condition terms."""


@dataclass(frozen=True)
class Attribute(Term):
    """An attribute of the object under test, e.g. ``make_or_buy``."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A literal constant."""

    value: object


@dataclass(frozen=True)
class UserVar(Term):
    """A variable of the user's environment, e.g. the selected structure
    options; bound from the user context at translation/evaluation time."""

    name: str


@dataclass(frozen=True)
class Apply(Term):
    """Application of a (stored) function to terms (paper Section 3.2:
    conditions beyond plain predicates need stored functions)."""

    function: str
    args: Tuple[Term, ...]

    def __init__(self, function: str, args) -> None:
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Condition:
    """Base class of all conditions."""


_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison(Condition):
    """A comparison between two terms — the simplest row condition."""

    operator: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.operator not in _COMPARISON_OPS:
            raise RuleError(f"unknown comparison operator {self.operator!r}")


@dataclass(frozen=True)
class BoolFunction(Condition):
    """A boolean-valued (stored) function used directly as a condition,
    e.g. ``options_overlap(strc_opt, user_options)``."""

    function: str
    args: Tuple[Term, ...]

    def __init__(self, function: str, args) -> None:
        object.__setattr__(self, "function", function)
        object.__setattr__(self, "args", tuple(args))


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition


@dataclass(frozen=True)
class ForAllRows(Condition):
    """∀rows condition: every tree node (optionally only those of
    ``object_type``) must satisfy ``row_condition`` or the tree is empty.

    Paper example 2: every node of the subtree must be checked in before
    a check-out is permitted.
    """

    row_condition: Condition
    object_type: Optional[str] = None  # None: all node types

    def __post_init__(self) -> None:
        _require_row_condition(self.row_condition, "ForAllRows")


@dataclass(frozen=True)
class ExistsStructure(Condition):
    """∃structure condition (paper 5.3.2): an object of ``object_type`` is
    visible only if it is related — through ``relation_table`` whose
    ``left_column`` refers to the object and ``right_column`` to the
    related object — to at least one row of ``related_table``.
    """

    object_type: str
    relation_table: str
    related_table: str
    left_column: str = "left"
    right_column: str = "right"
    object_id_column: str = "obid"
    related_id_column: str = "obid"


@dataclass(frozen=True)
class TreeAggregate(Condition):
    """Tree-aggregate condition (paper 5.3.3):
    ``agg(attribute over tree nodes [of object_type]) <op> threshold``.

    ``attribute`` is None for COUNT(*).
    """

    function: str  # AVG, COUNT, MAX, MIN, SUM
    attribute: Optional[str]
    operator: str
    threshold: Term
    object_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function.upper() not in ("AVG", "COUNT", "MAX", "MIN", "SUM"):
            raise RuleError(f"unknown aggregate {self.function!r}")
        if self.operator not in _COMPARISON_OPS:
            raise RuleError(f"unknown comparison operator {self.operator!r}")
        if self.function.upper() != "COUNT" and self.attribute is None:
            raise RuleError(f"{self.function} requires an attribute")


class ConditionClass(Enum):
    """The four leaves of the classification tree in paper Figure 1."""

    ROW = "row"
    FORALL_ROWS = "forall-rows"
    EXISTS_STRUCTURE = "exists-structure"
    TREE_AGGREGATE = "tree-aggregate"


_ROW_CONDITION_TYPES = (Comparison, BoolFunction, And, Or, Not)


def is_row_condition(condition: Condition) -> bool:
    """True if *condition* is evaluable on a single object.

    A boolean combination is a row condition only if all leaves are.
    """
    if isinstance(condition, (Comparison, BoolFunction)):
        return True
    if isinstance(condition, Not):
        return is_row_condition(condition.operand)
    if isinstance(condition, (And, Or)):
        return is_row_condition(condition.left) and is_row_condition(
            condition.right
        )
    return False


def classify(condition: Condition) -> ConditionClass:
    """Classify *condition* per Figure 1.

    Raises :class:`RuleError` for boolean combinations that mix row and
    tree conditions — those are not in the paper's taxonomy and the query
    modificator could not place them.
    """
    if is_row_condition(condition):
        return ConditionClass.ROW
    if isinstance(condition, ForAllRows):
        return ConditionClass.FORALL_ROWS
    if isinstance(condition, ExistsStructure):
        return ConditionClass.EXISTS_STRUCTURE
    if isinstance(condition, TreeAggregate):
        return ConditionClass.TREE_AGGREGATE
    raise RuleError(
        f"condition {condition!r} is neither a pure row condition nor a "
        f"recognised tree condition"
    )


def _require_row_condition(condition: Condition, context: str) -> None:
    if not is_row_condition(condition):
        raise RuleError(f"{context} requires a row condition")


def attributes_used(condition: Condition) -> List[str]:
    """Attribute names referenced by a row condition (for validation)."""
    names: List[str] = []

    def walk_term(term: Term) -> None:
        if isinstance(term, Attribute):
            names.append(term.name)
        elif isinstance(term, Apply):
            for arg in term.args:
                walk_term(arg)

    def walk(cond: Condition) -> None:
        if isinstance(cond, Comparison):
            walk_term(cond.left)
            walk_term(cond.right)
        elif isinstance(cond, BoolFunction):
            for arg in cond.args:
                walk_term(arg)
        elif isinstance(cond, Not):
            walk(cond.operand)
        elif isinstance(cond, (And, Or)):
            walk(cond.left)
            walk(cond.right)
        elif isinstance(cond, ForAllRows):
            walk(cond.row_condition)
        elif isinstance(cond, TreeAggregate):
            if cond.attribute is not None:
                names.append(cond.attribute)

    walk(condition)
    return names
