"""Translate domain conditions into SQL predicate ASTs.

Paper Section 4.1: row conditions "can be transformed straightforward
into an SQL WHERE clause"; Section 5.3 gives the patterns for the three
tree-condition classes.  The translators build
:mod:`repro.sqldb.ast_nodes` expressions (not strings), so the query
modificator can splice them into the right WHERE clauses structurally and
render the final SQL once.

User-environment variables (:class:`~repro.rules.conditions.UserVar`) are
bound to literals from a ``user_env`` mapping at translation time —
mirroring the paper's design where translated conditions are stored in a
client-side rule table (Section 5.5) ready for use.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConditionTranslationError
from repro.sqldb import ast_nodes as ast
from repro.rules import conditions as cond

UserEnv = Dict[str, object]


def translate_term(
    term: cond.Term, qualifier: Optional[str], user_env: UserEnv
) -> ast.Expression:
    """Translate a term; attribute references get the given qualifier."""
    if isinstance(term, cond.Attribute):
        return ast.ColumnRef(name=term.name, qualifier=qualifier)
    if isinstance(term, cond.Const):
        return ast.Literal(value=term.value)
    if isinstance(term, cond.UserVar):
        if term.name not in user_env:
            raise ConditionTranslationError(
                f"user environment does not define variable {term.name!r}"
            )
        return ast.Literal(value=user_env[term.name])
    if isinstance(term, cond.Apply):
        return ast.FunctionCall(
            name=term.function,
            args=[translate_term(arg, qualifier, user_env) for arg in term.args],
        )
    raise ConditionTranslationError(f"cannot translate term {term!r}")


def translate_row_condition(
    condition: cond.Condition, qualifier: Optional[str], user_env: UserEnv
) -> ast.Expression:
    """Translate a row condition into a boolean SQL expression.

    ``qualifier`` is the table alias the object's attributes live under in
    the target query (e.g. ``assembly.make_or_buy <> 'buy'``).
    """
    if isinstance(condition, cond.Comparison):
        return ast.BinaryOp(
            operator=condition.operator,
            left=translate_term(condition.left, qualifier, user_env),
            right=translate_term(condition.right, qualifier, user_env),
        )
    if isinstance(condition, cond.BoolFunction):
        return ast.FunctionCall(
            name=condition.function,
            args=[
                translate_term(arg, qualifier, user_env) for arg in condition.args
            ],
        )
    if isinstance(condition, cond.Not):
        return ast.UnaryOp(
            operator="NOT",
            operand=translate_row_condition(condition.operand, qualifier, user_env),
        )
    if isinstance(condition, cond.And):
        return ast.BinaryOp(
            operator="AND",
            left=translate_row_condition(condition.left, qualifier, user_env),
            right=translate_row_condition(condition.right, qualifier, user_env),
        )
    if isinstance(condition, cond.Or):
        return ast.BinaryOp(
            operator="OR",
            left=translate_row_condition(condition.left, qualifier, user_env),
            right=translate_row_condition(condition.right, qualifier, user_env),
        )
    raise ConditionTranslationError(
        f"{type(condition).__name__} is not a row condition"
    )


def translate_forall(
    condition: cond.ForAllRows,
    cte_name: str,
    user_env: UserEnv,
    type_column: str = "type",
) -> ast.Expression:
    """∀rows → all-or-nothing predicate over the recursion result
    (paper 5.3.1)::

        NOT EXISTS (SELECT * FROM <cte> WHERE [type = 'T' AND] NOT row_cond)
    """
    violating = ast.UnaryOp(
        operator="NOT",
        operand=translate_row_condition(condition.row_condition, None, user_env),
    )
    if condition.object_type is not None:
        violating = ast.BinaryOp(
            operator="AND",
            left=ast.BinaryOp(
                operator="=",
                left=ast.ColumnRef(name=type_column),
                right=ast.Literal(value=condition.object_type),
            ),
            right=violating,
        )
    subquery = ast.SelectStatement(
        body=ast.SelectCore(
            items=[ast.Star()],
            from_items=[ast.TableRef(name=cte_name)],
            where=violating,
        )
    )
    return ast.ExistsTest(subquery=subquery, negated=True)


def translate_tree_aggregate(
    condition: cond.TreeAggregate,
    cte_name: str,
    user_env: UserEnv,
    type_column: str = "type",
) -> ast.Expression:
    """Tree-aggregate → scalar-subquery comparison (paper 5.3.3)::

        (SELECT AGG(attr) FROM <cte> [WHERE type = 'T']) <op> threshold
    """
    where: Optional[ast.Expression] = None
    if condition.object_type is not None:
        where = ast.BinaryOp(
            operator="=",
            left=ast.ColumnRef(name=type_column),
            right=ast.Literal(value=condition.object_type),
        )
    if condition.function.upper() == "COUNT" and condition.attribute is None:
        call = ast.FunctionCall(name="COUNT", star=True)
    else:
        call = ast.FunctionCall(
            name=condition.function.upper(),
            args=[ast.ColumnRef(name=condition.attribute)],
        )
    subquery = ast.SelectStatement(
        body=ast.SelectCore(
            items=[ast.SelectItem(expression=call)],
            from_items=[ast.TableRef(name=cte_name)],
            where=where,
        )
    )
    return ast.BinaryOp(
        operator=condition.operator,
        left=ast.ScalarSubquery(subquery=subquery),
        right=translate_term(condition.threshold, None, user_env),
    )


def translate_exists_structure(
    condition: cond.ExistsStructure,
    object_alias: str,
    relation_alias: str = "rel_probe",
) -> ast.Expression:
    """∃structure → correlated EXISTS probe (paper 5.3.2)::

        EXISTS (SELECT * FROM rel AS r JOIN U ON r.right = U.obid
                WHERE r.left = <object_alias>.obid)
    """
    join = ast.Join(
        left=ast.TableRef(name=condition.relation_table, alias=relation_alias),
        right=ast.TableRef(name=condition.related_table),
        kind="INNER",
        condition=ast.BinaryOp(
            operator="=",
            left=ast.ColumnRef(
                name=condition.right_column, qualifier=relation_alias
            ),
            right=ast.ColumnRef(
                name=condition.related_id_column, qualifier=condition.related_table
            ),
        ),
    )
    subquery = ast.SelectStatement(
        body=ast.SelectCore(
            items=[ast.Star()],
            from_items=[join],
            where=ast.BinaryOp(
                operator="=",
                left=ast.ColumnRef(
                    name=condition.left_column, qualifier=relation_alias
                ),
                right=ast.ColumnRef(
                    name=condition.object_id_column, qualifier=object_alias
                ),
            ),
        )
    )
    return ast.ExistsTest(subquery=subquery)


def disjunction(predicates: Sequence[ast.Expression]) -> ast.Expression:
    """OR-combine predicates (two or more qualifying conditions "are always
    connected via the OR operator", paper 4.1)."""
    if not predicates:
        raise ConditionTranslationError("cannot build an empty disjunction")
    combined = predicates[0]
    for predicate in predicates[1:]:
        combined = ast.BinaryOp(operator="OR", left=combined, right=predicate)
    return combined


def and_append(
    where: Optional[ast.Expression], predicate: ast.Expression
) -> ast.Expression:
    """Append *predicate* to an existing WHERE clause with AND (or start a
    new clause), per paper 4.1."""
    if where is None:
        return predicate
    return ast.BinaryOp(operator="AND", left=where, right=predicate)
