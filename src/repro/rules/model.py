"""Rules as 4-tuples: (user, action, object type, condition).

Paper Section 3.1: "A user is permitted to perform an action on an
instance of an object type, if the condition is met."  The rule system is
negative-biased — rules *permit*; several rules matching the same
(user, action, type) are combined by OR (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RuleError
from repro.rules.conditions import Condition, ConditionClass, classify

#: Wildcard user (paper example 2 uses ``user: *``).
ANY_USER = "*"


class Actions:
    """Well-known action names.

    ``ACCESS`` is special: per Section 5.5 step D, access rules apply to
    every query that touches the object type, whatever the user action is.
    """

    ACCESS = "access"
    QUERY = "query"
    EXPAND = "expand"
    MULTI_LEVEL_EXPAND = "multi_level_expand"
    CHECK_OUT = "check_out"
    CHECK_IN = "check_in"

    ALL = (ACCESS, QUERY, EXPAND, MULTI_LEVEL_EXPAND, CHECK_OUT, CHECK_IN)


@dataclass(frozen=True)
class Rule:
    """One permission rule.

    ``object_type`` names the PDM object type the rule guards: a node
    table (``assy``, ``comp``), the relation table (``link`` — this is how
    structure options and effectivities are expressed once relations are
    treated as first-class objects, paper example 3), or — for tree
    conditions — the type of the *root* of the tree being operated on.
    """

    user: str
    action: str
    object_type: str
    condition: Condition
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.user:
            raise RuleError("rule user must be non-empty (use '*' for any)")
        if self.action not in Actions.ALL:
            raise RuleError(
                f"unknown action {self.action!r}; expected one of {Actions.ALL}"
            )
        # Validate the condition is classifiable now, not at query time.
        classify(self.condition)

    @property
    def condition_class(self) -> ConditionClass:
        return classify(self.condition)

    def matches(self, user: str, action: str, object_type: str) -> bool:
        """True if this rule is *relevant* (paper footnote 9) for the given
        user, action and object type."""
        if self.user != ANY_USER and self.user != user:
            return False
        if self.action != Actions.ACCESS and self.action != action:
            return False
        return self.object_type.lower() == object_type.lower()

    def describe(self) -> str:
        """Human-readable 4-tuple rendering, as in the paper's examples."""
        label = f" [{self.name}]" if self.name else ""
        return (
            f"user: {self.user}  action: {self.action}  "
            f"type: {self.object_type}  class: {self.condition_class.value}"
            f"{label}"
        )
