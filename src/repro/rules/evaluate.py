"""Late (client-side) rule evaluation — the reference semantics.

The navigational baseline of the paper ships whole result sets to the
client and filters there.  This module implements that filtering over
plain attribute dictionaries, and it doubles as the specification the SQL
translations must match: the property-based tests assert that early
evaluation (predicates injected into queries) yields exactly the node set
this evaluator admits.

Rule combination semantics (Section 3.1 + 4.1): rules *permit*; several
relevant rules combine by OR; if no rule is relevant for a (user, action,
type), the object is permitted by default unless the caller opts into the
strict negative-biased mode.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import RuleError
from repro.rules import conditions as cond
from repro.rules.conditions import ConditionClass
from repro.rules.model import Rule

#: An object is a plain mapping of lowercase attribute names to values;
#: ``type`` and ``obid`` are always present.
ObjectAttrs = Dict[str, Any]


class EvaluationContext:
    """Everything the interpreter needs besides the object itself.

    ``functions`` supplies the client-side implementations of the stored
    functions used in conditions (they must agree with the server-side
    registrations — a deliberate invariant the tests check).

    ``related`` answers ∃structure probes:
    ``related(obid, relation_table, related_table) -> bool``.
    """

    def __init__(
        self,
        user_env: Optional[Dict[str, Any]] = None,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
        related: Optional[Callable[[Any, str, str], bool]] = None,
    ) -> None:
        self.user_env = dict(user_env or {})
        self.functions = dict(functions or {})
        self.related = related

    def call(self, name: str, args: List[Any]) -> Any:
        function = self.functions.get(name.lower())
        if function is None:
            raise RuleError(f"no client-side implementation of function {name!r}")
        return function(*args)


def eval_term(term: cond.Term, attrs: ObjectAttrs, ctx: EvaluationContext) -> Any:
    if isinstance(term, cond.Attribute):
        key = term.name.lower()
        if key not in attrs:
            raise RuleError(
                f"object of type {attrs.get('type')!r} has no attribute "
                f"{term.name!r}"
            )
        return attrs[key]
    if isinstance(term, cond.Const):
        return term.value
    if isinstance(term, cond.UserVar):
        if term.name not in ctx.user_env:
            raise RuleError(f"user environment lacks variable {term.name!r}")
        return ctx.user_env[term.name]
    if isinstance(term, cond.Apply):
        return ctx.call(
            term.function, [eval_term(arg, attrs, ctx) for arg in term.args]
        )
    raise RuleError(f"cannot evaluate term {term!r}")


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def eval_row_condition(
    condition: cond.Condition, attrs: ObjectAttrs, ctx: EvaluationContext
) -> bool:
    """Evaluate a row condition on one object.

    SQL's UNKNOWN maps to False here (a row only qualifies when the
    predicate is true), which keeps late and early evaluation aligned.
    """
    if isinstance(condition, cond.Comparison):
        left = eval_term(condition.left, attrs, ctx)
        right = eval_term(condition.right, attrs, ctx)
        if left is None or right is None:
            return False
        return bool(_COMPARATORS[condition.operator](left, right))
    if isinstance(condition, cond.BoolFunction):
        result = ctx.call(
            condition.function,
            [eval_term(arg, attrs, ctx) for arg in condition.args],
        )
        return bool(result) if result is not None else False
    if isinstance(condition, cond.Not):
        return not eval_row_condition(condition.operand, attrs, ctx)
    if isinstance(condition, cond.And):
        return eval_row_condition(condition.left, attrs, ctx) and eval_row_condition(
            condition.right, attrs, ctx
        )
    if isinstance(condition, cond.Or):
        return eval_row_condition(condition.left, attrs, ctx) or eval_row_condition(
            condition.right, attrs, ctx
        )
    raise RuleError(f"{type(condition).__name__} is not a row condition")


def object_permitted(
    rules: Sequence[Rule],
    attrs: ObjectAttrs,
    ctx: EvaluationContext,
    default_permit: bool = True,
) -> bool:
    """Combine the *relevant row rules* for one object by OR.

    ``rules`` must already be filtered to the object's type/user/action
    (use :meth:`repro.rules.ruletable.RuleTable.relevant`).  With
    ``default_permit=False`` the strict negative-biased semantics of the
    paper apply: no rule, no access.
    """
    row_rules = [
        rule for rule in rules if rule.condition_class is ConditionClass.ROW
    ]
    if not row_rules:
        return default_permit
    return any(
        eval_row_condition(rule.condition, attrs, ctx) for rule in row_rules
    )


def forall_holds(
    condition: cond.ForAllRows,
    nodes: Iterable[ObjectAttrs],
    ctx: EvaluationContext,
) -> bool:
    """∀rows over a node set: all (type-matching) nodes must satisfy."""
    for attrs in nodes:
        if (
            condition.object_type is not None
            and attrs.get("type") != condition.object_type
        ):
            continue
        if not eval_row_condition(condition.row_condition, attrs, ctx):
            return False
    return True


def exists_structure_holds(
    condition: cond.ExistsStructure, attrs: ObjectAttrs, ctx: EvaluationContext
) -> bool:
    """∃structure for one object: a related object must exist."""
    if ctx.related is None:
        raise RuleError(
            "evaluation context provides no related-object resolver"
        )
    return bool(
        ctx.related(
            attrs["obid"], condition.relation_table, condition.related_table
        )
    )


def tree_aggregate_holds(
    condition: cond.TreeAggregate,
    nodes: Iterable[ObjectAttrs],
    ctx: EvaluationContext,
) -> bool:
    """Tree-aggregate over a node set, compared against the threshold."""
    values: List[Any] = []
    count = 0
    for attrs in nodes:
        if (
            condition.object_type is not None
            and attrs.get("type") != condition.object_type
        ):
            continue
        count += 1
        if condition.attribute is not None:
            value = attrs.get(condition.attribute.lower())
            if value is not None:
                values.append(value)
    function = condition.function.upper()
    if function == "COUNT":
        aggregate: Any = count if condition.attribute is None else len(values)
    elif not values:
        return False  # SQL would compare against NULL -> UNKNOWN -> drop
    elif function == "SUM":
        aggregate = sum(values)
    elif function == "AVG":
        aggregate = sum(values) / len(values)
    elif function == "MAX":
        aggregate = max(values)
    else:
        aggregate = min(values)
    threshold = eval_term(condition.threshold, {}, ctx)
    if threshold is None:
        return False
    return bool(_COMPARATORS[condition.operator](aggregate, threshold))
