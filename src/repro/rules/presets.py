"""Ready-made rules for the standard PDM schema.

These are the rule shapes the paper's examples use, parameterised over the
user environment variables:

* :func:`structure_option_rules` — paper example 3: an object/relation is
  accessible iff its structure-option mask overlaps the user's selection
  (stored function ``options_overlap``).
* :func:`effectivity_rule` — links are traversable only if effective for
  the user-selected unit number (stored function ``is_effective``).
* :func:`checkout_all_checked_in_rule` — paper example 2: a subtree can be
  checked out only if every node is checked in (∀rows condition).
* :func:`make_not_buy_rule` — paper example 1.
"""

from __future__ import annotations

from typing import List

from repro.rules.conditions import (
    Attribute,
    BoolFunction,
    Comparison,
    Const,
    ForAllRows,
)
from repro.rules.model import ANY_USER, Actions, Rule

#: Conventional user-environment variable names.
USER_OPTIONS_VAR = "user_options"
EFFECTIVITY_UNIT_VAR = "effectivity_unit"


def structure_option_rules(
    object_types: tuple = ("assy", "comp", "link"),
    user: str = ANY_USER,
) -> List[Rule]:
    """One access rule per object type: option masks must overlap."""
    from repro.rules.conditions import UserVar

    return [
        Rule(
            user=user,
            action=Actions.ACCESS,
            object_type=object_type,
            condition=BoolFunction(
                "options_overlap",
                (Attribute("strc_opt"), UserVar(USER_OPTIONS_VAR)),
            ),
            name=f"options-{object_type}",
        )
        for object_type in object_types
    ]


def effectivity_rule(user: str = ANY_USER) -> Rule:
    """Links are traversable only when effective for the selected unit.

    Paper Section 3.1: "objects are included in a current product only if
    the associated effectivity overlaps the effectivity selected by the
    user" — here the user selects a single unit number.
    """
    from repro.rules.conditions import UserVar

    return Rule(
        user=user,
        action=Actions.ACCESS,
        object_type="link",
        condition=BoolFunction(
            "is_effective",
            (
                Attribute("eff_from"),
                Attribute("eff_to"),
                UserVar(EFFECTIVITY_UNIT_VAR),
            ),
        ),
        name="effectivity",
    )


def checkout_all_checked_in_rule(user: str = ANY_USER) -> Rule:
    """Paper example 2: check-out permitted iff the subtree is checked in."""
    return Rule(
        user=user,
        action=Actions.CHECK_OUT,
        object_type="assy",
        condition=ForAllRows(
            Comparison("=", Attribute("checkedout"), Const(False))
        ),
        name="all-checked-in",
    )


def make_not_buy_rule(user: str = "scott") -> Rule:
    """Paper example 1: Scott may multi-level expand assemblies that are
    not bought from a supplier."""
    return Rule(
        user=user,
        action=Actions.MULTI_LEVEL_EXPAND,
        object_type="assy",
        condition=Comparison("<>", Attribute("make_or_buy"), Const("buy")),
        name="make-not-buy",
    )
