"""Configuration rules: dependencies between structure options.

Paper Section 3.1: "during the configuration process not every
combination of the offered features is valid.  For example it is not
possible to choose a cabriolet together with a sunroof.  Such dependencies
between structure options are handled by so-called configuration rules.
In contrast to the evaluation of structure options, configuration rules
can be evaluated by accessing the selected structure options only ...  no
product data need to be retrieved from the database."

Accordingly this module is purely client-side: an :class:`OptionCatalog`
names the option bits, configuration rules constrain selections, and a
:class:`Configurator` validates a user's selection before any query is
built.  The PDM client refuses to start a session with an invalid
selection — the cheapest possible rule evaluation, zero WAN messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import RuleError


class OptionCatalog:
    """Registry of named structure options, each mapped to one mask bit."""

    def __init__(self, names: Sequence[str] = ()) -> None:
        self._bits: Dict[str, int] = {}
        for name in names:
            self.define(name)

    def define(self, name: str) -> int:
        """Register *name* and return its bit mask."""
        key = name.lower()
        if key in self._bits:
            raise RuleError(f"option {name!r} is already defined")
        if len(self._bits) >= 63:
            raise RuleError("option catalog is full (63 options)")
        bit = 1 << len(self._bits)
        self._bits[key] = bit
        return bit

    def bit(self, name: str) -> int:
        try:
            return self._bits[name.lower()]
        except KeyError:
            raise RuleError(f"unknown option {name!r}") from None

    def names(self) -> List[str]:
        return list(self._bits)

    def mask_of(self, names: Iterable[str]) -> int:
        """Combined mask of several options."""
        mask = 0
        for name in names:
            mask |= self.bit(name)
        return mask

    def names_of(self, mask: int) -> List[str]:
        """Option names contained in *mask* (unknown bits ignored)."""
        return [name for name, bit in self._bits.items() if mask & bit]


class ConfigurationRule:
    """Base class of configuration rules.

    ``check(mask, catalog)`` returns None when satisfied, otherwise a
    human-readable violation message.
    """

    def check(self, mask: int, catalog: OptionCatalog):
        raise NotImplementedError


@dataclass(frozen=True)
class Excludes(ConfigurationRule):
    """Two options must not be selected together (cabriolet vs sunroof)."""

    first: str
    second: str

    def check(self, mask: int, catalog: OptionCatalog):
        if mask & catalog.bit(self.first) and mask & catalog.bit(self.second):
            return (
                f"options {self.first!r} and {self.second!r} exclude each "
                f"other"
            )
        return None


@dataclass(frozen=True)
class Requires(ConfigurationRule):
    """Selecting ``dependent`` requires ``prerequisite``."""

    dependent: str
    prerequisite: str

    def check(self, mask: int, catalog: OptionCatalog):
        if mask & catalog.bit(self.dependent) and not (
            mask & catalog.bit(self.prerequisite)
        ):
            return (
                f"option {self.dependent!r} requires {self.prerequisite!r}"
            )
        return None


@dataclass(frozen=True)
class ExactlyOneOf(ConfigurationRule):
    """Exactly one option of a group must be selected (e.g. one engine)."""

    group: Tuple[str, ...]

    def __init__(self, group: Iterable[str]) -> None:
        object.__setattr__(self, "group", tuple(group))

    def check(self, mask: int, catalog: OptionCatalog):
        selected = [
            name for name in self.group if mask & catalog.bit(name)
        ]
        if len(selected) != 1:
            return (
                f"exactly one of {', '.join(self.group)} must be selected "
                f"(got {len(selected)})"
            )
        return None


@dataclass
class Configurator:
    """Validates option selections against the configuration rules."""

    catalog: OptionCatalog
    rules: List[ConfigurationRule] = field(default_factory=list)

    def add_rule(self, rule: ConfigurationRule) -> None:
        self.rules.append(rule)

    def violations(self, selection: Iterable[str]) -> List[str]:
        """All violated rules for a selection of option names."""
        mask = self.catalog.mask_of(selection)
        return self.violations_of_mask(mask)

    def violations_of_mask(self, mask: int) -> List[str]:
        messages = []
        for rule in self.rules:
            message = rule.check(mask, self.catalog)
            if message is not None:
                messages.append(message)
        return messages

    def validate(self, selection: Iterable[str]) -> int:
        """Return the selection mask, or raise :class:`RuleError` listing
        every violation (no WAN message was needed to decide)."""
        selection = list(selection)
        mask = self.catalog.mask_of(selection)
        messages = self.violations_of_mask(mask)
        if messages:
            raise RuleError(
                "invalid configuration: " + "; ".join(messages)
            )
        return mask

    def valid_completions(self, selection: Iterable[str]) -> List[str]:
        """Options that could still be added without violating a rule —
        the interactive configurator's next-choice list."""
        base = list(selection)
        completions = []
        for name in self.catalog.names():
            if name in base:
                continue
            if not self.violations(base + [name]):
                completions.append(name)
        return completions
