"""The client-side rule table (paper Section 5.5).

Rules are introduced by administrators; their conditions are translated
into the SQL-conformal representation *once* ("directly after the
definition of a new rule", Section 4.1) and stored — here per user
environment, because user variables are bound into the translation.  The
query modificator then only reads translated predicates out of the table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuleError
from repro.rules import translate
from repro.rules.conditions import ConditionClass
from repro.rules.model import Rule
from repro.sqldb import ast_nodes as ast
from repro.sqldb.render import render_expression


class TranslatedRule:
    """A rule plus its pre-translated SQL predicate pieces.

    For row conditions ``predicate_for(alias)`` re-qualifies the stored
    translation; tree conditions are translated against the CTE name when
    the modificator runs (the CTE name is a property of the query, not of
    the rule).
    """

    def __init__(self, rule: Rule, user_env: Dict[str, object]) -> None:
        self.rule = rule
        self.user_env = dict(user_env)
        self.condition_class = rule.condition_class
        #: Display form stored alongside, as the paper suggests keeping the
        #: translated representation in a client-side table.
        if self.condition_class is ConditionClass.ROW:
            self.sql_text = render_expression(
                translate.translate_row_condition(
                    rule.condition, rule.object_type, self.user_env
                )
            )
        else:
            self.sql_text = f"<{self.condition_class.value}>"

    def row_predicate(self, qualifier: Optional[str]) -> ast.Expression:
        """Translated row-condition predicate under a given table alias."""
        if self.condition_class is not ConditionClass.ROW:
            raise RuleError("rule does not hold a row condition")
        return translate.translate_row_condition(
            self.rule.condition, qualifier, self.user_env
        )

    def forall_predicate(self, cte_name: str) -> ast.Expression:
        if self.condition_class is not ConditionClass.FORALL_ROWS:
            raise RuleError("rule does not hold a forall-rows condition")
        return translate.translate_forall(
            self.rule.condition, cte_name, self.user_env
        )

    def aggregate_predicate(self, cte_name: str) -> ast.Expression:
        if self.condition_class is not ConditionClass.TREE_AGGREGATE:
            raise RuleError("rule does not hold a tree-aggregate condition")
        return translate.translate_tree_aggregate(
            self.rule.condition, cte_name, self.user_env
        )

    def exists_predicate(self, object_alias: str) -> ast.Expression:
        if self.condition_class is not ConditionClass.EXISTS_STRUCTURE:
            raise RuleError("rule does not hold an exists-structure condition")
        return translate.translate_exists_structure(
            self.rule.condition, object_alias
        )


class RuleTable:
    """All rules known to one client, with translation caching per user."""

    def __init__(self, rules: Sequence[Rule] = ()) -> None:
        self._rules: List[Rule] = []
        self._translated: Dict[Tuple[int, Tuple[Tuple[str, object], ...]], TranslatedRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        """Register a new rule (administrator action, Section 5.5)."""
        self._rules.append(rule)

    def remove(self, rule: Rule) -> None:
        self._rules.remove(rule)
        self._translated = {
            key: value
            for key, value in self._translated.items()
            if value.rule is not rule
        }

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def relevant(
        self,
        user: str,
        action: str,
        object_type: str,
        condition_class: Optional[ConditionClass] = None,
    ) -> List[Rule]:
        """Rules relevant for (user, action, object type) — paper footnote
        9 — optionally filtered by condition class (the "flag" that
        "qualifies the different condition types", Section 5.5)."""
        rules = [
            rule
            for rule in self._rules
            if rule.matches(user, action, object_type)
        ]
        if condition_class is not None:
            rules = [
                rule for rule in rules if rule.condition_class is condition_class
            ]
        return rules

    def translated(
        self, rule: Rule, user_env: Dict[str, object]
    ) -> TranslatedRule:
        """The (cached) translated form of *rule* under *user_env*."""
        key = (id(rule), tuple(sorted(user_env.items())))
        cached = self._translated.get(key)
        if cached is None:
            cached = TranslatedRule(rule, user_env)
            self._translated[key] = cached
        return cached

    def object_types(self) -> List[str]:
        """All object types any rule refers to."""
        return sorted({rule.object_type.lower() for rule in self._rules})
