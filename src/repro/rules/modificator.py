"""The query modificator — paper Section 5.5, steps A-D.

The modificator operates on a *structured* query spec, not on SQL text:
every SELECT block of the recursive query carries metadata (which PDM
object type it retrieves, which tables its FROM clause refers to, whether
it sits inside the recursive part).  Steps A-D then append the translated
rule predicates to exactly the WHERE clauses the paper prescribes:

* **A** ∀rows conditions       → outer SELECTs (all-or-nothing).
* **B** tree-aggregate conditions → outer SELECTs.
* **C** ∃structure conditions  → recursive-part SELECTs referring to the
  condition's object type O (grouped and OR-combined per type).
* **D** row conditions          → every SELECT, inside or outside, whose
  FROM clause refers to the condition's object type.

The remark at the end of Section 5.5 — combining ∃structure with ∀rows
conditions forces the ∃structure probes *outside* the recursion, against
the homogenised result with a type discriminator — is implemented as the
``ExistsPlacement.OUTSIDE`` mode.  Finally, a query hidden behind a view
(:class:`OpaqueQuery`) cannot be modified at all; the modificator raises
:class:`QueryModificationError`, as the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import QueryModificationError
from repro.rules.conditions import ConditionClass
from repro.rules.model import Rule
from repro.rules.ruletable import RuleTable
from repro.rules.translate import and_append, disjunction
from repro.sqldb import ast_nodes as ast


class BlockRole(Enum):
    """Position of a SELECT block within the recursive query."""

    SEED = "seed"  # non-recursive branch of the CTE
    RECURSIVE = "recursive"  # recursive branch of the CTE
    OUTER_NODES = "outer-nodes"  # outer SELECT over the homogenised CTE
    OUTER_LINKS = "outer-links"  # outer SELECT retrieving link objects


@dataclass
class SelectBlock:
    """One SELECT of the overall query, with modification metadata.

    ``tables`` maps lowercase table names appearing in this block's FROM
    clause to the alias under which attribute references must be qualified
    (paper step D: "refer to t in their FROM clause").
    ``object_type`` is the PDM type this block *retrieves* (step C).
    """

    core: ast.SelectCore
    role: BlockRole
    object_type: Optional[str] = None
    tables: Dict[str, str] = field(default_factory=dict)

    @property
    def in_recursive_part(self) -> bool:
        return self.role in (BlockRole.SEED, BlockRole.RECURSIVE)

    def append_predicate(self, predicate: ast.Expression) -> None:
        self.core.where = and_append(self.core.where, predicate)


@dataclass
class RecursiveQuerySpec:
    """A structured recursive tree query (paper Section 5.2 shape)."""

    cte_name: str
    columns: List[str]
    root_type: str
    seed_blocks: List[SelectBlock] = field(default_factory=list)
    recursive_blocks: List[SelectBlock] = field(default_factory=list)
    outer_blocks: List[SelectBlock] = field(default_factory=list)
    order_by: List[ast.OrderItem] = field(default_factory=list)

    def all_blocks(self) -> List[SelectBlock]:
        return self.seed_blocks + self.recursive_blocks + self.outer_blocks

    def to_statement(self) -> ast.SelectStatement:
        """Assemble the final SELECT statement (UNION-combined)."""
        cte_body = _union_chain(
            [block.core for block in self.seed_blocks + self.recursive_blocks]
        )
        outer_body = _union_chain([block.core for block in self.outer_blocks])
        return ast.SelectStatement(
            body=outer_body,
            with_clause=ast.WithClause(
                recursive=True,
                ctes=[
                    ast.CommonTableExpr(
                        name=self.cte_name,
                        columns=list(self.columns),
                        body=cte_body,
                    )
                ],
            ),
            order_by=list(self.order_by),
        )


@dataclass
class NavigationalQuerySpec:
    """A navigational (single-step) query: one or more UNION ALL blocks.

    Used by approach 1 (Section 4.1) where only row conditions can be
    evaluated early.
    """

    blocks: List[SelectBlock] = field(default_factory=list)
    order_by: List[ast.OrderItem] = field(default_factory=list)

    def to_statement(self) -> ast.SelectStatement:
        body = _union_chain(
            [block.core for block in self.blocks], operator="UNION ALL"
        )
        return ast.SelectStatement(body=body, order_by=list(self.order_by))


@dataclass(frozen=True)
class OpaqueQuery:
    """A query whose structure is hidden (e.g. behind a view).

    "As the query structure is not visible to the query modificator, the
    proposed modifications cannot be performed." (Section 5.5)
    """

    sql: str
    description: str = "view"


class ExistsPlacement(Enum):
    """Where step C puts ∃structure probes (see module docstring)."""

    INSIDE = "inside"  # filter during recursion: invisible subtrees pruned
    OUTSIDE = "outside"  # filter the homogenised result after recursion


class QueryModificator:
    """Applies the relevant rules of one user to query specs."""

    def __init__(
        self,
        rule_table: RuleTable,
        user: str,
        user_env: Optional[Dict[str, object]] = None,
    ) -> None:
        self.rule_table = rule_table
        self.user = user
        self.user_env = dict(user_env or {})

    # -- public API --------------------------------------------------------

    def modify_recursive(
        self,
        spec,
        action: str,
        exists_placement: ExistsPlacement = ExistsPlacement.INSIDE,
    ) -> "RecursiveQuerySpec":
        """Apply steps A-D to a recursive query spec (mutates and returns
        it).  Raises :class:`QueryModificationError` for opaque queries."""
        if isinstance(spec, OpaqueQuery):
            raise QueryModificationError(
                f"cannot modify a query hidden in a {spec.description}: "
                f"its structure is not visible to the query modificator"
            )
        self._apply_forall(spec, action)  # step A
        self._apply_tree_aggregates(spec, action)  # step B
        self._apply_exists_structure(spec, action, exists_placement)  # step C
        self._apply_row_conditions(spec.all_blocks(), action)  # step D
        return spec

    def modify_navigational(self, spec, action: str) -> "NavigationalQuerySpec":
        """Approach 1 (Section 4.1): only row conditions are folded into a
        navigational query — arbitrary tree conditions cannot be evaluated
        within a single-step query."""
        if isinstance(spec, OpaqueQuery):
            raise QueryModificationError(
                f"cannot modify a query hidden in a {spec.description}"
            )
        self._apply_row_conditions(spec.blocks, action)
        return spec

    # -- steps A-D -----------------------------------------------------------

    def _tree_rules(
        self, spec: RecursiveQuerySpec, action: str, condition_class: ConditionClass
    ) -> List[Rule]:
        return self.rule_table.relevant(
            self.user, action, spec.root_type, condition_class
        )

    def _apply_forall(self, spec: RecursiveQuerySpec, action: str) -> None:
        rules = self._tree_rules(spec, action, ConditionClass.FORALL_ROWS)
        if not rules:
            return
        predicates = [
            self.rule_table.translated(rule, self.user_env).forall_predicate(
                spec.cte_name
            )
            for rule in rules
        ]
        combined = disjunction(predicates)
        for block in spec.outer_blocks:
            block.append_predicate(combined)

    def _apply_tree_aggregates(self, spec: RecursiveQuerySpec, action: str) -> None:
        rules = self._tree_rules(spec, action, ConditionClass.TREE_AGGREGATE)
        if not rules:
            return
        predicates = [
            self.rule_table.translated(rule, self.user_env).aggregate_predicate(
                spec.cte_name
            )
            for rule in rules
        ]
        combined = disjunction(predicates)
        for block in spec.outer_blocks:
            block.append_predicate(combined)

    def _apply_exists_structure(
        self,
        spec: RecursiveQuerySpec,
        action: str,
        placement: ExistsPlacement,
    ) -> None:
        rules = self._tree_rules(spec, action, ConditionClass.EXISTS_STRUCTURE)
        if not rules:
            return
        # Step C.8: group the conditions by the object type O they test.
        by_type: Dict[str, List[Rule]] = {}
        for rule in rules:
            by_type.setdefault(rule.condition.object_type.lower(), []).append(rule)
        if placement is ExistsPlacement.INSIDE:
            for object_type, group in by_type.items():
                for block in spec.seed_blocks + spec.recursive_blocks:
                    if (block.object_type or "").lower() != object_type:
                        continue
                    alias = block.tables.get(object_type, object_type)
                    predicates = [
                        self.rule_table.translated(
                            rule, self.user_env
                        ).exists_predicate(alias)
                        for rule in group
                    ]
                    block.append_predicate(disjunction(predicates))
            return
        # OUTSIDE placement (the Section 5.5 remark): the probes move to the
        # outer node SELECT, correlate on the homogenised CTE columns and
        # must consider the type discriminator of the result tuples.
        for block in spec.outer_blocks:
            if block.role is not BlockRole.OUTER_NODES:
                continue
            cte_alias = block.tables.get(spec.cte_name.lower(), spec.cte_name)
            for object_type, group in by_type.items():
                probes = [
                    self.rule_table.translated(rule, self.user_env).exists_predicate(
                        cte_alias
                    )
                    for rule in group
                ]
                guarded = ast.BinaryOp(
                    operator="OR",
                    left=ast.BinaryOp(
                        operator="<>",
                        left=ast.ColumnRef(name="type", qualifier=None),
                        right=ast.Literal(value=object_type),
                    ),
                    right=disjunction(probes),
                )
                block.append_predicate(guarded)

    def _apply_row_conditions(self, blocks: List[SelectBlock], action: str) -> None:
        # Step D.11: row conditions for any object type occurring in the
        # query; access rules apply regardless of the action (handled by
        # Rule.matches, which treats 'access' as always-relevant).
        for block in blocks:
            for table_name, alias in block.tables.items():
                rules = self.rule_table.relevant(
                    self.user, action, table_name, ConditionClass.ROW
                )
                if not rules:
                    continue
                predicates = [
                    self.rule_table.translated(rule, self.user_env).row_predicate(
                        alias
                    )
                    for rule in rules
                ]
                block.append_predicate(disjunction(predicates))


def _union_chain(cores: List[ast.SelectCore], operator: str = "UNION"):
    """Combine SELECT cores with a left-associated set-operation chain."""
    if not cores:
        raise QueryModificationError("query spec has no SELECT blocks")
    body = cores[0]
    for core in cores[1:]:
        body = ast.SetOperation(operator=operator, left=body, right=core)
    return body
