"""Rules and conditions of the PDM system (paper Section 3) and their
translation into SQL (Sections 4.1, 5.3) plus the query modificator
(Section 5.5).

The packages split responsibilities exactly along the paper's pipeline:

* :mod:`repro.rules.conditions` — the condition taxonomy of Figure 1
  (row conditions; ∀rows, ∃structure and tree-aggregate tree conditions).
* :mod:`repro.rules.model` — rules as (user, action, object type,
  condition) 4-tuples.
* :mod:`repro.rules.evaluate` — the *late* (client-side) evaluator; this
  is the reference semantics the SQL translations must reproduce.
* :mod:`repro.rules.translate` — conditions → SQL predicate ASTs.
* :mod:`repro.rules.ruletable` — the client-side table of translated
  conditions consulted by the query modificator.
* :mod:`repro.rules.modificator` — steps A-D of Section 5.5: inject the
  translated predicates into the right WHERE clauses of a structured
  query spec.
"""

from repro.rules.conditions import (
    And,
    Apply,
    Attribute,
    Comparison,
    Condition,
    ConditionClass,
    Const,
    ExistsStructure,
    ForAllRows,
    Not,
    Or,
    TreeAggregate,
    UserVar,
    classify,
)
from repro.rules.configuration import (
    Configurator,
    ExactlyOneOf,
    Excludes,
    OptionCatalog,
    Requires,
)
from repro.rules.model import Actions, Rule
from repro.rules.modificator import QueryModificator
from repro.rules.presets import (
    checkout_all_checked_in_rule,
    effectivity_rule,
    make_not_buy_rule,
    structure_option_rules,
)
from repro.rules.ruletable import RuleTable

__all__ = [
    "Attribute",
    "Const",
    "UserVar",
    "Apply",
    "Comparison",
    "And",
    "Or",
    "Not",
    "ForAllRows",
    "ExistsStructure",
    "TreeAggregate",
    "Condition",
    "ConditionClass",
    "classify",
    "Rule",
    "Actions",
    "RuleTable",
    "QueryModificator",
    "OptionCatalog",
    "Configurator",
    "Excludes",
    "Requires",
    "ExactlyOneOf",
    "structure_option_rules",
    "effectivity_rule",
    "checkout_all_checked_in_rule",
    "make_not_buy_rule",
]
