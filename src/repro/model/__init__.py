"""The paper's analytic response-time model (Section 2, 4.2, 5.4).

Everything in this package is closed-form: given tree parameters
(δ depth, κ branching, σ visibility), network parameters (T_Lat, dtr,
packet size, node size) and a (action, strategy) pair, it predicts the
number of queries, communications, the transferred volume, and the
response time.  :mod:`repro.model.tables` arranges these predictions into
the exact row/column layout of Tables 2-4 and Figures 4-5.
"""

from repro.model.parameters import (
    NetworkParameters,
    TreeParameters,
    PAPER_NETWORKS,
    PAPER_TREES,
)
from repro.model.crossover import (
    latency_where_saving_reaches,
    max_latency_for_budget,
    min_bandwidth_for_budget,
    response_time_at,
)
from repro.model.response_time import (
    Action,
    Strategy,
    FaultyResponseTimePrediction,
    ResponseTimePrediction,
    predict,
    predict_with_faults,
    saving_percent,
    t_batched,
)
from repro.model.trees import (
    expected_visible_nodes,
    full_node_count,
    level_width,
    transmitted_nodes,
    visible_node_count,
)

__all__ = [
    "NetworkParameters",
    "TreeParameters",
    "PAPER_NETWORKS",
    "PAPER_TREES",
    "Action",
    "Strategy",
    "ResponseTimePrediction",
    "FaultyResponseTimePrediction",
    "predict",
    "predict_with_faults",
    "saving_percent",
    "t_batched",
    "full_node_count",
    "visible_node_count",
    "expected_visible_nodes",
    "level_width",
    "transmitted_nodes",
    "response_time_at",
    "max_latency_for_budget",
    "min_bandwidth_for_budget",
    "latency_where_saving_reaches",
]
