"""Node-count formulas for complete κ-ary trees (paper Section 2).

The root is assumed to be at the client already and is never counted
(footnote 4).  With visibility probability σ, the *expected* number of
visible nodes at level i is (σκ)^i — the paper works with these
expectations directly, which is why query counts are non-integral.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model.parameters import TreeParameters


def level_width(tree: TreeParameters, level: int) -> int:
    """Number of nodes at *level* (root = level 0) of the full tree."""
    if not 0 <= level <= tree.depth:
        raise ModelError(
            f"level {level} outside tree of depth {tree.depth}"
        )
    return tree.branching**level


def full_node_count(tree: TreeParameters) -> int:
    """All nodes below the root: Σ_{i=1..δ} κ^i."""
    return sum(tree.branching**i for i in range(1, tree.depth + 1))


def expected_visible_nodes(tree: TreeParameters, level: int) -> float:
    """Expected visible nodes at *level*: (σκ)^i.

    A node is visible only if every branch on its root path is visible,
    hence the power of the product σκ.
    """
    if not 0 <= level <= tree.depth:
        raise ModelError(
            f"level {level} outside tree of depth {tree.depth}"
        )
    return (tree.visibility * tree.branching) ** level


def visible_node_count(tree: TreeParameters) -> float:
    """Expected visible nodes below the root: n_v(t) = Σ_{i=1..δ} (σκ)^i
    (paper equation (1) ff.)."""
    return sum(expected_visible_nodes(tree, i) for i in range(1, tree.depth + 1))


def transmitted_nodes(tree: TreeParameters, action: str, early: bool) -> float:
    """Expected transmitted nodes n_t(t) for an action (Section 2 table).

    ``action`` is ``"query"``, ``"expand"`` or ``"mle"``.  With late rule
    evaluation the server ships every child it finds; with early evaluation
    only visible nodes cross the wire.
    """
    sigma_kappa = tree.visibility * tree.branching
    if action == "query":
        if early:
            return visible_node_count(tree)
        return float(full_node_count(tree))
    if action == "expand":
        if early:
            return sigma_kappa
        return float(tree.branching)
    if action == "mle":
        if early:
            return visible_node_count(tree)
        # Navigational late evaluation expands every *visible* internal
        # node and receives all κ of its children (visible or not):
        # κ · Σ_{i=0..δ-1} (σκ)^i.
        return tree.branching * sum(
            sigma_kappa**i for i in range(tree.depth)
        )
    raise ModelError(f"unknown action {action!r}")


def navigational_query_count(tree: TreeParameters, action: str) -> float:
    """Expected number of SQL queries q_s for the navigational strategy.

    * ``query``: a single set-oriented SELECT.
    * ``expand``: one child-fetch for the root.
    * ``mle``: the root expansion plus one expansion per visible node at
      depths 1..δ (visible leaves are probed too and return empty); the
      "+1" is pinned by reproducing Table 2's latency column exactly.
    """
    if action in ("query", "expand"):
        return 1.0
    if action == "mle":
        return 1.0 + visible_node_count(tree)
    raise ModelError(f"unknown action {action!r}")
