"""Closed-form capacity-planning helpers on top of the response-time model.

The response time of every strategy is affine in both the latency and the
inverse data rate (equations (4)/(6)):

    T(T_Lat, dtr) = c * T_Lat + vol / dtr

so questions like "below which latency does the navigational MLE stay
interactive?" or "at which latency does the recursive query save 95 %?"
have exact solutions — no simulation needed.  These helpers power
what-if planning (see ``examples/capacity_planning.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ModelError
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict


def _cost_terms(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
):
    """(communications, volume_bytes) of the action — the affine
    coefficients of the response-time function."""
    prediction = predict(action, strategy, tree, network)
    return prediction.communications, prediction.volume_bytes


def response_time_at(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
    latency_s: Optional[float] = None,
    dtr_kbit_s: Optional[float] = None,
) -> float:
    """Response time with latency and/or data rate overridden."""
    override = NetworkParameters(
        latency_s=network.latency_s if latency_s is None else latency_s,
        dtr_kbit_s=network.dtr_kbit_s if dtr_kbit_s is None else dtr_kbit_s,
        packet_bytes=network.packet_bytes,
        node_bytes=network.node_bytes,
    )
    return predict(action, strategy, tree, override).total_seconds


def max_latency_for_budget(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
    budget_seconds: float,
) -> Optional[float]:
    """Largest latency at which the action finishes within the budget.

    Returns None when the transfer time alone already exceeds the budget
    (no latency improvement can help — the link needs more bandwidth).
    """
    if budget_seconds <= 0:
        raise ModelError("the response-time budget must be positive")
    communications, volume = _cost_terms(action, strategy, tree, network)
    transfer = network.transfer_seconds(volume)
    if transfer >= budget_seconds:
        return None
    return (budget_seconds - transfer) / communications


def min_bandwidth_for_budget(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
    budget_seconds: float,
) -> Optional[float]:
    """Smallest data rate (kbit/s) meeting the budget at the network's
    latency; None when the latency share alone exceeds the budget (no
    amount of bandwidth can help — fewer round trips are needed)."""
    if budget_seconds <= 0:
        raise ModelError("the response-time budget must be positive")
    communications, volume = _cost_terms(action, strategy, tree, network)
    latency_share = communications * network.latency_s
    if latency_share >= budget_seconds:
        return None
    return (volume * 8.0 / (budget_seconds - latency_share)) / 1024.0


def latency_where_saving_reaches(
    tree: TreeParameters,
    network: NetworkParameters,
    target_saving_percent: float,
    baseline: Strategy = Strategy.LATE,
    improved: Strategy = Strategy.RECURSIVE,
    action: Action = Action.MLE,
) -> Optional[float]:
    """Latency at which the improved strategy's saving hits the target.

    The saving grows monotonically with the latency (the improved
    strategy's advantage is mostly eliminated round trips), so this is
    the *threshold above which* the target is met.  Returns 0.0 when the
    target is already met on a zero-latency link, and None when it is
    unreachable at any latency (the asymptotic saving ``1 - c_i/c_b`` is
    below the target).
    """
    if not 0 < target_saving_percent < 100:
        raise ModelError("target saving must be within (0, 100) percent")
    share = 1.0 - target_saving_percent / 100.0
    base_comm, base_volume = _cost_terms(action, baseline, tree, network)
    improved_comm, improved_volume = _cost_terms(action, improved, tree, network)
    base_transfer = network.transfer_seconds(base_volume)
    improved_transfer = network.transfer_seconds(improved_volume)
    # Solve improved_comm*T + improved_transfer = share*(base_comm*T + base_transfer).
    denominator = share * base_comm - improved_comm
    numerator = improved_transfer - share * base_transfer
    if denominator <= 0:
        # Even infinite latency cannot reach the target share.
        return None
    threshold = numerator / denominator
    return max(0.0, threshold)


def saving_is_monotone_in_latency(
    tree: TreeParameters,
    network: NetworkParameters,
    action: Action = Action.MLE,
    baseline: Strategy = Strategy.LATE,
    improved: Strategy = Strategy.RECURSIVE,
) -> bool:
    """True when the improved strategy eliminates round trips (then its
    relative saving can only grow with the latency)."""
    base_comm, __ = _cost_terms(action, baseline, tree, network)
    improved_comm, __ = _cost_terms(action, improved, tree, network)
    return improved_comm < base_comm
