"""Arrange model predictions into the paper's tables and figures.

Each ``table*_rows`` function returns structured records; ``format_table``
renders them in a layout mirroring the paper (scenarios as column groups,
network rows split into latency part / transfer part / total).  The
benchmark harness prints these next to the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.model.parameters import (
    FIGURE4_NETWORK,
    FIGURE4_TREE,
    FIGURE5_NETWORK,
    FIGURE5_TREE,
    NetworkParameters,
    PAPER_NETWORKS,
    PAPER_TREES,
    TreeParameters,
)
from repro.model.response_time import (
    Action,
    ResponseTimePrediction,
    Strategy,
    predict,
    saving_percent,
)

#: Column order of every table: Query, (single-level) Expand, MLE.
TABLE_ACTIONS = (Action.QUERY, Action.EXPAND, Action.MLE)


@dataclass(frozen=True)
class TableCell:
    """One (scenario, network, action) cell with its breakdown."""

    tree: TreeParameters
    network: NetworkParameters
    action: Action
    strategy: Strategy
    prediction: ResponseTimePrediction
    saving_vs_late: float  # percent; 0.0 for the late-eval table itself


def _cells(strategy: Strategy) -> List[TableCell]:
    cells: List[TableCell] = []
    for network in PAPER_NETWORKS:
        for tree in PAPER_TREES:
            for action in TABLE_ACTIONS:
                prediction = predict(action, strategy, tree, network)
                late = predict(action, Strategy.LATE, tree, network)
                cells.append(
                    TableCell(
                        tree=tree,
                        network=network,
                        action=action,
                        strategy=strategy,
                        prediction=prediction,
                        saving_vs_late=saving_percent(
                            late.total_seconds, prediction.total_seconds
                        ),
                    )
                )
    return cells


def table2_cells() -> List[TableCell]:
    """Table 2: late evaluation (the baseline; savings are all zero)."""
    return _cells(Strategy.LATE)


def table3_cells() -> List[TableCell]:
    """Table 3: early rule evaluation with navigational queries."""
    return _cells(Strategy.EARLY)


def table4_cells() -> List[TableCell]:
    """Table 4: recursive queries + early evaluation (MLE column only, as
    in the paper — the other actions are unchanged vs Table 3)."""
    return [cell for cell in _cells(Strategy.RECURSIVE) if cell.action is Action.MLE]


def cell_lookup(
    cells: Sequence[TableCell],
) -> Dict[Tuple[float, float, int, int, str], TableCell]:
    """Index cells by (latency, dtr, depth, branching, action name)."""
    return {
        (
            cell.network.latency_s,
            cell.network.dtr_kbit_s,
            cell.tree.depth,
            cell.tree.branching,
            cell.action.value,
        ): cell
        for cell in cells
    }


def figure_series(
    tree: TreeParameters, network: NetworkParameters
) -> Dict[str, Dict[str, float]]:
    """Bar-chart series for Figures 4/5.

    Returns ``{strategy_label: {action_label: seconds}}`` with the
    strategies in the figures' x-axis order (late eval, early eval,
    recursion).
    """
    series: Dict[str, Dict[str, float]] = {}
    for strategy, label in (
        (Strategy.LATE, "late eval"),
        (Strategy.EARLY, "early eval"),
        (Strategy.RECURSIVE, "recursion"),
    ):
        series[label] = {
            action.name: predict(action, strategy, tree, network).total_seconds
            for action in TABLE_ACTIONS
        }
    return series


def figure4_series() -> Dict[str, Dict[str, float]]:
    """Figure 4: δ=9, κ=3, σ=0.6, T_Lat=150 ms, dtr=512 kbit/s."""
    return figure_series(FIGURE4_TREE, FIGURE4_NETWORK)


def figure5_series() -> Dict[str, Dict[str, float]]:
    """Figure 5: δ=7, κ=5, σ=0.6, T_Lat=150 ms, dtr=256 kbit/s."""
    return figure_series(FIGURE5_TREE, FIGURE5_NETWORK)


def format_table(cells: Sequence[TableCell], with_saving: bool) -> str:
    """Render cells in the paper's layout (text table)."""
    lines: List[str] = []
    trees = list(PAPER_TREES)
    actions = [a for a in TABLE_ACTIONS if any(c.action is a for c in cells)]
    header = ["network"]
    for tree in trees:
        for action in actions:
            header.append(
                f"d{tree.depth}k{tree.branching} {action.name}"
            )
    widths = [max(12, len(h) + 1) for h in header]
    lines.append(" ".join(h.rjust(w) for h, w in zip(header, widths)))
    index = cell_lookup(cells)
    for network in PAPER_NETWORKS:
        for part in ("latency", "transfer", "total") + (
            ("saving %",) if with_saving else ()
        ):
            row = [f"{network.label} {part}"]
            for tree in trees:
                for action in actions:
                    cell = index.get(
                        (
                            network.latency_s,
                            network.dtr_kbit_s,
                            tree.depth,
                            tree.branching,
                            action.value,
                        )
                    )
                    if cell is None:
                        row.append("-")
                        continue
                    prediction = cell.prediction
                    if part == "latency":
                        row.append(f"{prediction.latency_seconds:.2f}")
                    elif part == "transfer":
                        row.append(f"{prediction.transfer_seconds:.2f}")
                    elif part == "total":
                        row.append(f"{prediction.total_seconds:.2f}")
                    else:
                        row.append(f"{cell.saving_vs_late:.2f}")
            widths2 = [max(28, len(row[0]) + 1)] + widths[1:]
            lines.append(" ".join(v.rjust(w) for v, w in zip(row, widths2)))
        lines.append("")
    return "\n".join(lines)


def format_figure(series: Dict[str, Dict[str, float]], title: str) -> str:
    """Render a figure's bar values as an ASCII chart."""
    lines = [title]
    peak = max(
        value for bars in series.values() for value in bars.values()
    )
    scale = 50.0 / peak if peak > 0 else 0.0
    for strategy, bars in series.items():
        lines.append(f"  {strategy}:")
        for action, value in bars.items():
            bar = "#" * max(1, int(round(value * scale)))
            lines.append(f"    {action:<7}{value:>10.2f} s  {bar}")
    return "\n".join(lines)
