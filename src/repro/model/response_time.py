"""Response-time predictions: equations (1)-(6) of the paper.

Navigational strategies (eqns (1)-(4))::

    q_s  = number of queries                       (1)
    c_s  = 2 * q_s                                 (2)
    vol_s = q_s*size_p + n_t*size_node + q_s*size_p/2   (3)
    T_s  = c_s*T_Lat + vol_s/dtr                   (4)

Recursive strategy (eqns (5)-(6))::

    vol_r = q_r*size_p + n_v*size_node + q_r*size_p/2   (5)
    T_r   = 2*T_Lat + vol_r/dtr                    (6)

where q_r is the number of *packets* needed to ship the (single, large)
recursive query; the paper's tables assume q_r = 1.

Batched (level-at-a-time) strategy — one pipelined batch per level, so
the query count of the navigational model collapses to δ while the
transmitted volume keeps the recursive strategy's early semantics::

    c_b   = 2 * delta
    vol_b = delta*q_b*size_p + n_v*size_node + delta*q_b*size_p/2
    T_b   = c_b*T_Lat + vol_b/dtr
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ModelError
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.trees import (
    navigational_query_count,
    transmitted_nodes,
    visible_node_count,
)


class Action(Enum):
    """The three structure-oriented user actions analysed by the paper."""

    QUERY = "query"  # set-oriented retrieval of all nodes (no structure)
    EXPAND = "expand"  # single-level expand of the root
    MLE = "mle"  # multi-level expand of the entire structure


class Strategy(Enum):
    """Rule-evaluation/query strategies compared in Tables 2-4."""

    LATE = "late"  # navigational queries, rules evaluated at the client
    EARLY = "early"  # navigational queries, rules folded into WHERE clauses
    RECURSIVE = "recursive"  # one WITH RECURSIVE query + early evaluation
    BATCHED = "batched"  # one pipelined batch per level + early evaluation


@dataclass(frozen=True)
class ResponseTimePrediction:
    """All intermediate quantities of one prediction, for inspection."""

    action: Action
    strategy: Strategy
    queries: float
    communications: float
    transmitted_nodes: float
    volume_bytes: float
    latency_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.latency_seconds + self.transfer_seconds


def predict(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
    query_packets: int = 1,
) -> ResponseTimePrediction:
    """Predict the response time of *action* under *strategy*.

    ``query_packets`` is q_r — how many packets the recursive query text
    occupies (Section 5.4 warns it "may become quite large"); the paper's
    tables use 1.
    """
    if strategy is Strategy.RECURSIVE and action is Action.MLE:
        return _predict_recursive_mle(tree, network, query_packets)
    if strategy is Strategy.BATCHED and action is Action.MLE:
        return t_batched(tree, network, query_packets)
    # Query and single-level expand are single SELECTs in every strategy;
    # with Strategy.RECURSIVE or Strategy.BATCHED they behave exactly as
    # with EARLY (the figures' "recursion" bars equal the "early eval"
    # bars for them — there is nothing to batch or recurse over).
    early = strategy in (Strategy.EARLY, Strategy.RECURSIVE, Strategy.BATCHED)
    queries = navigational_query_count(tree, action.value)
    communications = 2.0 * queries
    nodes = transmitted_nodes(tree, action.value, early=early)
    volume = (
        queries * network.packet_bytes
        + nodes * network.node_bytes
        + queries * network.packet_bytes / 2.0
    )
    return ResponseTimePrediction(
        action=action,
        strategy=strategy,
        queries=queries,
        communications=communications,
        transmitted_nodes=nodes,
        volume_bytes=volume,
        latency_seconds=communications * network.latency_s,
        transfer_seconds=network.transfer_seconds(volume),
    )


def _predict_recursive_mle(
    tree: TreeParameters, network: NetworkParameters, query_packets: int
) -> ResponseTimePrediction:
    if query_packets < 1:
        raise ModelError("the recursive query occupies at least one packet")
    nodes = visible_node_count(tree)
    volume = (
        query_packets * network.packet_bytes
        + nodes * network.node_bytes
        + query_packets * network.packet_bytes / 2.0
    )
    return ResponseTimePrediction(
        action=Action.MLE,
        strategy=Strategy.RECURSIVE,
        queries=1.0,
        communications=2.0,
        transmitted_nodes=nodes,
        volume_bytes=volume,
        latency_seconds=2.0 * network.latency_s,
        transfer_seconds=network.transfer_seconds(volume),
    )


def t_batched(
    tree: TreeParameters,
    network: NetworkParameters,
    query_packets: int = 1,
) -> ResponseTimePrediction:
    """Predicted multi-level expand cost of the level-at-a-time batch.

    One round trip per level: δ queries, 2δ communications.  Every level's
    batch ships ``query_packets`` request packets (the frontier fetches for
    both node types travel together) and the responses carry exactly the
    early-visible node set, so the volume term matches the recursive
    strategy apart from the per-level query packets.
    """
    if query_packets < 1:
        raise ModelError("a batch occupies at least one packet per level")
    levels = float(tree.depth)
    nodes = visible_node_count(tree)
    volume = (
        levels * query_packets * network.packet_bytes
        + nodes * network.node_bytes
        + levels * query_packets * network.packet_bytes / 2.0
    )
    return ResponseTimePrediction(
        action=Action.MLE,
        strategy=Strategy.BATCHED,
        queries=levels,
        communications=2.0 * levels,
        transmitted_nodes=nodes,
        volume_bytes=volume,
        latency_seconds=2.0 * levels * network.latency_s,
        transfer_seconds=network.transfer_seconds(volume),
    )


@dataclass(frozen=True)
class FaultyResponseTimePrediction:
    """Retry-aware expected response time under a lossy link.

    Wraps the fault-free :class:`ResponseTimePrediction` and adds the
    expected cost of geometric retransmission: lost attempts waited out
    to the timeout, corrupted attempts detected and retried immediately,
    exponential backoff between attempts, and latency spikes on every
    transmitted message.
    """

    base: ResponseTimePrediction
    drop_probability: float
    corrupt_probability: float
    expected_attempts_per_round_trip: float
    retry_seconds: float
    backoff_seconds: float
    spike_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.base.total_seconds
            + self.retry_seconds
            + self.backoff_seconds
            + self.spike_seconds
        )

    @property
    def expected_retries(self) -> float:
        """Expected number of re-sent requests over the whole action."""
        round_trips = self.base.communications / 2.0
        return round_trips * (self.expected_attempts_per_round_trip - 1.0)


def predict_with_faults(
    action: Action,
    strategy: Strategy,
    tree: TreeParameters,
    network: NetworkParameters,
    faults,
    retry,
    query_packets: int = 1,
) -> FaultyResponseTimePrediction:
    """Expected response time of *action* under per-message loss.

    ``faults`` provides the per-message fault distribution (duck-typed to
    :class:`repro.network.faults.FaultProfile`: ``drop_probability``,
    ``corrupt_probability``, ``truncate_probability``,
    ``spike_probability``, ``spike_seconds``); ``retry`` the client's
    policy (:class:`repro.network.faults.RetryPolicy`: ``timeout_s``,
    ``max_attempts``, ``expected_backoff``).  Scheduled outage windows are
    deliberately out of scope — they are deterministic events, not a
    distribution, and are evaluated by simulation only.

    The derivation, per round trip: a request survives with probability
    ``1-p``; a round trip delivers intact with
    ``q = (1-p)^2 (1-c)^2`` where ``c`` is the per-message corruption
    probability (bit flips and random truncation both fail the frame
    CRC).  Failures are geometric: a *dropped* attempt costs
    ``max(timeout, elapsed)`` because the client waits the timeout out,
    a *corrupted* attempt costs the full round-trip time (the damage is
    only detectable once the frame arrived), and retry *k* additionally
    sleeps the capped exponential backoff.
    """
    probabilities = [
        faults.drop_probability,
        faults.corrupt_probability,
        getattr(faults, "truncate_probability", 0.0),
    ]
    for value in probabilities:
        if not 0.0 <= value < 1.0:
            raise ModelError(
                f"fault probabilities must be within [0, 1), got {value!r}"
            )
    base = predict(action, strategy, tree, network, query_packets=query_packets)
    round_trips = base.communications / 2.0
    p = faults.drop_probability
    # Bit flips and random truncation are indistinguishable to the CRC.
    c = 1.0 - (1.0 - faults.corrupt_probability) * (
        1.0 - getattr(faults, "truncate_probability", 0.0)
    )
    survive_drop = (1.0 - p) ** 2
    success = survive_drop * (1.0 - c) ** 2
    if success <= 0.0:
        raise ModelError("no attempt can ever succeed under these faults")
    # Per-round-trip request/response times from the base volume split.
    request_volume = query_packets * network.packet_bytes
    response_volume = base.volume_bytes / round_trips - request_volume
    t_request = network.latency_s + network.transfer_seconds(request_volume)
    t_response = network.latency_s + network.transfer_seconds(response_volume)
    t_round_trip = t_request + t_response
    # Failure modes of one attempt and what each costs the client.
    p_request_dropped = p
    p_response_dropped = (1.0 - p) * p
    p_corrupted = survive_drop * (1.0 - (1.0 - c) ** 2)
    cost_request_dropped = max(retry.timeout_s, t_request)
    cost_response_dropped = max(retry.timeout_s, t_round_trip)
    cost_corrupted = t_round_trip
    # Geometric retransmission: expected failures of each kind per success.
    retry_seconds_per_rt = (
        p_request_dropped * cost_request_dropped
        + p_response_dropped * cost_response_dropped
        + p_corrupted * cost_corrupted
    ) / success
    failure = 1.0 - success
    backoff_per_rt = sum(
        failure**k * retry.expected_backoff(k)
        for k in range(1, retry.max_attempts)
    )
    # Every transmitted message (retries included) may catch a spike.
    spike_per_message = faults.spike_probability * faults.spike_seconds
    spike_per_rt = (2.0 / success) * spike_per_message
    return FaultyResponseTimePrediction(
        base=base,
        drop_probability=p,
        corrupt_probability=c,
        expected_attempts_per_round_trip=1.0 / success,
        retry_seconds=round_trips * retry_seconds_per_rt,
        backoff_seconds=round_trips * backoff_per_rt,
        spike_seconds=round_trips * spike_per_rt,
    )


def saving_percent(baseline_seconds: float, improved_seconds: float) -> float:
    """Relative saving in percent, as printed in Tables 3 and 4."""
    if baseline_seconds <= 0:
        raise ModelError("baseline response time must be positive")
    return (1.0 - improved_seconds / baseline_seconds) * 100.0
