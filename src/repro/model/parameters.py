"""Parameter records for the analytic model.

The defaults are the constants printed in the headers of Tables 2-4:
``size_packet = 4 kB``, ``avg size_node = 512 Byte``; kilo prefixes are
binary (1 kB = 1024 B, 1 kbit/s = 1024 bit/s), which is pinned by
reproducing the tables to the cent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Binary unit conventions used throughout the paper's computations.
BYTES_PER_KB = 1024
BITS_PER_KBIT = 1024


@dataclass(frozen=True)
class TreeParameters:
    """A complete κ-ary product tree of depth δ with visibility σ.

    ``depth`` (δ): number of levels below the root (all leaves at depth δ).
    ``branching`` (κ): children per internal node.
    ``visibility`` (σ): probability that a user is allowed to see a branch
    — the paper's estimate of the combined effect of access rules,
    structure options and effectivities.
    """

    depth: int
    branching: int
    visibility: float = 0.6

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ModelError(f"tree depth must be >= 1, got {self.depth}")
        if self.branching < 1:
            raise ModelError(
                f"tree branching must be >= 1, got {self.branching}"
            )
        if not 0.0 <= self.visibility <= 1.0:
            raise ModelError(
                f"visibility must be within [0, 1], got {self.visibility}"
            )

    @property
    def label(self) -> str:
        return (
            f"delta={self.depth}, kappa={self.branching}, "
            f"sigma={self.visibility}"
        )


@dataclass(frozen=True)
class NetworkParameters:
    """WAN parameters of the analytic model (Table 1 symbols)."""

    latency_s: float  # T_Lat
    dtr_kbit_s: float  # dtr
    packet_bytes: int = 4 * BYTES_PER_KB  # size_p
    node_bytes: int = 512  # avg node size

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ModelError("latency must be non-negative")
        if self.dtr_kbit_s <= 0:
            raise ModelError("data transfer rate must be positive")
        if self.packet_bytes <= 0 or self.node_bytes <= 0:
            raise ModelError("packet and node sizes must be positive")

    @property
    def bits_per_second(self) -> float:
        return self.dtr_kbit_s * BITS_PER_KBIT

    def transfer_seconds(self, volume_bytes: float) -> float:
        """Transfer time of *volume_bytes* at the configured data rate."""
        return volume_bytes * 8.0 / self.bits_per_second

    @property
    def label(self) -> str:
        return (
            f"T_Lat={self.latency_s:g}s, dtr={self.dtr_kbit_s:g}kbit/s"
        )


#: The three object-structure scenarios of Tables 2-4, in column order.
PAPER_TREES = (
    TreeParameters(depth=3, branching=9, visibility=0.6),
    TreeParameters(depth=9, branching=3, visibility=0.6),
    TreeParameters(depth=7, branching=5, visibility=0.6),
)

#: The three network scenarios of Tables 2-4, in row order.
PAPER_NETWORKS = (
    NetworkParameters(latency_s=0.15, dtr_kbit_s=256),
    NetworkParameters(latency_s=0.15, dtr_kbit_s=512),
    NetworkParameters(latency_s=0.05, dtr_kbit_s=1024),
)

#: Figure 4 uses tree 2 over WAN-512; Figure 5 uses tree 3 over WAN-256.
FIGURE4_TREE = PAPER_TREES[1]
FIGURE4_NETWORK = PAPER_NETWORKS[1]
FIGURE5_TREE = PAPER_TREES[2]
FIGURE5_NETWORK = PAPER_NETWORKS[0]
