"""Build ready-to-measure scenarios: database + server + WAN + client.

A :class:`Scenario` wires the whole stack together for one (tree, network
profile) cell of the paper's evaluation grid.  The σ visibility of the
analytic model is realised by structure-option access rules evaluated via
the ``options_overlap`` stored function (paper example 3 semantics, with
relations as first-class objects)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.parameters import TreeParameters
from repro.network.faults import FaultProfile, FaultyLink, RetryPolicy
from repro.network.link import NetworkLink, PacketAccounting
from repro.network.profiles import LinkProfile, WAN_256
from repro.pdm.generator import GeneratedProduct, generate_product
from repro.pdm.objects import OPTION_STANDARD
from repro.pdm.operations import PDMClient
from repro.pdm.schema import (
    create_pdm_schema,
    install_checkout_procedures,
    load_product,
)
from repro.rules.conditions import Attribute, BoolFunction, UserVar
from repro.rules.model import Actions, Rule
from repro.rules.ruletable import RuleTable
from repro.server.client import RemoteConnection
from repro.server.server import DatabaseServer
from repro.sqldb.database import Database

#: The user variable carrying the selected structure options.
USER_OPTIONS_VAR = "user_options"


def scenario_rules() -> RuleTable:
    """Access rules realising σ: an object/link is visible iff its
    structure-option mask overlaps the user's selected options.

    One rule per object type, all using the stored function — this is the
    rule set the σ-Bernoulli generator encodes its ground truth against.
    """
    table = RuleTable()
    for object_type in ("assy", "comp", "link"):
        table.add(
            Rule(
                user="*",
                action=Actions.ACCESS,
                object_type=object_type,
                condition=BoolFunction(
                    "options_overlap",
                    (Attribute("strc_opt"), UserVar(USER_OPTIONS_VAR)),
                ),
                name=f"options-{object_type}",
            )
        )
    return table


@dataclass
class Scenario:
    """One fully wired evaluation cell."""

    tree: TreeParameters
    profile: LinkProfile
    product: GeneratedProduct
    database: Database
    server: DatabaseServer
    link: NetworkLink
    connection: RemoteConnection
    client: PDMClient
    rule_table: RuleTable
    user_env: Dict[str, object]
    #: The attached :class:`repro.obs.TraceRecorder`, or None (untraced).
    recorder: Optional[object] = None

    def fresh_client(self, **overrides) -> PDMClient:
        """A new client on the same connection (e.g. different user)."""
        options = {
            "rule_table": self.rule_table,
            "user": "scott",
            "user_env": self.user_env,
        }
        options.update(overrides)
        return PDMClient(self.connection, **options)


def build_scenario(
    tree: TreeParameters,
    profile: LinkProfile = WAN_256,
    seed: int = 0,
    accounting: PacketAccounting = PacketAccounting.PAPER_MODEL,
    rule_table: Optional[RuleTable] = None,
    spec_probability: float = 0.0,
    node_bytes: int = 512,
    user: str = "scott",
    product: Optional[GeneratedProduct] = None,
    fault_profile: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    retry_policy: Optional[RetryPolicy] = None,
    recorder=None,
) -> Scenario:
    """Generate (or reuse) a product, load it, and wire up the stack.

    Passing a pre-generated ``product`` lets the harness share one big
    database across several network profiles (only the link changes).

    ``fault_profile`` swaps the perfect link for a fault-injecting one
    (deterministic under ``fault_seed``); ``retry_policy`` arms the
    connection's resilient driver — with faults but no policy, injected
    losses propagate to the caller, which is occasionally what an
    experiment wants to observe.

    ``recorder`` (a :class:`repro.obs.TraceRecorder`) attaches the
    tracing layer to the whole stack via
    :func:`repro.obs.instrument_stack`; None leaves every layer
    untraced, which is guaranteed not to change any measurement.
    """
    if product is None:
        product = generate_product(
            tree,
            seed=seed,
            node_bytes=node_bytes,
            spec_probability=spec_probability,
            user_options=OPTION_STANDARD,
        )
    database = Database()
    create_pdm_schema(database)
    load_product(database, product)
    server = DatabaseServer(database)
    install_checkout_procedures(server)
    link = profile.create_link(accounting=accounting)
    if fault_profile is not None:
        link = FaultyLink.wrap(link, fault_profile, seed=fault_seed)
    connection = RemoteConnection(server, link, retry_policy=retry_policy)
    if recorder is not None:
        from repro.obs import instrument_stack

        instrument_stack(
            recorder,
            link=link,
            connection=connection,
            server=server,
            database=database,
        )
    table = rule_table if rule_table is not None else scenario_rules()
    user_env = {USER_OPTIONS_VAR: OPTION_STANDARD}
    client = PDMClient(
        connection,
        rule_table=table,
        user=user,
        user_env=user_env,
    )
    return Scenario(
        tree=tree,
        profile=profile,
        product=product,
        database=database,
        server=server,
        link=link,
        connection=connection,
        client=client,
        rule_table=table,
        user_env=user_env,
        recorder=recorder,
    )
