"""The numbers published in the paper's Tables 2-4, transcribed verbatim.

Index convention: ``[network][tree][action]`` where networks and trees are
keyed as in :mod:`repro.model.parameters` (network by (T_Lat, dtr); tree
by (δ, κ)), and each cell is ``(latency_part, transfer_part, total)`` in
seconds.  Savings (Tables 3/4) are percentages relative to Table 2.

These constants exist so tests and the experiment report can check the
analytic model against the *published* values rather than against itself.
"""

from __future__ import annotations

from typing import Dict, Tuple

NetworkKey = Tuple[float, float]  # (T_Lat seconds, dtr kbit/s)
TreeKey = Tuple[int, int]  # (depth δ, branching κ)
Cell = Tuple[float, float, float]  # (latency, transfer, total) seconds

NETWORKS: Tuple[NetworkKey, ...] = ((0.15, 256), (0.15, 512), (0.05, 1024))
TREES: Tuple[TreeKey, ...] = ((3, 9), (9, 3), (7, 5))
ACTIONS = ("query", "expand", "mle")

#: Table 2 — navigational access, late rule evaluation.
TABLE2: Dict[NetworkKey, Dict[TreeKey, Dict[str, Cell]]] = {
    (0.15, 256): {
        (3, 9): {
            "query": (0.30, 12.98, 13.28),
            "expand": (0.30, 0.33, 0.63),
            "mle": (57.91, 41.19, 99.10),
        },
        (9, 3): {
            "query": (0.30, 461.48, 461.78),
            "expand": (0.30, 0.23, 0.53),
            "mle": (133.52, 95.01, 228.53),
        },
        (7, 5): {
            "query": (0.30, 1526.05, 1526.35),
            "expand": (0.30, 0.27, 0.57),
            "mle": (984.00, 700.39, 1684.39),
        },
    },
    (0.15, 512): {
        (3, 9): {
            "query": (0.30, 6.49, 6.79),
            "expand": (0.30, 0.16, 0.46),
            "mle": (57.91, 20.60, 78.50),
        },
        (9, 3): {
            "query": (0.30, 230.74, 231.04),
            "expand": (0.30, 0.12, 0.42),
            "mle": (133.52, 47.51, 181.02),
        },
        (7, 5): {
            "query": (0.30, 763.02, 763.32),
            "expand": (0.30, 0.13, 0.43),
            "mle": (984.00, 350.20, 1334.20),
        },
    },
    (0.05, 1024): {
        (3, 9): {
            "query": (0.10, 3.25, 3.35),
            "expand": (0.10, 0.08, 0.18),
            "mle": (19.30, 10.30, 29.60),
        },
        (9, 3): {
            "query": (0.10, 115.37, 115.47),
            "expand": (0.10, 0.06, 0.16),
            "mle": (44.51, 23.75, 68.26),
        },
        (7, 5): {
            "query": (0.10, 381.51, 381.61),
            "expand": (0.10, 0.07, 0.17),
            "mle": (328.00, 175.10, 503.10),
        },
    },
}

#: Table 3 — navigational access, early rule evaluation.
TABLE3: Dict[NetworkKey, Dict[TreeKey, Dict[str, Cell]]] = {
    (0.15, 256): {
        (3, 9): {
            "query": (0.30, 3.19, 3.49),
            "expand": (0.30, 0.27, 0.57),
            "mle": (57.91, 39.19, 97.10),
        },
        (9, 3): {
            "query": (0.30, 7.13, 7.43),
            "expand": (0.30, 0.22, 0.52),
            "mle": (133.52, 90.39, 223.90),
        },
        (7, 5): {
            "query": (0.30, 51.42, 51.72),
            "expand": (0.30, 0.23, 0.53),
            "mle": (984.00, 666.23, 1650.23),
        },
    },
    (0.15, 512): {
        (3, 9): {
            "query": (0.30, 1.59, 1.89),
            "expand": (0.30, 0.14, 0.44),
            "mle": (57.91, 19.60, 77.50),
        },
        (9, 3): {
            "query": (0.30, 3.56, 3.86),
            "expand": (0.30, 0.11, 0.41),
            "mle": (133.52, 45.19, 178.71),
        },
        (7, 5): {
            "query": (0.30, 25.71, 26.01),
            "expand": (0.30, 0.12, 0.42),
            "mle": (984.00, 333.12, 1317.12),
        },
    },
    (0.05, 1024): {
        (3, 9): {
            "query": (0.10, 0.80, 0.90),
            "expand": (0.10, 0.07, 0.17),
            "mle": (19.30, 9.80, 29.10),
        },
        (9, 3): {
            "query": (0.10, 1.78, 1.88),
            "expand": (0.10, 0.05, 0.15),
            "mle": (44.51, 22.60, 67.10),
        },
        (7, 5): {
            "query": (0.10, 12.86, 12.96),
            "expand": (0.10, 0.06, 0.16),
            "mle": (328.00, 166.56, 494.56),
        },
    },
}

#: Table 3 — published "saving in %" rows.
TABLE3_SAVINGS: Dict[NetworkKey, Dict[TreeKey, Dict[str, float]]] = {
    (0.15, 256): {
        (3, 9): {"query": 73.74, "expand": 8.96, "mle": 2.02},
        (9, 3): {"query": 98.39, "expand": 3.51, "mle": 2.02},
        (7, 5): {"query": 96.61, "expand": 5.52, "mle": 2.03},
    },
    (0.15, 512): {
        (3, 9): {"query": 72.12, "expand": 6.06, "mle": 1.27},
        (9, 3): {"query": 98.33, "expand": 2.25, "mle": 1.28},
        (7, 5): {"query": 96.59, "expand": 3.61, "mle": 1.28},
    },
    (0.05, 1024): {
        (3, 9): {"query": 73.19, "expand": 7.73, "mle": 1.69},
        (9, 3): {"query": 98.37, "expand": 2.96, "mle": 1.69},
        (7, 5): {"query": 96.61, "expand": 4.69, "mle": 1.70},
    },
}

#: Table 4 — recursive queries + early evaluation (MLE only):
#: (latency, transfer, total, saving %).
TABLE4: Dict[NetworkKey, Dict[TreeKey, Tuple[float, float, float, float]]] = {
    (0.15, 256): {
        (3, 9): (0.30, 3.19, 3.49, 96.48),
        (9, 3): (0.30, 7.13, 7.43, 96.75),
        (7, 5): (0.30, 51.42, 51.72, 96.93),
    },
    (0.15, 512): {
        (3, 9): (0.30, 1.59, 1.89, 97.59),
        (9, 3): (0.30, 3.56, 3.86, 97.87),
        (7, 5): (0.30, 25.71, 26.01, 98.05),
    },
    (0.05, 1024): {
        (3, 9): (0.10, 0.80, 0.90, 96.97),
        (9, 3): (0.10, 1.78, 1.88, 97.24),
        (7, 5): (0.10, 12.86, 12.96, 97.42),
    },
}

#: Figure 4 (δ=9, κ=3, T_Lat=150 ms, dtr=512) and Figure 5 (δ=7, κ=5,
#: T_Lat=150 ms, dtr=256) plot exactly the corresponding table columns.
FIGURE4 = {
    "late eval": {
        "QUERY": TABLE2[(0.15, 512)][(9, 3)]["query"][2],
        "EXPAND": TABLE2[(0.15, 512)][(9, 3)]["expand"][2],
        "MLE": TABLE2[(0.15, 512)][(9, 3)]["mle"][2],
    },
    "early eval": {
        "QUERY": TABLE3[(0.15, 512)][(9, 3)]["query"][2],
        "EXPAND": TABLE3[(0.15, 512)][(9, 3)]["expand"][2],
        "MLE": TABLE3[(0.15, 512)][(9, 3)]["mle"][2],
    },
    "recursion": {
        "QUERY": TABLE3[(0.15, 512)][(9, 3)]["query"][2],
        "EXPAND": TABLE3[(0.15, 512)][(9, 3)]["expand"][2],
        "MLE": TABLE4[(0.15, 512)][(9, 3)][2],
    },
}

FIGURE5 = {
    "late eval": {
        "QUERY": TABLE2[(0.15, 256)][(7, 5)]["query"][2],
        "EXPAND": TABLE2[(0.15, 256)][(7, 5)]["expand"][2],
        "MLE": TABLE2[(0.15, 256)][(7, 5)]["mle"][2],
    },
    "early eval": {
        "QUERY": TABLE3[(0.15, 256)][(7, 5)]["query"][2],
        "EXPAND": TABLE3[(0.15, 256)][(7, 5)]["expand"][2],
        "MLE": TABLE3[(0.15, 256)][(7, 5)]["mle"][2],
    },
    "recursion": {
        "QUERY": TABLE3[(0.15, 256)][(7, 5)]["query"][2],
        "EXPAND": TABLE3[(0.15, 256)][(7, 5)]["expand"][2],
        "MLE": TABLE4[(0.15, 256)][(7, 5)][2],
    },
}
