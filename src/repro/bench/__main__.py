"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # all experiments, model only
    python -m repro.bench --simulate      # + end-to-end simulation (slow)
    python -m repro.bench table2 table4   # a subset
    python -m repro.bench --seed 7        # different workload draw
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import ExperimentReport


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "Regenerate the evaluation of 'Tuning an SQL-Based PDM System "
            "in a Worldwide Client/Server Environment' (ICDE 2001)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(EXPERIMENTS) + [[]],
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--simulate",
        action="store_true",
        help="also run the end-to-end simulations at paper scale (slow: "
        "builds databases with up to ~10^5 objects)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload generator seed"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report to FILE (used to refresh the "
        "regenerated-report section of EXPERIMENTS.md)",
    )
    args = parser.parse_args(argv)
    selected = args.experiments or list(EXPERIMENTS)
    sections = []
    for experiment_id in selected:
        runner = EXPERIMENTS[experiment_id]
        result = runner(simulate=args.simulate, seed=args.seed)
        text = (
            result.to_text()
            if isinstance(result, ExperimentReport)
            else str(result)
        )
        print(text)
        sections.append(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
