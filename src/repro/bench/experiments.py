"""Experiment registry: one entry per table/figure of the paper plus the
ablations and extensions listed in DESIGN.md.

Each experiment function returns an :class:`ExperimentReport` (tables) or
pre-formatted text (figures).  The heavy end-to-end simulations run once
per tree scenario; their traffic traces are re-priced for every network
profile (see :func:`repro.bench.measure.price_traffic`).

Scale control: ``simulate=True`` runs the full end-to-end measurements at
paper scale (tens of thousands of nodes; tens of seconds of host time).
``simulate=False`` reports paper-vs-model only, which is instantaneous.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.bench import paper_values
from repro.bench.measure import MeasuredAction, measure_grid, price_traffic
from repro.bench.report import (
    ComparisonRow,
    ExperimentReport,
    format_figure_comparison,
)
from repro.bench.workload import build_scenario
from repro.model.parameters import (
    NetworkParameters,
    PAPER_NETWORKS,
    PAPER_TREES,
    TreeParameters,
)
from repro.model.response_time import Action, Strategy, predict, saving_percent
from repro.model.tables import figure4_series, figure5_series
from repro.network.profiles import WAN_256

_ACTION_BY_NAME = {
    "query": Action.QUERY,
    "expand": Action.EXPAND,
    "mle": Action.MLE,
}

#: Cache of end-to-end measurements per tree (seed fixed for
#: reproducibility); shared by the three table experiments.
_measurement_cache: Dict[Tuple[int, int, float, int], Dict] = {}


def simulated_measurements(
    tree: TreeParameters, seed: int = 42
) -> Dict[Tuple[Action, Strategy], MeasuredAction]:
    """Measure (and cache) the full action×strategy grid for one tree."""
    key = (tree.depth, tree.branching, tree.visibility, seed)
    cached = _measurement_cache.get(key)
    if cached is None:
        scenario = build_scenario(tree, WAN_256, seed=seed)
        cached = measure_grid(scenario)
        _measurement_cache[key] = cached
    return cached


def _network_label(network: NetworkParameters) -> str:
    return f"T={network.latency_s:g}s dtr={network.dtr_kbit_s:g}"


def _tree_label(tree: TreeParameters) -> str:
    return f"d={tree.depth} k={tree.branching}"


def _table_experiment(
    experiment_id: str,
    title: str,
    strategy: Strategy,
    paper_table,
    paper_savings,
    actions: Tuple[str, ...],
    simulate: bool,
    seed: int,
) -> ExperimentReport:
    report = ExperimentReport(experiment_id=experiment_id, title=title)
    for network in PAPER_NETWORKS:
        network_key = (network.latency_s, network.dtr_kbit_s)
        for tree in PAPER_TREES:
            tree_key = (tree.depth, tree.branching)
            measurements = (
                simulated_measurements(tree, seed) if simulate else None
            )
            for action_name in actions:
                action = _ACTION_BY_NAME[action_name]
                paper_cell = paper_table[network_key][tree_key][action_name]
                paper_total = paper_cell[2] if len(paper_cell) >= 3 else paper_cell
                prediction = predict(action, strategy, tree, network)
                late = predict(action, Strategy.LATE, tree, network)
                model_saving = saving_percent(
                    late.total_seconds, prediction.total_seconds
                )
                row = ComparisonRow(
                    network=_network_label(network),
                    tree=_tree_label(tree),
                    action=action_name,
                    paper_seconds=paper_total,
                    model_seconds=prediction.total_seconds,
                    model_saving=model_saving if strategy is not Strategy.LATE else None,
                    paper_saving=(
                        paper_savings[network_key][tree_key][action_name]
                        if paper_savings is not None
                        else None
                    ),
                )
                if measurements is not None:
                    measured = measurements[(action, strategy)]
                    row.simulated_seconds = price_traffic(
                        measured.traffic, network
                    )
                    if strategy is not Strategy.LATE:
                        late_measured = measurements[(action, Strategy.LATE)]
                        row.simulated_saving = saving_percent(
                            price_traffic(late_measured.traffic, network),
                            row.simulated_seconds,
                        )
                report.rows.append(row)
    return report


def run_table2(simulate: bool = False, seed: int = 42) -> ExperimentReport:
    """Table 2: response times with navigational access, late evaluation."""
    return _table_experiment(
        "table2",
        "Response times for several scenarios in today's environments "
        "(late rule evaluation)",
        Strategy.LATE,
        paper_values.TABLE2,
        None,
        ("query", "expand", "mle"),
        simulate,
        seed,
    )


def run_table3(simulate: bool = False, seed: int = 42) -> ExperimentReport:
    """Table 3: early rule evaluation (approach 1) with savings vs Table 2."""
    return _table_experiment(
        "table3",
        "Response times with early rule evaluation",
        Strategy.EARLY,
        paper_values.TABLE3,
        paper_values.TABLE3_SAVINGS,
        ("query", "expand", "mle"),
        simulate,
        seed,
    )


def run_table4(simulate: bool = False, seed: int = 42) -> ExperimentReport:
    """Table 4: recursive queries + early evaluation, MLE column."""
    paper_table = {
        network: {
            tree: {"mle": cell[:3]}
            for tree, cell in trees.items()
        }
        for network, trees in paper_values.TABLE4.items()
    }
    paper_savings = {
        network: {tree: {"mle": cell[3]} for tree, cell in trees.items()}
        for network, trees in paper_values.TABLE4.items()
    }
    return _table_experiment(
        "table4",
        "Response times for multi-level expands with recursive queries",
        Strategy.RECURSIVE,
        paper_table,
        paper_savings,
        ("mle",),
        simulate,
        seed,
    )


def _figure_simulated(
    tree: TreeParameters, network: NetworkParameters, seed: int
) -> Dict[str, Dict[str, float]]:
    measurements = simulated_measurements(tree, seed)
    series: Dict[str, Dict[str, float]] = {}
    for strategy, label in (
        (Strategy.LATE, "late eval"),
        (Strategy.EARLY, "early eval"),
        (Strategy.RECURSIVE, "recursion"),
    ):
        series[label] = {
            action.name: price_traffic(
                measurements[(action, strategy)].traffic, network
            )
            for action in (Action.QUERY, Action.EXPAND, Action.MLE)
        }
    return series


def run_figure4(simulate: bool = False, seed: int = 42) -> str:
    """Figure 4: δ=9, κ=3, σ=0.6, T_Lat=150 ms, dtr=512 kbit/s."""
    tree = PAPER_TREES[1]
    network = PAPER_NETWORKS[1]
    simulated = _figure_simulated(tree, network, seed) if simulate else None
    return format_figure_comparison(
        "figure4",
        "Response times for d=9, k=3, s=0.6, T_Lat=150ms, dtr=512kbit/s",
        paper_values.FIGURE4,
        figure4_series(),
        simulated,
    )


def run_figure5(simulate: bool = False, seed: int = 42) -> str:
    """Figure 5: δ=7, κ=5, σ=0.6, T_Lat=150 ms, dtr=256 kbit/s."""
    tree = PAPER_TREES[2]
    network = PAPER_NETWORKS[0]
    simulated = _figure_simulated(tree, network, seed) if simulate else None
    return format_figure_comparison(
        "figure5",
        "Response times for d=7, k=5, s=0.6, T_Lat=150ms, dtr=256kbit/s",
        paper_values.FIGURE5,
        figure5_series(),
        simulated,
    )


#: Registry used by ``python -m repro.bench`` and EXPERIMENTS.md.
EXPERIMENTS: Dict[str, Callable] = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure4": run_figure4,
    "figure5": run_figure5,
}
