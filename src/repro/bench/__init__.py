"""Benchmark harness: workloads, measurement, and experiment registry.

``python -m repro.bench`` regenerates every table and figure of the paper
(analytic model next to the published values next to the end-to-end
simulation); the pytest-benchmark suites under ``benchmarks/`` wrap the
same entry points.
"""

from repro.bench.workload import Scenario, build_scenario, scenario_rules
from repro.bench.measure import MeasuredAction, measure_action, price_traffic
from repro.bench.report import format_trace_summary, trace_summary
from repro.bench.session import (
    SessionResult,
    SessionStep,
    compare_strategies,
    generate_session,
    replay_session,
)

__all__ = [
    "Scenario",
    "build_scenario",
    "scenario_rules",
    "MeasuredAction",
    "measure_action",
    "price_traffic",
    "trace_summary",
    "format_trace_summary",
    "SessionStep",
    "SessionResult",
    "generate_session",
    "replay_session",
    "compare_strategies",
]
