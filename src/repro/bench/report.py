"""Reporting: paper vs analytic model vs end-to-end simulation.

The central artefact is the *comparison table*: for every cell of the
paper's evaluation grid it shows the published value, the value computed
by :mod:`repro.model` (which must match to the cent) and the value
measured by running the action end-to-end on the built substrate (which
must match in shape — same winner, same order of magnitude, crossovers in
the same place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ComparisonRow:
    """One grid cell of a table comparison."""

    network: str
    tree: str
    action: str
    paper_seconds: float
    model_seconds: float
    simulated_seconds: Optional[float] = None
    paper_saving: Optional[float] = None
    model_saving: Optional[float] = None
    simulated_saving: Optional[float] = None

    @property
    def model_error(self) -> float:
        """Absolute model-vs-paper difference in seconds."""
        return abs(self.model_seconds - self.paper_seconds)

    @property
    def simulated_ratio(self) -> Optional[float]:
        if self.simulated_seconds is None or self.paper_seconds == 0:
            return None
        return self.simulated_seconds / self.paper_seconds


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    rows: List[ComparisonRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", ""]
        header = (
            f"{'network':<22}{'tree':<12}{'action':<8}"
            f"{'paper[s]':>12}{'model[s]':>12}{'simulated[s]':>14}"
            f"{'pap.sav%':>10}{'mod.sav%':>10}{'sim.sav%':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                f"{row.network:<22}{row.tree:<12}{row.action:<8}"
                f"{row.paper_seconds:>12.2f}{row.model_seconds:>12.2f}"
                + (
                    f"{row.simulated_seconds:>14.2f}"
                    if row.simulated_seconds is not None
                    else f"{'-':>14}"
                )
                + (
                    f"{row.paper_saving:>10.2f}"
                    if row.paper_saving is not None
                    else f"{'-':>10}"
                )
                + (
                    f"{row.model_saving:>10.2f}"
                    if row.model_saving is not None
                    else f"{'-':>10}"
                )
                + (
                    f"{row.simulated_saving:>10.2f}"
                    if row.simulated_saving is not None
                    else f"{'-':>10}"
                )
            )
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"  note: {note}")
        lines.append("")
        return "\n".join(lines)

    def max_model_error(self) -> float:
        return max((row.model_error for row in self.rows), default=0.0)


def trace_summary(recorder) -> dict:
    """JSON-exportable summary of a :class:`repro.obs.TraceRecorder`.

    Bundles the full span forest, the component decomposition aggregated
    over every root's subtree (which, by construction of the clock
    observer, sums to the roots' total duration exactly) and the metrics
    registry snapshot.
    """
    roots = list(recorder.roots)
    components: Dict[str, float] = {}
    for root in roots:
        for name, seconds in root.total_components().items():
            components[name] = components.get(name, 0.0) + seconds
    fault_events = [
        {"at": at, "message": message, "span": span.name, **data}
        for span in recorder.iter_spans()
        for at, message, data in span.events
        if message.startswith("fault.")
    ]
    return {
        "span_count": sum(1 for __ in recorder.iter_spans()),
        "root_seconds": sum(root.duration for root in roots),
        "components": dict(sorted(components.items())),
        "fault_events": fault_events,
        "metrics": recorder.metrics.to_dict(),
        "spans": [root.to_dict() for root in roots],
    }


def format_trace_summary(summary: dict, max_depth: Optional[int] = None) -> str:
    """Human-readable rendering of a :func:`trace_summary` dict.

    ``max_depth`` truncates the span tree (None renders it fully); the
    component totals and metrics always print in full.
    """
    lines = [
        f"trace: {summary['span_count']} span(s), "
        f"{summary['root_seconds']:.3f}s across "
        f"{len(summary['spans'])} root(s)"
    ]
    components = summary["components"]
    if components:
        lines.append("  time decomposition:")
        for name, seconds in components.items():
            share = (
                seconds / summary["root_seconds"] * 100.0
                if summary["root_seconds"]
                else 0.0
            )
            lines.append(f"    {name:<14}{seconds:>10.3f}s  {share:5.1f}%")
    if summary["fault_events"]:
        lines.append(f"  fault events: {len(summary['fault_events'])}")
    counters = summary["metrics"]["counters"]
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():
            lines.append(f"    {name} = {value:g}")
    histograms = summary["metrics"]["histograms"]
    if histograms:
        lines.append("  histograms:")
        for name, data in histograms.items():
            line = (
                f"    {name}: n={data['count']} mean={data['mean']:.4g} "
                f"min={data['min']} max={data['max']}"
            )
            if data.get("p50") is not None:
                line += (
                    f" p50={data['p50']:.4g} p95={data['p95']:.4g} "
                    f"p99={data['p99']:.4g}"
                )
            lines.append(line)
    lines.append("  span tree:")

    def render(span: dict, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        meta = span.get("meta", {})
        label = " ".join(f"{k}={v}" for k, v in meta.items())
        lines.append(
            "    " + "  " * depth + f"{span['name']} "
            f"{span['duration']:.3f}s" + (f"  [{label}]" if label else "")
        )
        for child in span.get("children", ()):
            render(child, depth + 1)

    for root in summary["spans"]:
        render(root, 0)
    return "\n".join(lines)


def format_figure_comparison(
    experiment_id: str,
    title: str,
    paper: Dict[str, Dict[str, float]],
    model: Dict[str, Dict[str, float]],
    simulated: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Side-by-side bar values for a figure reproduction."""
    lines = [f"== {experiment_id}: {title} ==", ""]
    peak = max(value for bars in paper.values() for value in bars.values())
    scale = 40.0 / peak if peak else 0.0
    for strategy in paper:
        lines.append(f"  {strategy}:")
        for action in paper[strategy]:
            paper_value = paper[strategy][action]
            model_value = model[strategy][action]
            entry = (
                f"    {action:<7} paper {paper_value:>9.2f}s"
                f"  model {model_value:>9.2f}s"
            )
            if simulated is not None:
                entry += f"  simulated {simulated[strategy][action]:>9.2f}s"
            bar = "#" * max(1, int(round(model_value * scale)))
            lines.append(entry + "  " + bar)
    lines.append("")
    return "\n".join(lines)
