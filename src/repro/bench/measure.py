"""Run the paper's actions end-to-end and price the measured traffic.

The simulated response time of an action is linear in its traffic:

    T = messages * T_Lat + wire_bytes * 8 / (dtr * 1024)

so one end-to-end run per (tree, action, strategy) yields a traffic trace
that :func:`price_traffic` can re-price for every network profile of the
evaluation grid — the heavy simulations run once, not once per network.
(The PAPER_MODEL packet accounting makes wire bytes independent of
latency and bandwidth; they depend only on the 4 kB packet size, which is
constant across the grid.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError
from repro.model.parameters import NetworkParameters
from repro.model.response_time import Action, Strategy
from repro.network.link import BITS_PER_KBIT
from repro.network.stats import TrafficStats
from repro.bench.workload import Scenario
from repro.pdm.operations import ExpandStrategy

#: Model (action, strategy) -> client strategy for the three actions.
_STRATEGY_MAP = {
    Strategy.LATE: ExpandStrategy.NAVIGATIONAL_LATE,
    Strategy.EARLY: ExpandStrategy.NAVIGATIONAL_EARLY,
    Strategy.RECURSIVE: ExpandStrategy.RECURSIVE_EARLY,
    Strategy.BATCHED: ExpandStrategy.EXPAND_BATCHED,
}


@dataclass
class MeasuredAction:
    """Traffic and result size of one end-to-end action run."""

    action: Action
    strategy: Strategy
    traffic: TrafficStats
    seconds: float
    round_trips: int
    result_nodes: int
    #: Server-side SQL statements the action executed (batch entries count
    #: individually) and how many of them hit the server's plan cache.
    statements: int = 0
    plan_cache_hits: int = 0

    @property
    def payload_bytes(self) -> int:
        return self.traffic.payload_bytes

    @property
    def wire_bytes(self) -> float:
        return self.traffic.wire_bytes


def measure_action(
    scenario: Scenario, action: Action, strategy: Strategy
) -> MeasuredAction:
    """Execute one action end-to-end over the scenario's simulated WAN."""
    client = scenario.client
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()
    expand_strategy = _STRATEGY_MAP[strategy]
    db_before = dict(scenario.database.statistics)
    if action is Action.QUERY:
        # Query and expand use navigational SQL in every strategy; the
        # recursive strategy's behaviour equals early evaluation for them.
        result = client.query(root, expand_strategy)
        nodes = len(result.objects)
    elif action is Action.EXPAND:
        result = client.single_level_expand(root, expand_strategy)
        nodes = len(result.objects)
    elif action is Action.MLE:
        result = client.multi_level_expand(
            root, expand_strategy, root_attrs=root_attrs
        )
        nodes = result.tree.node_count() - 1 if result.tree else 0
    else:
        raise ReproError(f"unknown action {action!r}")
    db_after = scenario.database.statistics
    return MeasuredAction(
        action=action,
        strategy=strategy,
        traffic=result.traffic,
        seconds=result.seconds,
        round_trips=result.round_trips,
        result_nodes=nodes,
        statements=db_after["statements"] - db_before["statements"],
        plan_cache_hits=db_after["plan_cache_hits"]
        - db_before["plan_cache_hits"],
    )


def price_traffic(traffic: TrafficStats, network: NetworkParameters) -> float:
    """Response time of a recorded traffic trace on another network."""
    return (
        traffic.messages * network.latency_s
        + traffic.wire_bytes * 8.0 / (network.dtr_kbit_s * BITS_PER_KBIT)
    )


def measure_grid(
    scenario: Scenario,
    actions: Tuple[Action, ...] = (Action.QUERY, Action.EXPAND, Action.MLE),
    strategies: Tuple[Strategy, ...] = (
        Strategy.LATE,
        Strategy.EARLY,
        Strategy.RECURSIVE,
    ),
) -> Dict[Tuple[Action, Strategy], MeasuredAction]:
    """Measure every (action, strategy) combination once."""
    measurements: Dict[Tuple[Action, Strategy], MeasuredAction] = {}
    for action in actions:
        for strategy in strategies:
            measurements[(action, strategy)] = measure_action(
                scenario, action, strategy
            )
    return measurements
