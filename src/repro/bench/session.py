"""User-session workloads: replay a realistic mix of PDM actions.

The paper evaluates the three actions in isolation; a working engineer
interleaves them — browse a few levels, expand a promising subtree fully,
query a whole product, check something out.  This module generates seeded
action sequences from a configurable mix and replays them under a given
strategy, yielding the *session-level* response time: the number that
decides whether the remote site can work at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.workload import Scenario
from repro.errors import CheckOutError, PDMError
from repro.pdm.operations import CheckOutMode, ExpandStrategy

#: Action kinds a session step can take.
STEP_KINDS = ("expand", "mle", "partial_mle", "query", "checkout_cycle")

#: Default action mix: browsing dominates, full expands and check-outs
#: are comparatively rare (weights, not probabilities).
DEFAULT_MIX: Dict[str, float] = {
    "expand": 8.0,
    "partial_mle": 3.0,
    "mle": 2.0,
    "query": 1.0,
    "checkout_cycle": 1.0,
}


@dataclass(frozen=True)
class SessionStep:
    """One step of a session: an action kind plus its target."""

    kind: str
    target_obid: int
    depth: Optional[int] = None


@dataclass
class SessionResult:
    """Replay outcome: per-step seconds and the aggregate cost."""

    strategy: ExpandStrategy
    steps: List[SessionStep]
    step_seconds: List[float] = field(default_factory=list)
    round_trips: int = 0
    payload_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.step_seconds)

    @property
    def slowest_step(self) -> Tuple[SessionStep, float]:
        index = max(
            range(len(self.step_seconds)), key=self.step_seconds.__getitem__
        )
        return self.steps[index], self.step_seconds[index]


def generate_session(
    scenario: Scenario,
    length: int = 20,
    seed: int = 0,
    mix: Optional[Dict[str, float]] = None,
) -> List[SessionStep]:
    """Generate a seeded session of *length* steps over the scenario's
    product.  Targets are drawn from the *visible* assemblies (a user can
    only click what the PDM browser shows)."""
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(STEP_KINDS)
    if unknown:
        raise PDMError(f"unknown session step kinds: {sorted(unknown)}")
    rng = random.Random(seed)
    product = scenario.product
    assembly_ids = [
        assembly.obid
        for assembly in product.assemblies
        if assembly.obid in product.visible_obids
    ]
    kinds = list(mix)
    weights = [mix[kind] for kind in kinds]
    steps: List[SessionStep] = []
    for __ in range(length):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "query":
            target = product.root_obid
        else:
            target = rng.choice(assembly_ids)
        depth = rng.randint(1, max(1, product.tree.depth - 1)) if (
            kind == "partial_mle"
        ) else None
        steps.append(SessionStep(kind=kind, target_obid=target, depth=depth))
    return steps


def replay_session(
    scenario: Scenario,
    steps: Sequence[SessionStep],
    strategy: ExpandStrategy,
) -> SessionResult:
    """Execute every step over the scenario's simulated WAN.

    Check-out cycles use the strategy-appropriate deployment: the
    recursive strategy pairs with the server procedure (function
    shipping), the navigational ones with the two-phase protocol.
    Conflicting check-outs (target inside an already-held subtree) are
    charged for their round trips and skipped — exactly what a real
    session would experience.
    """
    client = scenario.client
    result = SessionResult(strategy=strategy, steps=list(steps))
    attrs_cache: Dict[int, Dict[str, Any]] = {
        scenario.product.root_obid: scenario.product.root_attributes()
    }
    for step in steps:
        root_attrs = attrs_cache.get(step.target_obid)
        if root_attrs is None:
            root_attrs = client.fetch_object(step.target_obid)
            attrs_cache[step.target_obid] = root_attrs
        if step.kind == "expand":
            action = client.single_level_expand(step.target_obid, strategy)
        elif step.kind == "mle":
            action = client.multi_level_expand(
                step.target_obid, strategy, root_attrs=root_attrs
            )
        elif step.kind == "partial_mle":
            action = client.multi_level_expand(
                step.target_obid,
                strategy,
                root_attrs=root_attrs,
                max_depth=step.depth,
            )
        elif step.kind == "query":
            action = client.query(scenario.product.root_obid, strategy)
        elif step.kind == "checkout_cycle":
            action = _checkout_cycle(scenario, step, strategy, root_attrs)
        else:  # pragma: no cover - generate_session validates kinds
            raise PDMError(f"unknown step kind {step.kind!r}")
        result.step_seconds.append(action.seconds)
        result.round_trips += action.round_trips
        result.payload_bytes += action.traffic.payload_bytes
    return result


def _checkout_cycle(scenario, step, strategy, root_attrs):
    client = scenario.client
    mode = (
        CheckOutMode.SERVER_PROCEDURE
        if strategy is ExpandStrategy.RECURSIVE_EARLY
        else CheckOutMode.TWO_PHASE
    )
    begin = client._begin()
    try:
        client.check_out(step.target_obid, mode, root_attrs=root_attrs)
        client.check_in(step.target_obid, mode)
    except CheckOutError:
        pass  # busy subtree: the round trips were still paid
    return client._finish(begin)


def compare_strategies(
    scenario: Scenario,
    length: int = 20,
    seed: int = 0,
    mix: Optional[Dict[str, float]] = None,
) -> Dict[ExpandStrategy, SessionResult]:
    """Replay the *same* generated session under every expand strategy."""
    steps = generate_session(scenario, length=length, seed=seed, mix=mix)
    return {
        strategy: replay_session(scenario, steps, strategy)
        for strategy in ExpandStrategy
    }
