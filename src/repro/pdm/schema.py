"""The flat relational mapping of the PDM object model.

Paper Section 1: "the object structure is flattened, and all objects —
and the relations between them, too — are stored in (more or less)
ordinary, normalized tables".  This module owns the DDL, the indexes that
make navigational access and recursion efficient, the stored functions
for set/interval comparisons (Section 3.2), and the server-side check-out
procedures (the function-shipping remedy of Section 6).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CheckOutError, LockUnavailable
from repro.sqldb.database import Database

#: Columns shared by assemblies and components in the homogenised result
#: type of recursive queries (paper Section 5.2: a result type "enfolding
#: all attribute definitions of all object types appearing in the result").
NODE_COLUMNS = (
    "type",
    "obid",
    "name",
    "dec",
    "make_or_buy",
    "weight",
    "state",
    "checkedout",
    "product",
    "strc_opt",
    "payload",
)

#: Additional columns contributed by link rows in the homogenised result.
LINK_ONLY_COLUMNS = ("left", "right", "eff_from", "eff_to", "link_opt")

#: Full column list of a homogenised (node ∪ link) result row.
HOMOGENISED_COLUMNS = NODE_COLUMNS + LINK_ONLY_COLUMNS

_DDL = """
CREATE TABLE assy (
    type VARCHAR(8) NOT NULL,
    obid INTEGER PRIMARY KEY,
    name VARCHAR(60),
    dec CHAR(1),
    make_or_buy VARCHAR(4),
    weight DOUBLE,
    state VARCHAR(12),
    checkedout BOOLEAN,
    checkedout_by VARCHAR(24),
    product INTEGER,
    strc_opt INTEGER,
    payload VARCHAR(2000)
);
CREATE TABLE comp (
    type VARCHAR(8) NOT NULL,
    obid INTEGER PRIMARY KEY,
    name VARCHAR(60),
    make_or_buy VARCHAR(4),
    weight DOUBLE,
    state VARCHAR(12),
    checkedout BOOLEAN,
    checkedout_by VARCHAR(24),
    product INTEGER,
    strc_opt INTEGER,
    payload VARCHAR(2000)
);
CREATE TABLE link (
    type VARCHAR(8) NOT NULL,
    obid INTEGER PRIMARY KEY,
    left INTEGER NOT NULL,
    right INTEGER NOT NULL,
    eff_from INTEGER,
    eff_to INTEGER,
    strc_opt INTEGER
);
CREATE TABLE spec (
    type VARCHAR(8) NOT NULL,
    obid INTEGER PRIMARY KEY,
    name VARCHAR(60),
    doc VARCHAR(400)
);
CREATE TABLE specified_by (
    obid INTEGER PRIMARY KEY,
    left INTEGER NOT NULL,
    right INTEGER NOT NULL
);
CREATE INDEX link_left_idx ON link (left);
CREATE INDEX link_right_idx ON link (right);
CREATE INDEX assy_product_idx ON assy (product);
CREATE INDEX comp_product_idx ON comp (product);
CREATE INDEX specified_by_left_idx ON specified_by (left)
"""


def _options_overlap(a: int, b: int) -> bool:
    """Set-overlap of two structure-option bitmasks (stored function —
    "comparisons of sets ... have to be provided at the server")."""
    return (int(a) & int(b)) != 0


def _intervals_overlap(a_from: int, a_to: int, b_from: int, b_to: int) -> bool:
    """Interval overlap for effectivities (paper example 3 semantics)."""
    return int(a_from) <= int(b_to) and int(b_from) <= int(a_to)


def _is_effective(eff_from: int, eff_to: int, unit: int) -> bool:
    """Point-in-interval effectivity test for a selected unit number."""
    return int(eff_from) <= int(unit) <= int(eff_to)


#: Client-side implementations of the stored functions, used by the late
#: (reference) evaluator.  Must stay in sync with the server registrations
#: — enforced by tests/rules/test_function_parity.py.
CLIENT_FUNCTIONS: Dict[str, callable] = {
    "options_overlap": _options_overlap,
    "intervals_overlap": _intervals_overlap,
    "is_effective": _is_effective,
}


def create_pdm_schema(db: Database) -> None:
    """Create tables, indexes and stored functions on *db*."""
    db.execute_script(_DDL)
    for name, function in CLIENT_FUNCTIONS.items():
        db.register_function(name, function)


def new_pdm_database() -> Database:
    """A fresh database with the PDM schema installed."""
    db = Database()
    create_pdm_schema(db)
    return db


def load_product(db: Database, product) -> None:
    """Bulk-load a :class:`~repro.pdm.generator.GeneratedProduct`."""
    db.executemany(
        "INSERT INTO assy VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [assembly.to_row() for assembly in product.assemblies],
    )
    db.executemany(
        "INSERT INTO comp VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [component.to_row() for component in product.components],
    )
    db.executemany(
        "INSERT INTO link VALUES (?, ?, ?, ?, ?, ?, ?)",
        [link.to_row() for link in product.links],
    )
    db.executemany(
        "INSERT INTO spec VALUES (?, ?, ?, ?)",
        [spec.to_row() for spec in product.specifications],
    )
    db.executemany(
        "INSERT INTO specified_by VALUES (?, ?, ?)",
        [rel.to_row() for rel in product.specified_by],
    )


# ---------------------------------------------------------------------------
# Server-side check-out (paper Section 6: "application-specific
# functionality performing the desired user action has to be installed at
# the database server")
# ---------------------------------------------------------------------------


def _collect_subtree_obids(db: Database, root_obid: int) -> List[int]:
    """All object ids of the subtree rooted at *root_obid* (server-local
    recursive query, no WAN involved)."""
    result = db.execute(
        """
        WITH RECURSIVE subtree (obid) AS
        (SELECT assy.obid FROM assy WHERE assy.obid = ?
         UNION
         SELECT link.right FROM subtree JOIN link ON subtree.obid = link.left)
        SELECT obid FROM subtree
        """,
        [root_obid],
    )
    return [row[0] for row in result.rows]


def _checkout_conflicts(db: Database, obids: List[int]) -> int:
    """Number of already-checked-out nodes among *obids*."""
    placeholders = ", ".join("?" for __ in obids)
    conflicts = 0
    for table in ("assy", "comp"):
        count = db.execute(
            f"SELECT COUNT(*) FROM {table} "
            f"WHERE obid IN ({placeholders}) AND checkedout = TRUE",
            obids,
        ).scalar()
        conflicts += int(count)
    return conflicts


def _checkout_lock_owner(db: Database, user: str):
    """The persistent lock owner holding *user*'s check-out locks, or
    None when the database runs without a lock manager."""
    if db.locks is None:
        return None
    return db.locks.persistent_owner(("checkout", user))


def _check_out_tree(db: Database, root_obid: int, user: str) -> List[int]:
    """Server procedure: atomically check out an entire subtree.

    Returns the checked-out object ids (root first).  Raises
    :class:`CheckOutError` if any node of the subtree is already checked
    out — the all-or-nothing semantics of paper example 2.

    When the database has a lock manager attached, the check-out also
    acquires *persistent* exclusive locks on the subtree in a dedicated
    ``@checkout`` namespace: they outlive any transaction (released only
    by check-in), conflict exactly with other users' check-out attempts,
    and — living in their own namespace — never block ordinary reads of
    the ``assy``/``comp`` tables.
    """
    obids = _collect_subtree_obids(db, root_obid)
    if not obids:
        raise CheckOutError(f"object {root_obid} does not exist")
    owner = _checkout_lock_owner(db, user)
    fresh: List = []
    if owner is not None:
        resources = [("@checkout", obid) for obid in obids]
        held_before = {resource for resource, __ in db.locks.locks_held(owner)}
        fresh = [resource for resource in resources if resource not in held_before]
        try:
            db.locks.acquire_all_or_nothing(owner, resources)
        except LockUnavailable as error:
            raise CheckOutError(
                f"subtree of {root_obid} is locked by another check-out"
            ) from error
    placeholders = ", ".join("?" for __ in obids)
    try:
        # The conflict test and the flag updates form one atomic unit — the
        # transactional substrate extension motivated by the paper's
        # Section 6 discussion of check-out processing.
        with db.transaction():
            if _checkout_conflicts(db, obids) > 0:
                raise CheckOutError(
                    f"subtree of {root_obid} contains checked-out objects"
                )
            for table in ("assy", "comp"):
                db.execute(
                    f"UPDATE {table} SET checkedout = TRUE, checkedout_by = ? "
                    f"WHERE obid IN ({placeholders})",
                    [user] + obids,
                )
    except BaseException:
        # Undo only locks this call acquired — a re-check-out attempt must
        # not drop the user's locks from an earlier successful check-out.
        if owner is not None and fresh:
            db.locks.release(owner, fresh)
        raise
    return obids


def _check_in_tree(db: Database, root_obid: int, user: str) -> List[int]:
    """Server procedure: release a previously checked-out subtree.

    Only objects checked out by *user* are released; returns their ids.
    """
    obids = _collect_subtree_obids(db, root_obid)
    released: List[int] = []
    placeholders = ", ".join("?" for __ in obids)
    for table in ("assy", "comp"):
        result = db.execute(
            f"SELECT obid FROM {table} "
            f"WHERE obid IN ({placeholders}) AND checkedout_by = ?",
            obids + [user],
        )
        ids = [row[0] for row in result.rows]
        if ids:
            inner = ", ".join("?" for __ in ids)
            db.execute(
                f"UPDATE {table} SET checkedout = FALSE, checkedout_by = '' "
                f"WHERE obid IN ({inner})",
                ids,
            )
        released.extend(ids)
    owner = _checkout_lock_owner(db, user)
    if owner is not None and released:
        db.locks.release(owner, [("@checkout", obid) for obid in released])
    return released


def install_checkout_procedures(server) -> None:
    """Register the check-out/check-in procedures on a DatabaseServer."""
    server.register_procedure("check_out_tree", _check_out_tree)
    server.register_procedure("check_in_tree", _check_in_tree)
