"""The PDM system: product data model, flat relational mapping, and the
structure-oriented user actions the paper analyses.

The layering follows the paper's architecture: the PDM *client*
(:class:`~repro.pdm.operations.PDMClient`) talks SQL to a relational
server through the simulated WAN and reassembles flat result rows into
product-structure trees.  The three strategies under comparison —
navigational with late rule evaluation, navigational with early rule
evaluation, and the single recursive query — are different code paths of
the same client.
"""

from repro.pdm.generator import (
    GeneratedProduct,
    figure2_dataset,
    generate_irregular_product,
    generate_product,
)
from repro.pdm.objects import Assembly, Component, LinkRow, Specification
from repro.pdm.operations import CheckOutMode, ExpandStrategy, PDMClient
from repro.pdm.schema import (
    CLIENT_FUNCTIONS,
    create_pdm_schema,
    install_checkout_procedures,
    load_product,
    new_pdm_database,
)
from repro.pdm.structure import StructureNode, build_tree

__all__ = [
    "Assembly",
    "Component",
    "LinkRow",
    "Specification",
    "GeneratedProduct",
    "generate_product",
    "generate_irregular_product",
    "figure2_dataset",
    "PDMClient",
    "ExpandStrategy",
    "CheckOutMode",
    "create_pdm_schema",
    "new_pdm_database",
    "load_product",
    "install_checkout_procedures",
    "CLIENT_FUNCTIONS",
    "StructureNode",
    "build_tree",
]
