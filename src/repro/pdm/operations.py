"""The PDM client: the structure-oriented user actions of the paper.

:class:`PDMClient` executes the three analysed actions — query,
single-level expand, multi-level expand — under the three strategies of
Tables 2-4 (plus the pipelined EXPAND_BATCHED strategy, which fetches a
whole frontier level per round trip over the batch protocol), and
check-out/check-in under the two deployment modes of the Section 6
discussion.  Every action returns an :class:`ActionResult`
carrying the reassembled data *and* the measured simulated response time
and traffic (delta of the link's clock and stats).

Semantics notes (aligned between all strategies; verified by the
equivalence property tests):

* Row conditions gate nodes and links; an invisible node hides its whole
  subtree (the navigational client simply never expands it, and in the
  recursive query the WHERE clauses inside the recursion prune the
  descent identically).
* Navigational strategies cannot evaluate tree conditions in SQL (paper
  Section 4.1), so ∀rows / tree-aggregate / ∃structure conditions are
  evaluated at the client after the fetch — for ∃structure this costs one
  extra round trip per candidate node, which is precisely the kind of
  latency the recursive strategy eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CheckOutError,
    CircuitOpenError,
    ExpandInterrupted,
    ReproError,
    TimeoutError,
    UnknownObjectError,
)
from repro.network.stats import TrafficStats
from repro.analysis import PLAN_CACHE_KEY_BUCKETS
from repro.obs import maybe_span
from repro.pdm import queries
from repro.pdm.schema import CLIENT_FUNCTIONS
from repro.pdm.structure import Attrs, StructureNode, build_tree
from repro.rules.conditions import ConditionClass
from repro.rules.evaluate import (
    EvaluationContext,
    exists_structure_holds,
    forall_holds,
    object_permitted,
    tree_aggregate_holds,
)
from repro.rules.model import Actions
from repro.rules.modificator import ExistsPlacement, QueryModificator
from repro.rules.ruletable import RuleTable
from repro.server.client import RemoteConnection
from repro.sqldb.render import render_select


class ExpandStrategy(Enum):
    """The strategies compared by the paper's evaluation."""

    NAVIGATIONAL_LATE = "navigational-late"  # Table 2 baseline
    NAVIGATIONAL_EARLY = "navigational-early"  # Table 3 (approach 1)
    RECURSIVE_EARLY = "recursive-early"  # Table 4 (approach 2)
    EXPAND_BATCHED = "expand-batched"  # level-at-a-time pipelined batches


#: IN-list sizes the batched expand pads its frontier chunks to.  A fixed
#: set of shapes bounds the number of distinct SQL texts, so the server's
#: plan cache starts hitting after the first few levels; the multi-key
#: index probe deduplicates keys, which makes the padding free.  The
#: canonical sizes live in the analysis package so the P003 lint and the
#: client can never disagree about what "padded" means.
BATCH_KEY_BUCKETS = PLAN_CACHE_KEY_BUCKETS

#: Upper bound on keys per statement; wider frontiers are split into
#: several statements (still one round trip — they ride the same batch).
BATCH_CHUNK_KEYS = BATCH_KEY_BUCKETS[-1]


class CheckOutMode(Enum):
    """Deployment modes for check-out (paper Section 6)."""

    TWO_PHASE = "two-phase"  # fetch tree, then UPDATEs: extra round trips
    SERVER_PROCEDURE = "server-procedure"  # function shipping: one round trip


@dataclass
class ExpandCheckpoint:
    """Resumption state of an interrupted level-at-a-time expand.

    ``root`` is the tree built so far (all completed levels attached),
    ``frontier`` the nodes whose children the lost batch was fetching and
    ``depth`` that level's index.  Passing the checkpoint back into
    :meth:`PDMClient.resume_multi_level_expand` retries only the lost
    level and continues — completed levels are never re-fetched.
    """

    root: StructureNode
    frontier: List[StructureNode]
    depth: int
    max_depth: Optional[int]

    @property
    def levels_completed(self) -> int:
        return self.depth


@dataclass
class ActionResult:
    """Outcome of one user action plus its measured cost."""

    seconds: float
    traffic: TrafficStats
    round_trips: int
    objects: List[Attrs] = field(default_factory=list)
    tree: Optional[StructureNode] = None
    checked_out: List[int] = field(default_factory=list)

    @property
    def node_count(self) -> int:
        if self.tree is not None:
            return self.tree.node_count()
        return len(self.objects)


class PDMClient:
    """A PDM user session bound to a remote connection and a rule table."""

    def __init__(
        self,
        connection: RemoteConnection,
        rule_table: Optional[RuleTable] = None,
        user: str = "scott",
        user_env: Optional[Dict[str, Any]] = None,
        default_permit: bool = True,
        exists_placement: ExistsPlacement = ExistsPlacement.INSIDE,
        configurator=None,
        selected_options: Optional[Sequence[str]] = None,
    ) -> None:
        self.connection = connection
        self.rule_table = rule_table if rule_table is not None else RuleTable()
        self.user = user
        self.user_env = dict(user_env or {})
        if configurator is not None and selected_options is not None:
            # Configuration rules are evaluated client-side on the selected
            # options only — no product data, no WAN messages (paper §3.1).
            from repro.rules.presets import USER_OPTIONS_VAR

            self.user_env[USER_OPTIONS_VAR] = configurator.validate(
                selected_options
            )
        self.default_permit = default_permit
        self.exists_placement = exists_placement
        self.modificator = QueryModificator(
            self.rule_table, self.user, self.user_env
        )
        self._eval_ctx = EvaluationContext(
            user_env=self.user_env,
            functions=dict(CLIENT_FUNCTIONS),
            related=self._related_exists,
        )
        #: Rendered SQL cache: (builder, early, action) -> sql text.
        self._sql_cache: Dict[Tuple[str, bool, str], str] = {}
        #: Resilience counters: how often expands lost a level, resumed
        #: from a checkpoint, or degraded from recursive to batched.
        self.statistics = {
            "expand_interruptions": 0,
            "expand_resumes": 0,
            "recursive_fallbacks": 0,
        }

    # -- measurement plumbing ---------------------------------------------------

    @property
    def recorder(self):
        """The stack's :class:`repro.obs.TraceRecorder` (None when off)."""
        return getattr(self.connection, "recorder", None)

    def _action_span(self, name: str, **meta: Any):
        """Root span for one user action.

        Opened at the same simulated instant as :meth:`_begin` and closed
        after :meth:`_finish` reads the clock, so the root span's duration
        equals the returned ``ActionResult.seconds`` exactly.
        """
        return maybe_span(self.recorder, name, kind="pdm", **meta)

    def _begin(self) -> Tuple[TrafficStats, float, int]:
        link = self.connection.link
        return (
            link.stats.snapshot(),
            link.clock.now,
            self.connection.statistics["round_trips"],
        )

    def _finish(self, begin, **payload) -> ActionResult:
        before_stats, before_time, before_round_trips = begin
        link = self.connection.link
        return ActionResult(
            seconds=link.clock.now - before_time,
            traffic=link.stats.delta_since(before_stats),
            round_trips=self.connection.statistics["round_trips"]
            - before_round_trips,
            **payload,
        )

    # -- rule helpers ---------------------------------------------------------

    def _permitted(self, attrs: Attrs, action: str) -> bool:
        rules = self.rule_table.relevant(
            self.user, action, str(attrs.get("type")), ConditionClass.ROW
        )
        return object_permitted(
            rules, attrs, self._eval_ctx, default_permit=self.default_permit
        )

    def _related_exists(self, obid, relation_table: str, related_table: str) -> bool:
        sql = (
            f"SELECT 1 FROM {relation_table} JOIN {related_table} "
            f"ON {relation_table}.right = {related_table}.obid "
            f"WHERE {relation_table}.left = ?"
        )
        return bool(self.connection.execute(sql, [obid]).rows)

    def _tree_rules(self, action: str, root_type: str, condition_class):
        return self.rule_table.relevant(
            self.user, action, root_type, condition_class
        )

    def _apply_tree_conditions_late(
        self, tree: Optional[StructureNode], action: str
    ) -> Optional[StructureNode]:
        """Client-side evaluation of tree conditions on a fetched tree,
        mirroring the recursive query's semantics: ∃structure prunes nodes
        (and their subtrees) first; ∀rows and tree-aggregate conditions
        then apply all-or-nothing over the surviving tree."""
        if tree is None:
            return None
        root_type = str(tree.object_type)
        exists_rules = self._tree_rules(
            action, root_type, ConditionClass.EXISTS_STRUCTURE
        )
        for rule in exists_rules:
            condition = rule.condition

            def keep(node: StructureNode) -> bool:
                if str(node.object_type) != condition.object_type:
                    return True
                return exists_structure_holds(condition, node.attrs, self._eval_ctx)

            if not keep(tree):
                return None
            tree.prune(keep)
        nodes = [node.attrs for node in tree.iter_nodes()]
        for rule in self._tree_rules(action, root_type, ConditionClass.FORALL_ROWS):
            if not forall_holds(rule.condition, nodes, self._eval_ctx):
                return None
        for rule in self._tree_rules(
            action, root_type, ConditionClass.TREE_AGGREGATE
        ):
            if not tree_aggregate_holds(rule.condition, nodes, self._eval_ctx):
                return None
        return tree

    # -- SQL construction --------------------------------------------------------

    def _navigational_sql(self, builder_name: str, early: bool, action: str) -> str:
        key = (builder_name, early, action)
        cached = self._sql_cache.get(key)
        if cached is not None:
            return cached
        builder = (
            queries.child_fetch_spec
            if builder_name == "child_fetch"
            else queries.set_query_spec
        )
        spec = builder()
        if early:
            spec = self.modificator.modify_navigational(spec, action)
        sql = render_select(spec.to_statement())
        self._sql_cache[key] = sql
        return sql

    def _batched_sql(self, node_type: str, key_count: int, action: str) -> str:
        """Rendered (and rule-injected) frontier fetch for one node type
        and one IN-list shape; cached so repeated shapes re-send the same
        SQL text and the server's plan cache can hit."""
        key = (f"batched_children_{node_type}_{key_count}", True, action)
        cached = self._sql_cache.get(key)
        if cached is not None:
            return cached
        spec = queries.batched_children_spec(node_type, key_count)
        spec = self.modificator.modify_navigational(spec, action)
        sql = render_select(spec.to_statement())
        self._sql_cache[key] = sql
        return sql

    def _recursive_sql(self, action: str, depth_bounded: bool = False) -> str:
        key = (
            "recursive_mle_bounded" if depth_bounded else "recursive_mle",
            True,
            action,
        )
        cached = self._sql_cache.get(key)
        if cached is not None:
            return cached
        # The bound itself is a parameter; any non-None value enables the
        # depth machinery in the spec builder.
        spec = queries.recursive_mle_spec(max_depth=0 if depth_bounded else None)
        spec = self.modificator.modify_recursive(
            spec, action, exists_placement=self.exists_placement
        )
        sql = render_select(spec.to_statement())
        self._sql_cache[key] = sql
        return sql

    # -- object fetch --------------------------------------------------------------

    def fetch_object(self, obid: int) -> Attrs:
        """Point-fetch one object (root bootstrap; not part of the paper's
        cost model, which assumes the root "is already at the client")."""
        result = self.connection.execute(queries.fetch_object_sql("assy"), [obid])
        if result.rows:
            return result.as_dicts()[0]
        result = self.connection.execute(queries.fetch_object_sql("comp"), [obid])
        if result.rows:
            attrs = result.as_dicts()[0]
            attrs.setdefault("dec", "")
            return attrs
        raise UnknownObjectError(f"no object with obid {obid}")

    # -- the three analysed actions ---------------------------------------------------

    def query(
        self,
        product_id: int,
        strategy: ExpandStrategy = ExpandStrategy.NAVIGATIONAL_LATE,
    ) -> ActionResult:
        """The 'Query' action: all nodes of a product, no structure info."""
        early = strategy is not ExpandStrategy.NAVIGATIONAL_LATE
        with self._action_span(
            "pdm.query", strategy=strategy.value, product_id=product_id
        ):
            begin = self._begin()
            sql = self._navigational_sql("set_query", early, Actions.QUERY)
            result = self.connection.execute(sql, [product_id, product_id])
            objects = result.as_dicts()
            if not early:
                objects = [
                    attrs
                    for attrs in objects
                    if self._permitted(attrs, Actions.QUERY)
                ]
            return self._finish(begin, objects=objects)

    def single_level_expand(
        self,
        parent_obid: int,
        strategy: ExpandStrategy = ExpandStrategy.NAVIGATIONAL_LATE,
    ) -> ActionResult:
        """Expand one level below *parent_obid* (one round trip)."""
        early = strategy is not ExpandStrategy.NAVIGATIONAL_LATE
        with self._action_span(
            "pdm.single_level_expand",
            strategy=strategy.value,
            parent_obid=parent_obid,
        ):
            begin = self._begin()
            children = self._fetch_children(parent_obid, early, Actions.EXPAND)
            return self._finish(
                begin,
                objects=[child for __, child in children],
            )

    def multi_level_expand(
        self,
        root_obid: int,
        strategy: ExpandStrategy = ExpandStrategy.NAVIGATIONAL_LATE,
        root_attrs: Optional[Attrs] = None,
        max_depth: Optional[int] = None,
    ) -> ActionResult:
        """Expand the structure below *root_obid*.

        ``root_attrs`` short-circuits the root bootstrap fetch (the model
        assumes the root is client-resident); without it one extra point
        query is issued before measurement starts.  ``max_depth`` bounds
        the expansion (a partial multi-level expand); None retrieves the
        entire structure.
        """
        if root_attrs is None:
            root_attrs = self.fetch_object(root_obid)
        with self._action_span(
            "pdm.multi_level_expand",
            strategy=strategy.value,
            root_obid=root_obid,
            max_depth=max_depth,
        ):
            begin = self._begin()
            if strategy is ExpandStrategy.RECURSIVE_EARLY:
                tree = self._expand_recursive(root_obid, root_attrs, max_depth)
            elif strategy is ExpandStrategy.EXPAND_BATCHED:
                tree = self._expand_batched(root_obid, root_attrs, max_depth)
                tree = self._apply_tree_conditions_late(
                    tree, Actions.MULTI_LEVEL_EXPAND
                )
            else:
                early = strategy is ExpandStrategy.NAVIGATIONAL_EARLY
                tree = self._expand_navigational(
                    root_obid, root_attrs, early, max_depth
                )
                tree = self._apply_tree_conditions_late(
                    tree, Actions.MULTI_LEVEL_EXPAND
                )
            return self._finish(begin, tree=tree)

    def resume_multi_level_expand(
        self, checkpoint: ExpandCheckpoint
    ) -> ActionResult:
        """Continue an interrupted batched expand from its checkpoint.

        Only the lost level (and the levels below it) are fetched; the
        completed levels stay as already built in the checkpoint's tree.
        The returned :class:`ActionResult` measures the resumed portion.
        """
        with self._action_span(
            "pdm.resume_multi_level_expand",
            root_obid=checkpoint.root.obid,
            resume_depth=checkpoint.depth,
        ):
            begin = self._begin()
            self.statistics["expand_resumes"] += 1
            tree = self._expand_batched(
                checkpoint.root.obid, None, checkpoint=checkpoint
            )
            tree = self._apply_tree_conditions_late(
                tree, Actions.MULTI_LEVEL_EXPAND
            )
            return self._finish(begin, tree=tree)

    def resilient_multi_level_expand(
        self,
        root_obid: int,
        strategy: ExpandStrategy = ExpandStrategy.EXPAND_BATCHED,
        root_attrs: Optional[Attrs] = None,
        max_depth: Optional[int] = None,
        max_resumes: int = 16,
    ) -> ActionResult:
        """Multi-level expand that degrades instead of failing.

        * ``RECURSIVE_EARLY``: if the single recursive round trip cannot
          be completed (retry budget exhausted or circuit open), fall back
          to the level-checkpointed batched strategy — same visible tree,
          but the unit of loss shrinks from the whole response to one
          frontier batch.
        * ``EXPAND_BATCHED`` (and the fallback path): every interruption
          resumes from the last completed level, up to ``max_resumes``
          times.  While the circuit breaker is open, the client waits out
          the cool-down on the simulated clock before resuming.
        * Navigational strategies retry per child fetch at the connection
          layer already (their unit of loss is one small query), so they
          simply delegate to :meth:`multi_level_expand`.

        The returned measurement covers everything: timeouts, backoff,
        breaker cool-downs, the fallback's extra round trips.
        """
        if strategy in (
            ExpandStrategy.NAVIGATIONAL_LATE,
            ExpandStrategy.NAVIGATIONAL_EARLY,
        ):
            return self.multi_level_expand(
                root_obid, strategy, root_attrs=root_attrs, max_depth=max_depth
            )
        if root_attrs is None:
            root_attrs = self.fetch_object(root_obid)
        with self._action_span(
            "pdm.resilient_multi_level_expand",
            strategy=strategy.value,
            root_obid=root_obid,
            max_depth=max_depth,
        ):
            begin = self._begin()
            if strategy is ExpandStrategy.RECURSIVE_EARLY:
                try:
                    tree = self._expand_recursive(
                        root_obid, root_attrs, max_depth
                    )
                    return self._finish(begin, tree=tree)
                except (TimeoutError, CircuitOpenError):
                    self.statistics["recursive_fallbacks"] += 1
                    if self.recorder is not None:
                        self.recorder.event("pdm.recursive_fallback")
                    self._wait_for_circuit()
            clock = self.connection.link.clock
            checkpoint: Optional[ExpandCheckpoint] = None
            interrupted: Optional[ExpandInterrupted] = None
            for __ in range(max_resumes + 1):
                try:
                    if checkpoint is None:
                        tree = self._expand_batched(
                            root_obid, root_attrs, max_depth
                        )
                    else:
                        self.statistics["expand_resumes"] += 1
                        tree = self._expand_batched(
                            root_obid, None, checkpoint=checkpoint
                        )
                except ExpandInterrupted as error:
                    checkpoint = error.checkpoint
                    interrupted = error
                    # Timeouts and backoff already advanced the clock; if
                    # the breaker opened, sleep (simulated) until it
                    # half-opens.
                    self._wait_for_circuit()
                    continue
                tree = self._apply_tree_conditions_late(
                    tree, Actions.MULTI_LEVEL_EXPAND
                )
                return self._finish(begin, tree=tree)
            raise ExpandInterrupted(
                f"expand of {root_obid} still failing after {max_resumes} "
                f"resumes (simulated t={clock.now:.1f}s)",
                checkpoint=checkpoint,
            ) from interrupted

    def _wait_for_circuit(self) -> None:
        """Advance the simulated clock until the breaker allows a trial."""
        breaker = self.connection.circuit_breaker
        clock = self.connection.link.clock
        if breaker is not None and not breaker.allow(clock.now):
            clock.advance(
                breaker.seconds_until_trial(clock.now), "circuit_wait"
            )

    def _fetch_children(
        self, parent_obid: int, early: bool, action: str
    ) -> List[Tuple[Attrs, Attrs]]:
        """One navigational child fetch; returns (link, node) attr pairs,
        filtered by row rules (server-side when *early*)."""
        sql = self._navigational_sql("child_fetch", early, action)
        result = self.connection.execute(sql, [parent_obid, parent_obid])
        children: List[Tuple[Attrs, Attrs]] = []
        for row in result.as_dicts():
            link_attrs, node_attrs = self._split_child_row(row)
            if not early:
                if not self._permitted(link_attrs, action):
                    continue
                if not self._permitted(node_attrs, action):
                    continue
            children.append((link_attrs, node_attrs))
        return children

    @staticmethod
    def _split_child_row(row: Attrs) -> Tuple[Attrs, Attrs]:
        """Split one homogenised child-fetch row into (link, node) attrs."""
        link_keys = ("link_obid", "left", "right", "eff_from", "eff_to", "link_opt")
        link_attrs = {
            "type": "link",
            "obid": row["link_obid"],
            "left": row["left"],
            "right": row["right"],
            "eff_from": row["eff_from"],
            "eff_to": row["eff_to"],
            "strc_opt": row["link_opt"],
        }
        node_attrs = {
            key: value for key, value in row.items() if key not in link_keys
        }
        return link_attrs, node_attrs

    @staticmethod
    def _padded_chunks(keys: List[Any]) -> List[List[Any]]:
        """Split a frontier into ≤BATCH_CHUNK_KEYS chunks, each padded (by
        repeating its first key) up to the next BATCH_KEY_BUCKETS size."""
        chunks: List[List[Any]] = []
        for start in range(0, len(keys), BATCH_CHUNK_KEYS):
            chunk = keys[start : start + BATCH_CHUNK_KEYS]
            bucket = next(
                size for size in BATCH_KEY_BUCKETS if size >= len(chunk)
            )
            chunks.append(chunk + [chunk[0]] * (bucket - len(chunk)))
        return chunks

    def _expand_navigational(
        self,
        root_obid: int,
        root_attrs: Attrs,
        early: bool,
        max_depth: Optional[int] = None,
    ) -> StructureNode:
        """BFS of single-level expands (the paper's baseline): one query
        per visible node, leaves included (unless the depth bound stops
        the descent earlier)."""
        root = StructureNode(attrs=dict(root_attrs))
        queue = [(root, 0)]
        while queue:
            node, depth = queue.pop()
            if max_depth is not None and depth >= max_depth:
                continue
            for link_attrs, child_attrs in self._fetch_children(
                node.obid, early, Actions.MULTI_LEVEL_EXPAND
            ):
                child = StructureNode(attrs=child_attrs, link=link_attrs)
                node.children.append(child)
                queue.append((child, depth + 1))
        return root

    def _expand_batched(
        self,
        root_obid: int,
        root_attrs: Optional[Attrs],
        max_depth: Optional[int] = None,
        checkpoint: Optional[ExpandCheckpoint] = None,
    ) -> StructureNode:
        """Level-at-a-time BFS over the pipelined batch protocol.

        Each level ships ONE :meth:`RemoteConnection.execute_batch` call
        carrying a frontier fetch per child type (chunked and padded to
        the bucket shapes), so the whole expand costs one round trip per
        level — O(depth) instead of the navigational O(node count).
        Components are leaves by construction, so only assemblies enter
        the next frontier; the deepest (all-component) level therefore
        triggers no query, and a depth-δ tree costs exactly δ trips.

        Row rules are injected server-side (Approach 1); tree conditions
        are applied late by the caller, as for the navigational paths.

        The loop is checkpointed: if a level's batch is lost for good
        (retry budget exhausted or circuit open), the completed levels
        survive in an :class:`ExpandCheckpoint` carried by the raised
        :class:`~repro.errors.ExpandInterrupted` — resuming re-fetches
        only the lost level, never the finished ones.
        """
        if checkpoint is not None:
            root = checkpoint.root
            frontier = checkpoint.frontier
            depth = checkpoint.depth
            max_depth = checkpoint.max_depth
        else:
            root = StructureNode(attrs=dict(root_attrs))
            frontier = [root] if str(root.object_type) != "comp" else []
            depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            with maybe_span(
                self.recorder,
                "pdm.expand_level",
                kind="pdm",
                depth=depth,
                parents=len(frontier),
            ) as span:
                keys: List[Any] = []
                seen = set()
                for node in frontier:
                    if node.obid not in seen:
                        seen.add(node.obid)
                        keys.append(node.obid)
                statements: List[Tuple[str, List[Any]]] = []
                for node_type in ("assy", "comp"):
                    for chunk in self._padded_chunks(keys):
                        sql = self._batched_sql(
                            node_type, len(chunk), Actions.MULTI_LEVEL_EXPAND
                        )
                        statements.append((sql, chunk))
                try:
                    batch_results = self.connection.execute_batch(statements)
                except (TimeoutError, CircuitOpenError) as error:
                    self.statistics["expand_interruptions"] += 1
                    raise ExpandInterrupted(
                        f"lost the level-{depth} frontier batch "
                        f"({len(frontier)} parents): {error}",
                        checkpoint=ExpandCheckpoint(
                            root=root,
                            frontier=frontier,
                            depth=depth,
                            max_depth=max_depth,
                        ),
                    ) from error
                children_by_parent: Dict[Any, List[Tuple[Attrs, Attrs]]] = {}
                for result in batch_results:
                    if isinstance(result, ReproError):
                        raise result
                    for row in result.as_dicts():
                        link_attrs, node_attrs = self._split_child_row(row)
                        children_by_parent.setdefault(
                            link_attrs["left"], []
                        ).append((link_attrs, node_attrs))
                next_frontier: List[StructureNode] = []
                for node in frontier:
                    for link_attrs, child_attrs in children_by_parent.get(
                        node.obid, ()
                    ):
                        child = StructureNode(
                            attrs=dict(child_attrs), link=dict(link_attrs)
                        )
                        node.children.append(child)
                        if str(child.object_type) != "comp":
                            next_frontier.append(child)
                if span is not None:
                    span.meta["children"] = sum(
                        len(found) for found in children_by_parent.values()
                    )
            frontier = next_frontier
            depth += 1
        return root

    def _expand_recursive(
        self,
        root_obid: int,
        root_attrs: Attrs,
        max_depth: Optional[int] = None,
    ) -> Optional[StructureNode]:
        """The single recursive query of Section 5.2 (one round trip)."""
        bounded = max_depth is not None
        sql = self._recursive_sql(Actions.MULTI_LEVEL_EXPAND, bounded)
        params = (
            [root_obid, max_depth, max_depth] if bounded else [root_obid]
        )
        result = self.connection.execute(sql, params)
        return build_tree(result.columns, result.rows, root_obid, root_attrs)

    # -- where-used (reverse BOM) -----------------------------------------------------

    def where_used(
        self,
        obid: int,
        strategy: ExpandStrategy = ExpandStrategy.RECURSIVE_EARLY,
    ) -> ActionResult:
        """All objects whose structure (transitively) contains *obid* —
        the classic "where-used" PDM query, e.g. before changing a shared
        component.

        The recursive strategy walks upward in one round trip; the
        navigational strategies climb parent by parent (one round trip
        per visited ancestor), exactly mirroring the expand analysis.
        Returns the ancestors as ``objects`` (attr dicts with ``obid``,
        ``via_link`` and ``distance``), nearest first; *obid* itself is
        not included.
        """
        with self._action_span(
            "pdm.where_used", strategy=strategy.value, obid=obid
        ):
            begin = self._begin()
            if strategy is ExpandStrategy.RECURSIVE_EARLY:
                result = self.connection.execute(
                    queries.where_used_recursive_sql(), [obid]
                )
                ancestors = [
                    attrs
                    for attrs in result.as_dicts()
                    if attrs["distance"] > 0
                ]
            else:
                ancestors = self._where_used_navigational(obid)
            return self._finish(begin, objects=ancestors)

    def _where_used_navigational(self, obid: int) -> List[Attrs]:
        sql = queries.where_used_parents_sql()
        ancestors: List[Attrs] = []
        seen = {obid}
        frontier = [(obid, 0)]
        while frontier:
            current, distance = frontier.pop()
            result = self.connection.execute(sql, [current])
            for row in result.as_dicts():
                parent = row["obid"]
                if parent in seen:
                    continue
                seen.add(parent)
                ancestors.append(
                    {
                        "obid": parent,
                        "via_link": row["via_link"],
                        "distance": distance + 1,
                    }
                )
                frontier.append((parent, distance + 1))
        ancestors.sort(key=lambda attrs: (attrs["distance"], attrs["obid"]))
        return ancestors

    # -- check-out / check-in (Section 6 discussion) ---------------------------------

    def check_out(
        self,
        root_obid: int,
        mode: CheckOutMode = CheckOutMode.TWO_PHASE,
        root_attrs: Optional[Attrs] = None,
    ) -> ActionResult:
        """Gain exclusive access to an entire subtree.

        TWO_PHASE retrieves the subtree (recursive query, rules applied
        under the ``check_out`` action — e.g. the ∀rows "all checked in"
        condition of paper example 2) and then updates the checked-out
        flags with one UPDATE per node table: 3 round trips.
        SERVER_PROCEDURE ships the whole operation to the server: 1.
        """
        if mode is CheckOutMode.SERVER_PROCEDURE:
            with self._action_span(
                "pdm.check_out", mode=mode.value, root_obid=root_obid
            ):
                begin = self._begin()
                obids = self.connection.call_procedure(
                    "check_out_tree", [root_obid, self.user]
                )
                return self._finish(
                    begin, checked_out=[int(o) for o in obids]
                )
        if root_attrs is None:
            root_attrs = self.fetch_object(root_obid)
        with self._action_span(
            "pdm.check_out", mode=mode.value, root_obid=root_obid
        ):
            begin = self._begin()
            sql = self._recursive_sql(Actions.CHECK_OUT)
            result = self.connection.execute(sql, [root_obid])
            tree = build_tree(
                result.columns, result.rows, root_obid, root_attrs
            )
            if tree is None:
                raise CheckOutError(
                    f"check-out of {root_obid} denied: the rule conditions "
                    f"rejected the subtree (e.g. a node is already checked "
                    f"out)"
                )
            grouped = tree.obids_by_type()
            checked: List[int] = []
            for table in ("assy", "comp"):
                obids = grouped.get(table, [])
                if not obids:
                    continue
                self.connection.execute(
                    queries.update_checkout_sql(table, len(obids), "TRUE"),
                    [self.user] + obids,
                )
                checked.extend(obids)
            return self._finish(begin, checked_out=checked, tree=tree)

    def check_in(
        self, root_obid: int, mode: CheckOutMode = CheckOutMode.TWO_PHASE
    ) -> ActionResult:
        """Release a previously checked-out subtree."""
        with self._action_span(
            "pdm.check_in", mode=mode.value, root_obid=root_obid
        ):
            begin = self._begin()
            if mode is CheckOutMode.SERVER_PROCEDURE:
                obids = self.connection.call_procedure(
                    "check_in_tree", [root_obid, self.user]
                )
                return self._finish(
                    begin, checked_out=[int(o) for o in obids]
                )
            result = self.connection.execute(
                "SELECT obid FROM assy WHERE checkedout_by = ? "
                "UNION ALL SELECT obid FROM comp WHERE checkedout_by = ?",
                [self.user, self.user],
            )
            obids = [row[0] for row in result.rows]
            released: List[int] = []
            for table in ("assy", "comp"):
                if not obids:
                    break
                self.connection.execute(
                    f"UPDATE {table} SET checkedout = FALSE, "
                    f"checkedout_by = '' WHERE checkedout_by = ?",
                    [self.user],
                )
            released = obids
            return self._finish(begin, checked_out=released)
