"""Typed records for PDM objects and their flat relational rows.

The PDM philosophy stores heterogeneous objects (assemblies, components,
specifications) and the relations between them in "ordinary, normalized
tables" (paper Section 1); these dataclasses are the typed client-side
view and know how to serialise themselves into the row layout of
:mod:`repro.pdm.schema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: Type discriminator values used in the ``type`` column.
TYPE_ASSEMBLY = "assy"
TYPE_COMPONENT = "comp"
TYPE_LINK = "link"
TYPE_SPEC = "spec"

#: Default structure-option masks: bit 1 = standard configuration.
OPTION_STANDARD = 1
OPTION_ALTERNATE = 2


@dataclass
class Assembly:
    """An assembly — an inner node of the product structure."""

    obid: int
    name: str
    decomposable: bool = True
    make_or_buy: str = "make"
    weight: float = 1.0
    state: str = "in_work"
    checked_out: bool = False
    checked_out_by: str = ""
    product: int = 0
    strc_opt: int = OPTION_STANDARD
    payload: str = ""

    def to_row(self) -> Tuple[Any, ...]:
        return (
            TYPE_ASSEMBLY,
            self.obid,
            self.name,
            "+" if self.decomposable else "-",
            self.make_or_buy,
            self.weight,
            self.state,
            self.checked_out,
            self.checked_out_by,
            self.product,
            self.strc_opt,
            self.payload,
        )


@dataclass
class Component:
    """A component — a single part, a leaf of the product structure."""

    obid: int
    name: str
    make_or_buy: str = "make"
    weight: float = 0.1
    state: str = "in_work"
    checked_out: bool = False
    checked_out_by: str = ""
    product: int = 0
    strc_opt: int = OPTION_STANDARD
    payload: str = ""

    def to_row(self) -> Tuple[Any, ...]:
        return (
            TYPE_COMPONENT,
            self.obid,
            self.name,
            self.make_or_buy,
            self.weight,
            self.state,
            self.checked_out,
            self.checked_out_by,
            self.product,
            self.strc_opt,
            self.payload,
        )


@dataclass
class LinkRow:
    """A structural relation between a parent object and a child object.

    Links carry the configuration management data: effectivities (valid
    from/to unit numbers) and structure options (paper Section 3.1).
    """

    obid: int
    left: int  # parent object id
    right: int  # child object id
    eff_from: int = 1
    eff_to: int = 999_999
    strc_opt: int = OPTION_STANDARD

    def to_row(self) -> Tuple[Any, ...]:
        return (
            TYPE_LINK,
            self.obid,
            self.left,
            self.right,
            self.eff_from,
            self.eff_to,
            self.strc_opt,
        )


@dataclass
class Specification:
    """A specification document attachable to assemblies/components."""

    obid: int
    name: str
    document: str = ""

    def to_row(self) -> Tuple[Any, ...]:
        return (TYPE_SPEC, self.obid, self.name, self.document)


@dataclass
class SpecifiedBy:
    """The relation linking objects to their specifications."""

    obid: int
    left: int  # the specified object
    right: int  # the specification

    def to_row(self) -> Tuple[Any, ...]:
        return (self.obid, self.left, self.right)
