"""SQL builders for the PDM user actions.

Every builder returns a *structured* query spec
(:class:`~repro.rules.modificator.NavigationalQuerySpec` or
:class:`~repro.rules.modificator.RecursiveQuerySpec`) carrying the
metadata the query modificator needs; rendering to SQL text happens after
modification.  The recursive builder produces exactly the query shape of
paper Section 5.2: a seed branch, one recursive branch per node type
(homogenised into the CTE's result type, missing attributes NULL/'' -
filled), an outer SELECT casting nodes to the unified result type and an
outer SELECT retrieving the link rows between retrieved nodes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.pdm.schema import NODE_COLUMNS
from repro.rules.modificator import (
    BlockRole,
    NavigationalQuerySpec,
    RecursiveQuerySpec,
    SelectBlock,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb.types import BOOLEAN, DOUBLE, INTEGER

#: Column order of a navigational child-fetch result row.
CHILD_FETCH_COLUMNS = (
    "link_obid",
    "left",
    "right",
    "eff_from",
    "eff_to",
    "link_opt",
) + NODE_COLUMNS

#: Name of the recursive common table expression (paper uses ``rtbl``).
CTE_NAME = "rtbl"


def _col(name: str, qualifier: Optional[str] = None) -> ast.ColumnRef:
    return ast.ColumnRef(name=name, qualifier=qualifier)


def _item(expression: ast.Expression, alias: Optional[str] = None) -> ast.SelectItem:
    return ast.SelectItem(expression=expression, alias=alias)


def _eq(left: ast.Expression, right: ast.Expression) -> ast.BinaryOp:
    return ast.BinaryOp(operator="=", left=left, right=right)


def _null_as(sql_type) -> ast.Cast:
    return ast.Cast(operand=ast.Literal(value=None), target=sql_type)


def _node_items(alias: str, node_type: str) -> List[ast.SelectItem]:
    """Select-list items projecting a node table row onto NODE_COLUMNS.

    Components have no ``dec`` attribute; the homogenisation fills it with
    the empty string, exactly as the paper's example query does.
    """
    items: List[ast.SelectItem] = []
    for column in NODE_COLUMNS:
        if column == "dec" and node_type == "comp":
            items.append(_item(ast.Literal(value=""), alias="dec"))
        else:
            items.append(_item(_col(column, alias), alias=column))
    return items


def _link_items(alias: str = "link") -> List[ast.SelectItem]:
    """Link attributes in homogenised order (``link_opt`` aliases the
    link's own ``strc_opt`` so it cannot clash with the node column)."""
    return [
        _item(_col("obid", alias), alias="link_obid"),
        _item(_col("left", alias), alias="left"),
        _item(_col("right", alias), alias="right"),
        _item(_col("eff_from", alias), alias="eff_from"),
        _item(_col("eff_to", alias), alias="eff_to"),
        _item(_col("strc_opt", alias), alias="link_opt"),
    ]


def child_fetch_spec() -> NavigationalQuerySpec:
    """Navigational single-level expand: all children of one parent.

    One SQL statement (two UNION ALL branches, one per child type) so the
    whole expand costs exactly one round trip, matching the paper's model
    of "one query per visited node".  Parameters: the parent obid, twice.
    """
    blocks: List[SelectBlock] = []
    for position, node_type in enumerate(("assy", "comp")):
        join = ast.Join(
            left=ast.TableRef(name="link"),
            right=ast.TableRef(name=node_type),
            kind="INNER",
            condition=_eq(_col("right", "link"), _col("obid", node_type)),
        )
        core = ast.SelectCore(
            items=_link_items() + _node_items(node_type, node_type),
            from_items=[join],
            where=_eq(_col("left", "link"), ast.Parameter(index=position)),
        )
        blocks.append(
            SelectBlock(
                core=core,
                role=BlockRole.RECURSIVE,  # navigational step ~ one level
                object_type=node_type,
                tables={"link": "link", node_type: node_type},
            )
        )
    return NavigationalQuerySpec(blocks=blocks)


def batched_children_spec(node_type: str, key_count: int) -> NavigationalQuerySpec:
    """Level-at-a-time frontier fetch for one child type.

    ``WHERE link.left IN (?, ..., ?)`` retrieves the children of an
    entire frontier of parents in ONE indexed statement (the planner
    compiles the IN-list on the indexed ``link.left`` into a multi-key
    index probe).  One spec per node type keeps each statement small and
    individually cacheable; the batch protocol ships both per level in a
    single round trip.  Parameters: the frontier obids, once.
    """
    if key_count < 1:
        raise ValueError("a batched child fetch needs at least one key")
    join = ast.Join(
        left=ast.TableRef(name="link"),
        right=ast.TableRef(name=node_type),
        kind="INNER",
        condition=_eq(_col("right", "link"), _col("obid", node_type)),
    )
    core = ast.SelectCore(
        items=_link_items() + _node_items(node_type, node_type),
        from_items=[join],
        where=ast.InList(
            operand=_col("left", "link"),
            items=[ast.Parameter(index=position) for position in range(key_count)],
        ),
    )
    block = SelectBlock(
        core=core,
        role=BlockRole.RECURSIVE,
        object_type=node_type,
        tables={"link": "link", node_type: node_type},
    )
    return NavigationalQuerySpec(blocks=[block])


def set_query_spec() -> NavigationalQuerySpec:
    """The 'Query' action: all nodes of a product, without structure info
    (paper Section 2: "a query is assumed to retrieve all nodes of a tree
    (without the structure information)").  Parameters: product id, twice.
    """
    blocks: List[SelectBlock] = []
    for position, node_type in enumerate(("assy", "comp")):
        core = ast.SelectCore(
            items=_node_items(node_type, node_type),
            from_items=[ast.TableRef(name=node_type)],
            where=_eq(_col("product", node_type), ast.Parameter(index=position)),
        )
        blocks.append(
            SelectBlock(
                core=core,
                role=BlockRole.RECURSIVE,
                object_type=node_type,
                tables={node_type: node_type},
            )
        )
    return NavigationalQuerySpec(blocks=blocks)


def recursive_mle_spec(
    order_by: bool = False, max_depth: Optional[int] = None
) -> RecursiveQuerySpec:
    """The multi-level expand as ONE recursive query (paper Section 5.2).

    Parameter 0 is the root obid.  The CTE collects assemblies and
    components; the outer part returns the homogenised node rows plus the
    link rows connecting retrieved nodes.

    With ``max_depth`` the CTE carries a ``depth`` column and the
    recursive branches stop descending below the bound (a *partial*
    multi-level expand); the bound is a parameter, so one prepared
    statement serves every depth.  Parameter order in the rendered SQL:
    root obid, then the bound once per recursive branch.
    """
    depth_bounded = max_depth is not None
    seed_items = _node_items("assy", "assy")
    if depth_bounded:
        seed_items = seed_items + [_item(ast.Literal(value=0), alias="depth")]
    seed = SelectBlock(
        core=ast.SelectCore(
            items=seed_items,
            from_items=[ast.TableRef(name="assy")],
            where=_eq(_col("obid", "assy"), ast.Parameter(index=0)),
        ),
        role=BlockRole.SEED,
        object_type="assy",
        tables={"assy": "assy"},
    )
    recursive_blocks = []
    for position, node_type in enumerate(("assy", "comp")):
        join = ast.Join(
            left=ast.Join(
                left=ast.TableRef(name=CTE_NAME),
                right=ast.TableRef(name="link"),
                kind="INNER",
                condition=_eq(_col("obid", CTE_NAME), _col("left", "link")),
            ),
            right=ast.TableRef(name=node_type),
            kind="INNER",
            condition=_eq(_col("right", "link"), _col("obid", node_type)),
        )
        branch_items = _node_items(node_type, node_type)
        where = None
        if depth_bounded:
            branch_items = branch_items + [
                _item(
                    ast.BinaryOp(
                        operator="+",
                        left=_col("depth", CTE_NAME),
                        right=ast.Literal(value=1),
                    ),
                    alias="depth",
                )
            ]
            where = ast.BinaryOp(
                operator="<",
                left=_col("depth", CTE_NAME),
                right=ast.Parameter(index=1 + position),
            )
        recursive_blocks.append(
            SelectBlock(
                core=ast.SelectCore(
                    items=branch_items,
                    from_items=[join],
                    where=where,
                ),
                role=BlockRole.RECURSIVE,
                object_type=node_type,
                tables={CTE_NAME: CTE_NAME, "link": "link", node_type: node_type},
            )
        )
    outer_nodes = SelectBlock(
        core=ast.SelectCore(
            items=[_item(_col(column), alias=column) for column in NODE_COLUMNS]
            + [
                _item(_null_as(INTEGER), alias="left"),
                _item(_null_as(INTEGER), alias="right"),
                _item(_null_as(INTEGER), alias="eff_from"),
                _item(_null_as(INTEGER), alias="eff_to"),
                _item(_null_as(INTEGER), alias="link_opt"),
            ],
            from_items=[ast.TableRef(name=CTE_NAME)],
        ),
        role=BlockRole.OUTER_NODES,
        object_type=None,
        tables={CTE_NAME: CTE_NAME},
    )
    in_rtbl = ast.SelectStatement(
        body=ast.SelectCore(
            items=[_item(_col("obid"))],
            from_items=[ast.TableRef(name=CTE_NAME)],
        )
    )
    in_rtbl_again = ast.SelectStatement(
        body=ast.SelectCore(
            items=[_item(_col("obid"))],
            from_items=[ast.TableRef(name=CTE_NAME)],
        )
    )
    outer_links = SelectBlock(
        core=ast.SelectCore(
            items=[
                _item(_col("type", "link"), alias="type"),
                _item(_col("obid", "link"), alias="obid"),
                _item(ast.Literal(value=""), alias="name"),
                _item(ast.Literal(value=""), alias="dec"),
                _item(ast.Literal(value=""), alias="make_or_buy"),
                _item(_null_as(DOUBLE), alias="weight"),
                _item(ast.Literal(value=""), alias="state"),
                _item(_null_as(BOOLEAN), alias="checkedout"),
                _item(_null_as(INTEGER), alias="product"),
                _item(_null_as(INTEGER), alias="strc_opt"),
                _item(ast.Literal(value=""), alias="payload"),
                _item(_col("left", "link"), alias="left"),
                _item(_col("right", "link"), alias="right"),
                _item(_col("eff_from", "link"), alias="eff_from"),
                _item(_col("eff_to", "link"), alias="eff_to"),
                _item(_col("strc_opt", "link"), alias="link_opt"),
            ],
            from_items=[ast.TableRef(name="link")],
            where=ast.BinaryOp(
                operator="AND",
                left=ast.InSubquery(
                    operand=_col("left", "link"), subquery=in_rtbl
                ),
                right=ast.InSubquery(
                    operand=_col("right", "link"), subquery=in_rtbl_again
                ),
            ),
        ),
        role=BlockRole.OUTER_LINKS,
        object_type="link",
        tables={"link": "link"},
    )
    order_items = (
        [
            ast.OrderItem(expression=ast.Literal(value=1)),
            ast.OrderItem(expression=ast.Literal(value=2)),
        ]
        if order_by
        else []
    )
    cte_columns = list(NODE_COLUMNS)
    if depth_bounded:
        cte_columns.append("depth")
    return RecursiveQuerySpec(
        cte_name=CTE_NAME,
        columns=cte_columns,
        root_type="assy",
        seed_blocks=[seed],
        recursive_blocks=recursive_blocks,
        outer_blocks=[outer_nodes, outer_links],
        order_by=order_items,
    )


def where_used_recursive_sql() -> str:
    """Where-used (reverse BOM): all ancestors of one object, upward.

    The mirror image of the multi-level expand — the recursion walks
    ``link.right -> link.left`` instead of left -> right, exercising the
    ``link.right`` index.  Parameter 0 is the starting obid.  Returns
    (ancestor obid, the link it was reached through, distance) triples;
    the starting object itself is distance 0 with a NULL link.
    """
    return (
        "WITH RECURSIVE used_in (obid, via_link, distance) AS "
        "(SELECT ?, CAST(NULL AS INTEGER), 0 "
        " UNION "
        " SELECT link.left, link.obid, used_in.distance + 1 "
        " FROM used_in JOIN link ON link.right = used_in.obid) "
        "SELECT obid, via_link, distance FROM used_in ORDER BY 3, 1"
    )


def where_used_parents_sql() -> str:
    """One navigational step of the where-used traversal: the direct
    parents of one object.  Parameter 0 is the child obid."""
    return (
        "SELECT link.left AS obid, link.obid AS via_link "
        "FROM link WHERE link.right = ?"
    )


def fetch_object_sql(table: str) -> str:
    """Point lookup of one object row by obid."""
    columns = ", ".join(
        column for column in NODE_COLUMNS if not (table == "comp" and column == "dec")
    )
    return f"SELECT {columns} FROM {table} WHERE obid = ?"


def update_checkout_sql(table: str, obid_count: int, value: str) -> str:
    """Bulk check-out/check-in UPDATE for *obid_count* objects."""
    placeholders = ", ".join("?" for __ in range(obid_count))
    return (
        f"UPDATE {table} SET checkedout = {value}, checkedout_by = ? "
        f"WHERE obid IN ({placeholders})"
    )
