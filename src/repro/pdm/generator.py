"""Synthetic product structures.

Two generators:

* :func:`figure2_dataset` — the paper's worked example (Figure 2): eight
  assemblies, seven components, eight links, extended with the
  specification tables used by the ∃structure example in Section 5.3.2.

* :func:`generate_product` — complete κ-ary trees with depth δ and
  visibility probability σ, the scenario workloads of Tables 2-4.  The σ
  of the analytic model is realised as a seeded Bernoulli draw per link:
  an invisible link gets a structure-option mask that does not overlap the
  user's selection, and every node below an invisible link is itself
  marked invisible (visibility is a property of the root path).  The
  generator records the ground-truth visible sets so tests can verify the
  rule machinery against it.

Substitution note (DESIGN.md): the paper used proprietary DaimlerChrysler
product data; these synthetic trees preserve the only properties the
experiments depend on — node counts per level, per-branch visibility, and
the ~512-byte average node size (reached by padding a ``payload`` column
until the wire-encoded row hits the target).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import PDMError
from repro.model.parameters import TreeParameters
from repro.pdm.objects import (
    Assembly,
    Component,
    LinkRow,
    OPTION_ALTERNATE,
    OPTION_STANDARD,
    Specification,
    SpecifiedBy,
)
from repro.sqldb import wire

#: obid ranges per object family, so ids never collide.
LINK_OBID_BASE = 5_000_000
SPEC_OBID_BASE = 8_000_000

#: Default target for the wire-encoded size of one node row (the paper's
#: "average size of a node in the object tree" = 512 bytes).
DEFAULT_NODE_BYTES = 512


@dataclass
class GeneratedProduct:
    """A synthetic product plus ground truth about rule visibility."""

    tree: TreeParameters
    root_obid: int
    assemblies: List[Assembly] = field(default_factory=list)
    components: List[Component] = field(default_factory=list)
    links: List[LinkRow] = field(default_factory=list)
    specifications: List[Specification] = field(default_factory=list)
    specified_by: List[SpecifiedBy] = field(default_factory=list)
    #: Object ids on a fully visible root path (root included).
    visible_obids: Set[int] = field(default_factory=set)
    #: Link ids whose own option mask overlaps the user selection.
    visible_links: Set[int] = field(default_factory=set)
    #: parent obid -> list of (link, child obid), for reference traversals.
    children: Dict[int, List[Tuple[LinkRow, int]]] = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        return len(self.assemblies) + len(self.components)

    @property
    def visible_node_count(self) -> int:
        """Visible nodes *below* the root (the paper's n_v convention)."""
        return len(self.visible_obids) - 1

    def root_attributes(self) -> Dict[str, object]:
        """Attribute dict of the root assembly (assumed present at the
        client, paper footnote 4)."""
        root = next(a for a in self.assemblies if a.obid == self.root_obid)
        return {
            "type": "assy",
            "obid": root.obid,
            "name": root.name,
            "dec": "+" if root.decomposable else "-",
            "make_or_buy": root.make_or_buy,
            "weight": root.weight,
            "state": root.state,
            "checkedout": root.checked_out,
            "product": root.product,
            "strc_opt": root.strc_opt,
            "payload": root.payload,
        }


def payload_length_for(target_bytes: int, sample_name: str = "Assy1000000") -> int:
    """Padding length so a wire-encoded node row is ≈ *target_bytes*.

    Measures a representative encoded row with empty payload and pads the
    difference.  Clamped at zero for very small targets.
    """
    sample = Assembly(obid=1_000_000, name=sample_name, product=1)
    base = sum(len(wire.encode_value(v)) for v in sample.to_row())
    return max(0, target_bytes - base)


def generate_product(
    tree: TreeParameters,
    seed: int = 0,
    root_obid: int = 1,
    node_bytes: int = DEFAULT_NODE_BYTES,
    spec_probability: float = 0.0,
    user_options: int = OPTION_STANDARD,
) -> GeneratedProduct:
    """Generate a complete κ-ary product tree.

    Levels 0..δ-1 hold assemblies, level δ holds components.  Visibility:
    every link is visible with probability σ (seeded, reproducible); a
    node is visible iff its whole root path is visible.  Both links and
    nodes carry option masks consistent with that ground truth, so either
    link-level or node-level rules reproduce the same visible set.

    ``spec_probability`` attaches a specification document to that share
    of nodes (for ∃structure experiments).
    """
    if tree.depth < 1:
        raise PDMError("tree depth must be at least 1")
    rng = random.Random(seed)
    padding = payload_length_for(node_bytes)
    product = GeneratedProduct(tree=tree, root_obid=root_obid)
    hidden_options = OPTION_ALTERNATE
    if user_options & hidden_options:
        raise PDMError(
            "user_options must not overlap the generator's hidden mask"
        )

    next_obid = root_obid
    next_link = LINK_OBID_BASE
    next_spec = SPEC_OBID_BASE

    def make_payload(obid: int) -> str:
        # Deterministic filler; varied slightly so rows are not identical.
        filler = f"payload-{obid}-"
        repeats = padding // len(filler) + 1
        return (filler * repeats)[:padding]

    root = Assembly(
        obid=root_obid,
        name=f"Assy{root_obid}",
        product=root_obid,
        strc_opt=user_options,
        payload=make_payload(root_obid),
    )
    product.assemblies.append(root)
    product.visible_obids.add(root_obid)

    #: (obid, level, visible) of the frontier being expanded.
    frontier: List[Tuple[int, bool]] = [(root_obid, True)]
    next_obid = root_obid + 1
    for level in range(1, tree.depth + 1):
        is_leaf_level = level == tree.depth
        new_frontier: List[Tuple[int, bool]] = []
        for parent_obid, parent_visible in frontier:
            child_entries: List[Tuple[LinkRow, int]] = []
            for __ in range(tree.branching):
                child_obid = next_obid
                next_obid += 1
                link_visible = rng.random() < tree.visibility
                node_visible = parent_visible and link_visible
                link = LinkRow(
                    obid=next_link,
                    left=parent_obid,
                    right=child_obid,
                    eff_from=1,
                    eff_to=999_999,
                    strc_opt=(
                        user_options if link_visible else hidden_options
                    ),
                )
                next_link += 1
                product.links.append(link)
                child_entries.append((link, child_obid))
                if link_visible:
                    product.visible_links.add(link.obid)
                node_options = user_options if node_visible else hidden_options
                if is_leaf_level:
                    product.components.append(
                        Component(
                            obid=child_obid,
                            name=f"Comp{child_obid}",
                            product=root_obid,
                            strc_opt=node_options,
                            payload=make_payload(child_obid),
                        )
                    )
                else:
                    product.assemblies.append(
                        Assembly(
                            obid=child_obid,
                            name=f"Assy{child_obid}",
                            product=root_obid,
                            strc_opt=node_options,
                            payload=make_payload(child_obid),
                        )
                    )
                if node_visible:
                    product.visible_obids.add(child_obid)
                if spec_probability > 0 and rng.random() < spec_probability:
                    specification = Specification(
                        obid=next_spec,
                        name=f"Spec{next_spec}",
                        document=f"doc-{child_obid}",
                    )
                    next_spec += 1
                    product.specifications.append(specification)
                    product.specified_by.append(
                        SpecifiedBy(
                            obid=next_spec,
                            left=child_obid,
                            right=specification.obid,
                        )
                    )
                    next_spec += 1
                new_frontier.append((child_obid, node_visible))
            product.children[parent_obid] = child_entries
        frontier = new_frontier
    return product


def generate_irregular_product(
    node_count: int,
    seed: int = 0,
    leaf_probability: float = 0.4,
    visibility: float = 1.0,
    root_obid: int = 1,
    node_bytes: int = DEFAULT_NODE_BYTES,
    spec_probability: float = 0.0,
    user_options: int = OPTION_STANDARD,
) -> GeneratedProduct:
    """Generate an *irregular* product structure by random attachment.

    Real product structures are not complete κ-ary trees: fan-out varies
    wildly and depths are ragged.  This generator grows a tree by
    attaching each new object to a uniformly chosen existing assembly;
    with ``leaf_probability`` the new object is a component (and never
    receives children).  Visibility follows the same per-link Bernoulli
    model as :func:`generate_product`, with consistent ground truth.

    ``node_count`` counts all objects including the root.  The recorded
    ``tree`` parameters approximate the realised shape (depth = realised
    depth, branching = realised maximum fan-out) so downstream reporting
    has something sensible to print; the analytic model's complete-tree
    formulas do not apply to irregular shapes — that is the point.
    """
    if node_count < 1:
        raise PDMError("node_count must be at least 1")
    if not 0.0 <= leaf_probability < 1.0:
        raise PDMError("leaf_probability must be within [0, 1)")
    rng = random.Random(seed)
    padding = payload_length_for(node_bytes)
    hidden_options = OPTION_ALTERNATE
    if user_options & hidden_options:
        raise PDMError(
            "user_options must not overlap the generator's hidden mask"
        )

    def make_payload(obid: int) -> str:
        filler = f"payload-{obid}-"
        repeats = padding // len(filler) + 1
        return (filler * repeats)[:padding]

    # Placeholder tree parameters; replaced with the realised shape below.
    product = GeneratedProduct(
        tree=TreeParameters(depth=1, branching=1, visibility=visibility),
        root_obid=root_obid,
    )
    root = Assembly(
        obid=root_obid,
        name=f"Assy{root_obid}",
        product=root_obid,
        strc_opt=user_options,
        payload=make_payload(root_obid),
    )
    product.assemblies.append(root)
    product.visible_obids.add(root_obid)
    #: (obid, depth, visible) of assemblies that may receive children.
    attachable = [(root_obid, 0, True)]
    next_link = LINK_OBID_BASE
    next_spec = SPEC_OBID_BASE
    max_depth = 0
    fanout: Dict[int, int] = {}
    for offset in range(1, node_count):
        child_obid = root_obid + offset
        parent_obid, parent_depth, parent_visible = rng.choice(attachable)
        fanout[parent_obid] = fanout.get(parent_obid, 0) + 1
        max_depth = max(max_depth, parent_depth + 1)
        link_visible = rng.random() < visibility
        node_visible = parent_visible and link_visible
        link = LinkRow(
            obid=next_link,
            left=parent_obid,
            right=child_obid,
            strc_opt=user_options if link_visible else hidden_options,
        )
        next_link += 1
        product.links.append(link)
        product.children.setdefault(parent_obid, []).append((link, child_obid))
        if link_visible:
            product.visible_links.add(link.obid)
        node_options = user_options if node_visible else hidden_options
        is_leaf = rng.random() < leaf_probability
        if is_leaf:
            product.components.append(
                Component(
                    obid=child_obid,
                    name=f"Comp{child_obid}",
                    product=root_obid,
                    strc_opt=node_options,
                    payload=make_payload(child_obid),
                )
            )
        else:
            product.assemblies.append(
                Assembly(
                    obid=child_obid,
                    name=f"Assy{child_obid}",
                    product=root_obid,
                    strc_opt=node_options,
                    payload=make_payload(child_obid),
                )
            )
            attachable.append((child_obid, parent_depth + 1, node_visible))
        if node_visible:
            product.visible_obids.add(child_obid)
        if spec_probability > 0 and rng.random() < spec_probability:
            specification = Specification(
                obid=next_spec, name=f"Spec{next_spec}"
            )
            next_spec += 1
            product.specifications.append(specification)
            product.specified_by.append(
                SpecifiedBy(
                    obid=next_spec, left=child_obid, right=specification.obid
                )
            )
            next_spec += 1
    product.tree = TreeParameters(
        depth=max(1, max_depth),
        branching=max(1, max(fanout.values(), default=1)),
        visibility=visibility,
    )
    return product


def figure2_dataset(with_specifications: bool = True) -> GeneratedProduct:
    """The paper's Figure 2 example, extended per Section 5.3.2.

    Eight assemblies (1-8; 5-8 not decomposable; 6-8 are unconnected spare
    rows exactly as in the figure), seven components (101-107; 105-107
    unconnected), eight links with the printed effectivities.  When
    ``with_specifications`` is set, components 101, 103 and 104 receive
    specification documents (so the ∃structure example filters out 102).
    """
    tree = TreeParameters(depth=2, branching=2, visibility=1.0)
    product = GeneratedProduct(tree=tree, root_obid=1)
    decomposable = {1: True, 2: True, 3: True, 4: True}
    for obid in range(1, 9):
        product.assemblies.append(
            Assembly(
                obid=obid,
                name=f"Assy{obid}",
                decomposable=decomposable.get(obid, False),
                product=1,
            )
        )
    for index in range(1, 8):
        product.components.append(
            Component(obid=100 + index, name=f"Comp{index}", product=1)
        )
    link_rows = [
        (1001, 1, 2, 1, 3),
        (1002, 1, 3, 4, 10),
        (1003, 2, 4, 1, 10),
        (1004, 2, 5, 1, 10),
        (1005, 4, 101, 6, 10),
        (1006, 4, 102, 1, 5),
        (1007, 5, 103, 1, 10),
        (1008, 5, 104, 1, 10),
    ]
    for obid, left, right, eff_from, eff_to in link_rows:
        link = LinkRow(
            obid=obid, left=left, right=right, eff_from=eff_from, eff_to=eff_to
        )
        product.links.append(link)
        product.children.setdefault(left, []).append((link, right))
        product.visible_links.add(obid)
    product.visible_obids = {1, 2, 3, 4, 5, 101, 102, 103, 104}
    if with_specifications:
        for position, target in enumerate((101, 103, 104)):
            spec_obid = SPEC_OBID_BASE + position
            product.specifications.append(
                Specification(obid=spec_obid, name=f"Spec{position + 1}")
            )
            product.specified_by.append(
                SpecifiedBy(
                    obid=SPEC_OBID_BASE + 100 + position,
                    left=target,
                    right=spec_obid,
                )
            )
    return product
