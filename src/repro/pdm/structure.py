"""Client-side reassembly of flat rows into product-structure trees.

The PDM system's "flat object representation" (paper Section 1) means a
retrieved tree arrives as a homogenised bag of node rows and link rows;
this module rebuilds the hierarchy — the client-side half of "the
corresponding structure information and data items are retrieved,
interpreted, and reassembled".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set

from repro.errors import PDMError
from repro.pdm.objects import TYPE_LINK

Attrs = Dict[str, Any]


@dataclass
class StructureNode:
    """One node of a reassembled product structure.

    ``link`` holds the attributes of the link through which this node was
    reached (None for the root).  Children keep the insertion order of the
    link rows.
    """

    attrs: Attrs
    link: Optional[Attrs] = None
    children: List["StructureNode"] = field(default_factory=list)

    @property
    def obid(self) -> Any:
        return self.attrs.get("obid")

    @property
    def object_type(self) -> Any:
        return self.attrs.get("type")

    def iter_nodes(self) -> Iterator["StructureNode"]:
        """Yield this node and all descendants, depth-first pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def node_count(self) -> int:
        return sum(1 for __ in self.iter_nodes())

    def obids(self) -> Set[Any]:
        return {node.obid for node in self.iter_nodes()}

    def obids_by_type(self) -> Dict[str, List[Any]]:
        grouped: Dict[str, List[Any]] = {}
        for node in self.iter_nodes():
            grouped.setdefault(str(node.object_type), []).append(node.obid)
        return grouped

    def find(self, obid: Any) -> Optional["StructureNode"]:
        for node in self.iter_nodes():
            if node.obid == obid:
                return node
        return None

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def canonical_bytes(self) -> bytes:
        """A canonical byte serialisation of the visible tree.

        Attribute order is normalised and children are sorted by link and
        node obid, so two trees compare byte-identical iff they carry the
        same nodes, links, attribute values and shape — regardless of how
        (or how often) the WAN delivered the rows that built them.
        """

        def encode(node: "StructureNode"):
            link = sorted((node.link or {}).items())
            return (
                sorted(node.attrs.items()),
                link,
                sorted(
                    (encode(child) for child in node.children),
                    key=repr,
                ),
            )

        return repr(encode(self)).encode("utf-8")

    def prune(self, keep) -> None:
        """Drop children (and their subtrees) for which ``keep(node)`` is
        false; applied recursively to the surviving nodes."""
        self.children = [child for child in self.children if keep(child)]
        for child in self.children:
            child.prune(keep)


def build_tree(
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    root_obid: Any,
    root_attrs: Optional[Attrs] = None,
) -> Optional[StructureNode]:
    """Rebuild a tree from homogenised (node ∪ link) rows.

    Rows with ``type = 'link'`` contribute edges; every other row is a
    node.  Returns None when the result contains neither the root node nor
    any rows (the all-or-nothing conditions produce exactly that).  When
    the root row itself was filtered away but ``root_attrs`` is supplied
    (root already at the client), the tree is still rooted there.
    """
    keys = [str(name).lower() for name in columns]
    nodes: Dict[Any, Attrs] = {}
    edges: Dict[Any, List[Attrs]] = {}
    for row in rows:
        attrs = dict(zip(keys, row))
        if attrs.get("type") == TYPE_LINK:
            edges.setdefault(attrs.get("left"), []).append(attrs)
        else:
            nodes[attrs.get("obid")] = attrs
    if root_obid in nodes:
        root = StructureNode(attrs=nodes[root_obid])
    elif root_attrs is not None and (nodes or edges):
        root = StructureNode(attrs=dict(root_attrs))
    else:
        return None
    seen = {root_obid}
    queue = [root]
    while queue:
        parent = queue.pop()
        for link_attrs in edges.get(parent.obid, ()):  # insertion order
            child_obid = link_attrs.get("right")
            child_attrs = nodes.get(child_obid)
            if child_attrs is None:
                continue  # link retrieved but its node filtered out
            if child_obid in seen:
                raise PDMError(
                    f"object {child_obid!r} appears on two paths — result "
                    f"rows do not form a tree"
                )
            seen.add(child_obid)
            child = StructureNode(attrs=child_attrs, link=link_attrs)
            parent.children.append(child)
            queue.append(child)
    return root


def trees_equal(left: Optional[StructureNode], right: Optional[StructureNode]) -> bool:
    """Structural equality on (obid, type) — used by the equivalence tests
    between late, early and recursive evaluation."""
    if left is None or right is None:
        return left is right
    if left.obid != right.obid or left.object_type != right.object_type:
        return False
    left_children = sorted(left.children, key=lambda node: str(node.obid))
    right_children = sorted(right.children, key=lambda node: str(node.obid))
    if len(left_children) != len(right_children):
        return False
    return all(
        trees_equal(a, b) for a, b in zip(left_children, right_children)
    )
