"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised by :mod:`repro` derive from :class:`ReproError` so that
applications can catch the whole family with one ``except`` clause while
still being able to distinguish SQL problems from network or rule problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SQLError(ReproError):
    """Base class for errors raised by the :mod:`repro.sqldb` engine."""


class LexerError(SQLError):
    """The SQL tokeniser met a character sequence it cannot tokenise."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The SQL parser met a token sequence that is not valid SQL."""


class CatalogError(SQLError):
    """A schema object (table, column, index, function) is missing/duplicated."""


class TypeMismatchError(SQLError):
    """An expression combined values of incompatible SQL types."""


class ExecutionError(SQLError):
    """A statement failed during execution (e.g. scalar subquery returned
    more than one row, recursion limit exceeded, division by zero)."""


class LintViolation(SQLError):
    """A statement was rejected by the static analyzer before execution
    (server strict-lint mode, :mod:`repro.analysis`).  Carries the
    findings that caused the rejection in the message."""


class IntegrityError(SQLError):
    """A statement violated an integrity constraint (duplicate primary key,
    NOT NULL column receiving NULL, arity mismatch on INSERT)."""


class NetworkError(ReproError):
    """Base class for errors raised by the :mod:`repro.network` simulator."""


class LinkConfigurationError(NetworkError):
    """A network link was configured with non-physical parameters."""


class FaultConfigurationError(NetworkError):
    """A fault profile was configured with impossible parameters
    (probabilities outside [0, 1], inverted outage windows, ...)."""


class NetworkFault(NetworkError):
    """Base class for injected transmission faults.  Raised by a
    :class:`~repro.network.faults.FaultyLink` when a message does not make
    it to the other side intact; a resilient client turns these into
    retries, a bare connection lets them propagate."""


class MessageDropped(NetworkFault):
    """A message was lost in transit (random loss or a server outage
    window); the sender will only notice through a timeout."""


class FrameCorrupted(NetworkFault):
    """A frame arrived but failed its integrity check (bit flip or
    truncation detected via the sequenced-frame CRC)."""


class TimeoutError(NetworkError):  # noqa: A001 - deliberate, namespaced
    """A request exhausted its retry budget without receiving an intact
    response.  Shadows the builtin only under the ``repro.errors``
    namespace; import it qualified."""


class CircuitOpenError(NetworkError):
    """The client's circuit breaker is open: recent consecutive failures
    crossed the threshold and the cool-down has not elapsed yet, so the
    call was rejected locally without touching the WAN."""


class ProtocolError(ReproError):
    """The client/server protocol was violated (unknown request type,
    response for a different request, use of a closed connection)."""


class DurabilityError(ReproError):
    """Base class for errors raised by the :mod:`repro.recovery`
    subsystem (simulated disk, write-ahead log, crash recovery)."""


class DiskCrashed(DurabilityError):
    """The simulated disk hit its injected crash point (power loss at the
    Nth append).  The write in flight may be torn or corrupted on the
    platter; every later write is rejected until the disk is reopened.
    A server catching this must treat itself as crashed: volatile state
    is gone, only the log survives."""


class WalCorruptError(DurabilityError):
    """The write-ahead log is damaged *in the middle*: a record failed
    its CRC or framing check but valid records follow it, so stopping at
    the damage would silently drop committed work.  (Damage at the tail
    is expected after a torn write and is *not* an error — recovery just
    stops at the last intact record.)"""


class ServerUnavailable(ReproError):
    """The server is crashed (or restarting) and refused the connection.
    Distinguishable on the wire so clients can wait out the restart and
    re-drive their transactions."""


class DuplicateRequest(ReproError):
    """A sequenced request was already executed before a server restart:
    its sequence number is at or below the durably logged high-water
    mark, but the cached response was lost with the crash.  The work was
    done exactly once; only the answer is gone — the client must
    reconcile through the database, never by re-sending."""


class ConcurrencyError(ReproError):
    """Base class for errors raised by the :mod:`repro.concurrency`
    subsystem (lock manager, session manager)."""


class LockUnavailable(ConcurrencyError):
    """A lock request conflicts with locks held by another transaction.

    For a transaction the request is *parked* in the FIFO wait queue
    before this is raised, so retrying the same statement later either
    claims the since-granted lock or keeps the queue position — the
    single-threaded server never blocks inside a request."""


class LockTimeout(ConcurrencyError):
    """A parked lock request outlived its timeout on the simulated clock.
    The waiting transaction has been aborted; restart it."""


class DeadlockError(ConcurrencyError):
    """The wait-for graph contained a cycle and this transaction was
    chosen as the victim (youngest-transaction policy) and aborted.
    Distinguishable on the wire so a client retry policy can restart
    the whole transaction."""


class SessionError(ConcurrencyError):
    """A wire session operation was invalid (unknown session, double
    open, transaction frame without an open session)."""


class PDMError(ReproError):
    """Base class for errors raised by the :mod:`repro.pdm` layer."""


class UnknownObjectError(PDMError):
    """A PDM operation referenced an object id that does not exist."""


class CheckOutError(PDMError):
    """A check-out/check-in operation could not be performed (e.g. a node
    in the requested subtree is already checked out)."""


class ExpandInterrupted(PDMError):
    """A multi-level expand lost a frontier batch for good (retry budget
    exhausted or circuit open).  Carries the checkpoint of the last
    completed level so the caller can resume without re-fetching."""

    def __init__(self, message: str, checkpoint=None) -> None:
        super().__init__(message)
        self.checkpoint = checkpoint


class RuleError(ReproError):
    """Base class for errors raised by the :mod:`repro.rules` machinery."""


class ConditionTranslationError(RuleError):
    """A rule condition could not be translated into an SQL predicate."""


class QueryModificationError(RuleError):
    """The query modificator could not inject a rule into a query, e.g.
    because the query structure is hidden (paper, end of Section 5.5)."""


class ModelError(ReproError):
    """Base class for errors raised by the analytic model in
    :mod:`repro.model` (invalid tree or network parameters)."""
