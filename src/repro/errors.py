"""Exception hierarchy shared by every subsystem of the reproduction.

All errors raised by :mod:`repro` derive from :class:`ReproError` so that
applications can catch the whole family with one ``except`` clause while
still being able to distinguish SQL problems from network or rule problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SQLError(ReproError):
    """Base class for errors raised by the :mod:`repro.sqldb` engine."""


class LexerError(SQLError):
    """The SQL tokeniser met a character sequence it cannot tokenise."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The SQL parser met a token sequence that is not valid SQL."""


class CatalogError(SQLError):
    """A schema object (table, column, index, function) is missing/duplicated."""


class TypeMismatchError(SQLError):
    """An expression combined values of incompatible SQL types."""


class ExecutionError(SQLError):
    """A statement failed during execution (e.g. scalar subquery returned
    more than one row, recursion limit exceeded, division by zero)."""


class IntegrityError(SQLError):
    """A statement violated an integrity constraint (duplicate primary key,
    NOT NULL column receiving NULL, arity mismatch on INSERT)."""


class NetworkError(ReproError):
    """Base class for errors raised by the :mod:`repro.network` simulator."""


class LinkConfigurationError(NetworkError):
    """A network link was configured with non-physical parameters."""


class ProtocolError(ReproError):
    """The client/server protocol was violated (unknown request type,
    response for a different request, use of a closed connection)."""


class PDMError(ReproError):
    """Base class for errors raised by the :mod:`repro.pdm` layer."""


class UnknownObjectError(PDMError):
    """A PDM operation referenced an object id that does not exist."""


class CheckOutError(PDMError):
    """A check-out/check-in operation could not be performed (e.g. a node
    in the requested subtree is already checked out)."""


class RuleError(ReproError):
    """Base class for errors raised by the :mod:`repro.rules` machinery."""


class ConditionTranslationError(RuleError):
    """A rule condition could not be translated into an SQL predicate."""


class QueryModificationError(RuleError):
    """The query modificator could not inject a rule into a query, e.g.
    because the query structure is hidden (paper, end of Section 5.5)."""


class ModelError(ReproError):
    """Base class for errors raised by the analytic model in
    :mod:`repro.model` (invalid tree or network parameters)."""
