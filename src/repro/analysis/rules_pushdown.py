"""Pushdown-safety rules (P001-P003).

The paper's Section 5.5 places each translated rule condition at the one
level of the recursive query where it is semantically safe: row
conditions anywhere their table occurs (step D), ∃structure probes in the
recursive part (step C), but ∀rows and tree-aggregate conditions only in
the *outer* SELECTs (steps A-B) — inside the recursion they would judge a
half-built tree.  P001 flags predicates over the whole recursion result
that ended up inside the recursive part.

P002 and P003 guard the access-path story: a predicate that wraps an
indexed column in an expression cannot use the index (Section 5.4), and a
parameter IN-list whose length is not one of the padded bucket sizes
generates a new SQL text per frontier width, defeating the plan cache the
batched expand relies on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.analysis.findings import (
    PLAN_CACHE_KEY_BUCKETS,
    Finding,
    Severity,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb.ast_walk import (
    constantish as _constantish,
    core_predicates,
    core_references,
    flatten_set_operations,
    iter_from_leaves,
    iter_subqueries,
    statement_references,
)
from repro.sqldb.expressions import contains_aggregate

_COMPARISON_OPERATORS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def check(
    statement: ast.SelectStatement,
    path: str = "",
    catalog: Optional[Any] = None,
    stats: Optional[Any] = None,
) -> List[Finding]:
    """Run P001-P003 over every core of *statement* (CTE bodies included).

    *stats* (a :class:`repro.sqldb.stats.StatsCatalog`) refines P002
    severity: losing an index on a column the optimizer would not have
    probed anyway — measured selectivity worse than
    :data:`repro.sqldb.stats.SELECTIVE_FRACTION` — is only an INFO."""
    findings: List[Finding] = []
    cte_names = set()
    if statement.with_clause is not None:
        for cte in statement.with_clause.ctes:
            cte_names.add(cte.name.lower())
        for cte in statement.with_clause.ctes:
            branches, __ = flatten_set_operations(cte.body)
            recursive = statement.with_clause.recursive and any(
                core_references(branch, cte.name) for branch in branches
            )
            for position, branch in enumerate(branches):
                branch_path = f"{path}cte[{cte.name}].branch[{position}]"
                if recursive:
                    findings.extend(
                        _check_placement(branch, cte.name, branch_path)
                    )
                findings.extend(
                    _check_predicates(
                        branch, branch_path, catalog, cte_names, stats
                    )
                )
    branches, __ = flatten_set_operations(statement.body)
    for position, branch in enumerate(branches):
        branch_path = (
            f"{path}body"
            if len(branches) == 1
            else f"{path}body.branch[{position}]"
        )
        findings.extend(
            _check_predicates(branch, branch_path, catalog, cte_names, stats)
        )
    return findings


# -- P001: tree conditions inside the recursive part -----------------------


def _check_placement(
    branch: ast.SelectCore, cte_name: str, branch_path: str
) -> List[Finding]:
    findings: List[Finding] = []
    for clause, conjunct in core_predicates(branch):
        for wrapper, subquery in iter_subqueries(conjunct):
            if not statement_references(subquery, cte_name):
                continue
            shape = _condition_shape(wrapper, subquery)
            findings.append(
                Finding(
                    "P001",
                    Severity.ERROR,
                    f"a {shape} condition over the whole recursion result "
                    f"({cte_name!r}) is placed inside the recursive part; "
                    f"it would judge a partially built tree — move it to "
                    f"the outer SELECT (Section 5.5 steps A-B)",
                    f"{branch_path}.{clause}",
                )
            )
            break  # one finding per conjunct is enough
    return findings


def _condition_shape(
    wrapper: ast.Expression, subquery: ast.SelectStatement
) -> str:
    if isinstance(wrapper, ast.ScalarSubquery):
        branches, __ = flatten_set_operations(subquery.body)
        for branch in branches:
            for item in branch.items:
                if isinstance(item, ast.SelectItem) and contains_aggregate(
                    item.expression
                ):
                    return "tree-aggregate"
        return "scalar"
    if isinstance(wrapper, (ast.ExistsTest, ast.InSubquery)) and wrapper.negated:
        return "∀rows"
    return "membership"


# -- P002 / P003: sargability and IN-list shape ----------------------------


def _check_predicates(
    core: ast.SelectCore,
    core_path: str,
    catalog: Optional[Any],
    cte_names: Set[str],
    stats: Optional[Any] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    bindings = _binding_map(core)
    for clause, conjunct in core_predicates(core):
        where = f"{core_path}.{clause}"
        findings.extend(
            _check_sargable(
                conjunct, where, bindings, catalog, cte_names, stats
            )
        )
        findings.extend(_check_in_list(conjunct, where))
    return findings


def _binding_map(core: ast.SelectCore) -> Dict[str, Optional[str]]:
    """Binding name (alias or table name, lowercase) -> base table name
    (None for derived tables)."""
    bindings: Dict[str, Optional[str]] = {}
    for item in core.from_items:
        for leaf in iter_from_leaves(item):
            if isinstance(leaf, ast.TableRef):
                key = (leaf.alias or leaf.name).lower()
                bindings[key] = leaf.name.lower()
            elif isinstance(leaf, ast.SubqueryRef):
                bindings[leaf.alias.lower()] = None
    return bindings


def _check_sargable(
    conjunct: ast.Expression,
    where: str,
    bindings: Dict[str, Optional[str]],
    catalog: Optional[Any],
    cte_names: Set[str],
    stats: Optional[Any] = None,
) -> List[Finding]:
    wrapped: Optional[ast.ColumnRef] = None
    reason = ""
    if (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.operator in _COMPARISON_OPERATORS
    ):
        sides = (conjunct.left, conjunct.right)
        for column_side, constant_side in (sides, sides[::-1]):
            if not _constantish(constant_side):
                continue
            if isinstance(column_side, ast.ColumnRef):
                continue  # bare column: sargable
            column = _first_column(column_side)
            if column is not None:
                wrapped = column
                reason = (
                    f"column {column} is wrapped in an expression on the "
                    f"{conjunct.operator!r} comparison"
                )
                break
    elif isinstance(conjunct, ast.Like):
        pattern = conjunct.pattern
        if (
            isinstance(pattern, ast.Literal)
            and isinstance(pattern.value, str)
            and pattern.value[:1] in ("%", "_")
        ):
            column = _first_column(conjunct.operand)
            if column is not None:
                wrapped = column
                reason = (
                    f"LIKE pattern {pattern.value!r} starts with a "
                    f"wildcard, so no index prefix can match"
                )
    if wrapped is None:
        return []
    indexed = _column_is_indexed(wrapped, bindings, catalog, cte_names)
    severity = Severity.WARNING if indexed else Severity.INFO
    if indexed and _index_not_worth_using(wrapped, bindings, stats):
        # Losing an index the optimizer would not probe anyway (the
        # column is non-selective per collected statistics) costs
        # nothing — keep the finding, drop the alarm.
        severity = Severity.INFO
    return [
        Finding(
            "P002",
            severity,
            f"non-sargable predicate: {reason}; the engine cannot use an "
            f"index for it (Section 5.4)",
            where,
        )
    ]


def _check_in_list(conjunct: ast.Expression, where: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk_expression(conjunct):
        if not isinstance(node, ast.InList) or node.negated:
            continue
        if not isinstance(node.operand, ast.ColumnRef):
            continue
        if len(node.items) < 2:
            continue
        if not all(isinstance(item, ast.Parameter) for item in node.items):
            continue
        if len(node.items) in PLAN_CACHE_KEY_BUCKETS:
            continue
        findings.append(
            Finding(
                "P003",
                Severity.WARNING,
                f"parameter IN-list of length {len(node.items)} is not a "
                f"padded bucket size {PLAN_CACHE_KEY_BUCKETS}; every "
                f"distinct length is a new SQL text, defeating the plan "
                f"cache — pad with repeated keys",
                where,
            )
        )
    return findings


def _column_is_indexed(
    column: ast.ColumnRef,
    bindings: Dict[str, Optional[str]],
    catalog: Optional[Any],
    cte_names: Set[str],
) -> bool:
    if catalog is None:
        return False
    table = resolve_column_table(column, bindings)
    if table is None or table in cte_names:
        return False
    if not catalog.exists(table):
        return False
    entry = catalog.lookup(table)
    return entry.storage.find_index([column.name]) is not None


def _index_not_worth_using(
    column: ast.ColumnRef,
    bindings: Dict[str, Optional[str]],
    stats: Optional[Any],
) -> bool:
    """True when collected statistics say an equality probe on *column*
    would not beat a scan (selectivity above SELECTIVE_FRACTION)."""
    from repro.sqldb.stats import SELECTIVE_FRACTION

    if stats is None:
        return False
    table = resolve_column_table(column, bindings)
    if table is None:
        return False
    table_stats = stats.get(table)
    if table_stats is None:
        return False
    column_stats = table_stats.column(column.name)
    if column_stats is None:
        return False
    return column_stats.eq_selectivity() > SELECTIVE_FRACTION


def resolve_column_table(
    column: ast.ColumnRef, bindings: Dict[str, Optional[str]]
) -> Optional[str]:
    """Base table a column reference resolves to, or None."""
    if column.qualifier is not None:
        return bindings.get(column.qualifier.lower())
    tables = [table for table in bindings.values() if table is not None]
    if len(bindings) == 1 and len(tables) == 1:
        return tables[0]
    return None


def _first_column(expression: ast.Expression) -> Optional[ast.ColumnRef]:
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.ColumnRef):
            return node
    return None


