"""Static query/plan analyzer for the PDM reproduction.

Three rule families over the :mod:`repro.sqldb` AST (and, when a database
is available, its plans):

* **Recursion safety** (R001-R003): linearity, monotonicity, termination
  of recursive CTEs.
* **Pushdown safety** (P001-P003): Section 5.5 placement of rule
  predicates, sargability, plan-cache-friendly IN-list shapes.
* **WAN anti-patterns** (W001-W003): navigational point-SELECTs,
  index-ignoring full scans, cartesian products.
* **Transaction scripts** (C001-C005): lock-order inversion (static
  deadlock risk), retry idempotence, X-locks held across round trips,
  table-lock escalation, DDL inside transactions — over the shared
  static lock-footprint model of :mod:`repro.concurrency.footprint`.

Entry points: :func:`analyze_sql` / :func:`analyze_statement` for one
statement, :func:`analyze_workload` for a statement sequence,
:func:`analyze_transaction_sql` / :func:`analyze_transaction_workload`
for transaction scripts, ``Database.lint(sql)`` and the ``LINT
<query>`` / ``LINT TRANSACTION '<script>'`` statements for the engine
surface, ``DatabaseServer(strict_lint=True)`` for the server gate, and
``python -m repro.analysis`` (``--scripts`` for script corpora) for the
CLI.

This package imports only :mod:`repro.errors`, :mod:`repro.sqldb`, and
:mod:`repro.concurrency` (the pure lock-footprint model) — the server
imports it for strict mode and the PDM layer re-exports its bucket
constant, so anything higher would cycle.
"""

from repro.analysis.analyzer import analyze_sql, analyze_statement
from repro.analysis.findings import (
    PLAN_CACHE_KEY_BUCKETS,
    RULE_CATALOG,
    Finding,
    RuleInfo,
    Severity,
    errors_only,
    is_lint_clean,
    max_severity,
)
from repro.analysis.txn import (
    SEQUENCED_PRAGMA,
    DeadlockPrediction,
    ScriptStatement,
    TxnScript,
    TxnSegment,
    TxnWorkloadReport,
    analyze_transaction_script,
    analyze_transaction_sql,
    analyze_transaction_workload,
    parse_txn_script,
    script_is_sequenced,
)
from repro.analysis.workload import (
    REPEAT_THRESHOLD,
    WorkloadReport,
    analyze_workload,
)

__all__ = [
    "PLAN_CACHE_KEY_BUCKETS",
    "REPEAT_THRESHOLD",
    "RULE_CATALOG",
    "SEQUENCED_PRAGMA",
    "DeadlockPrediction",
    "Finding",
    "RuleInfo",
    "ScriptStatement",
    "Severity",
    "TxnScript",
    "TxnSegment",
    "TxnWorkloadReport",
    "WorkloadReport",
    "analyze_sql",
    "analyze_statement",
    "analyze_transaction_script",
    "analyze_transaction_sql",
    "analyze_transaction_workload",
    "analyze_workload",
    "errors_only",
    "is_lint_clean",
    "max_severity",
    "parse_txn_script",
    "script_is_sequenced",
]
