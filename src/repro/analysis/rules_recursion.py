"""Recursion-safety rules (R001-R003).

A recursive CTE only has well-defined fixpoint semantics when the
recursion is *linear* (the recursive relation appears at most once per
recursive branch) and *monotonic* (no branch shrinks the accumulated
result: no EXCEPT/INTERSECT across branches, no aggregation over the
recursive member, no negated membership test against it).  On top of
semantics, the paper's Section 5.6 partial expand shows why unguarded
UNION ALL recursion is dangerous on real PDM data: a single cycle in the
structure relation makes the fixpoint loop forever.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.sqldb import ast_nodes as ast
from repro.sqldb.ast_walk import (
    constantish as _constantish,
    core_predicates,
    core_references,
    count_table_refs,
    flatten_set_operations,
    iter_subqueries,
    statement_references,
)
from repro.sqldb.expressions import contains_aggregate

#: Set operators with monotonic fixpoint semantics.
_MONOTONIC_OPERATORS = frozenset({"UNION", "UNION ALL"})

#: Comparison operators that can bound a depth column.
_BOUND_OPERATORS = frozenset({"<", "<=", ">", ">="})


def check(statement: ast.SelectStatement, path: str = "") -> List[Finding]:
    """Run R001-R003 over every recursive CTE of *statement*."""
    findings: List[Finding] = []
    with_clause = statement.with_clause
    if with_clause is None or not with_clause.recursive:
        return findings
    for cte in with_clause.ctes:
        findings.extend(_check_cte(cte, path))
    return findings


def _check_cte(cte: ast.CommonTableExpr, path: str) -> List[Finding]:
    branches, operators = flatten_set_operations(cte.body)
    recursive_ids: Set[int] = {
        id(branch)
        for branch in branches
        if core_references(branch, cte.name)
    }
    if not recursive_ids:
        return []
    cte_path = f"{path}cte[{cte.name}]"
    findings: List[Finding] = []

    # R001 — linear recursion: the recursive relation may be referenced at
    # most once per recursive branch.
    for position, branch in enumerate(branches):
        if id(branch) not in recursive_ids:
            continue
        references = count_table_refs(branch, cte.name)
        if references > 1:
            findings.append(
                Finding(
                    "R001",
                    Severity.ERROR,
                    f"recursive relation {cte.name!r} is referenced "
                    f"{references} times in one recursive branch; SQL:1999 "
                    f"recursion must be linear (one reference per branch)",
                    f"{cte_path}.branch[{position}]",
                )
            )

    # R002a — only UNION / UNION ALL combine branches monotonically.
    for operator in operators:
        if operator not in _MONOTONIC_OPERATORS:
            findings.append(
                Finding(
                    "R002",
                    Severity.ERROR,
                    f"{operator} combines the branches of recursive CTE "
                    f"{cte.name!r}; only UNION / UNION ALL are monotonic, "
                    f"so this recursion has no guaranteed fixpoint",
                    cte_path,
                )
            )
            break

    for position, branch in enumerate(branches):
        branch_path = f"{cte_path}.branch[{position}]"
        # R002b — aggregation over the recursive member.
        if id(branch) in recursive_ids and _branch_aggregates(branch):
            findings.append(
                Finding(
                    "R002",
                    Severity.ERROR,
                    f"a recursive branch of {cte.name!r} aggregates or "
                    f"groups over the recursive member; aggregation is "
                    f"non-monotonic and must move to the outer SELECT",
                    branch_path,
                )
            )
        # R002c — the recursive member under negation inside its own body.
        for clause, conjunct in core_predicates(branch):
            if _negates_cte(conjunct, cte.name):
                findings.append(
                    Finding(
                        "R002",
                        Severity.ERROR,
                        f"the recursive member {cte.name!r} appears under "
                        f"negation (NOT EXISTS / NOT IN) inside its own "
                        f"definition; negated membership is non-monotonic",
                        f"{branch_path}.{clause}",
                    )
                )

    # R003 — termination: UNION ALL recursion deduplicates nothing, so on
    # cyclic data the fixpoint never converges unless a branch carries an
    # explicit depth bound.
    if all(operator == "UNION ALL" for operator in operators):
        guarded = any(
            _has_depth_guard(branch, cte)
            for branch in branches
            if id(branch) in recursive_ids
        )
        if not guarded:
            findings.append(
                Finding(
                    "R003",
                    Severity.WARNING,
                    f"recursive CTE {cte.name!r} uses UNION ALL (no cycle "
                    f"protection) and no recursive branch bounds the "
                    f"depth; a cycle in the data would loop forever — use "
                    f"UNION or add a depth guard",
                    cte_path,
                )
            )
    return findings


def _branch_aggregates(branch: ast.SelectCore) -> bool:
    """True if *branch* itself groups or aggregates (subqueries excluded —
    ``walk_expression`` does not descend into them)."""
    if branch.group_by:
        return True
    if branch.having is not None:
        return True
    for item in branch.items:
        if isinstance(item, ast.SelectItem) and contains_aggregate(
            item.expression
        ):
            return True
    return False


def _negates_cte(conjunct: ast.Expression, cte_name: str) -> bool:
    """True if *conjunct* tests the CTE's membership under negation."""
    for wrapper, subquery in iter_subqueries(conjunct):
        negated = isinstance(
            wrapper, (ast.ExistsTest, ast.InSubquery)
        ) and wrapper.negated
        if negated and statement_references(subquery, cte_name):
            return True
    # NOT (...) around a subquery wrapper.
    for node in ast.walk_expression(conjunct):
        if isinstance(node, ast.UnaryOp) and node.operator == "NOT":
            for __, subquery in iter_subqueries(node.operand):
                if statement_references(subquery, cte_name):
                    return True
    return False


def _has_depth_guard(branch: ast.SelectCore, cte: ast.CommonTableExpr) -> bool:
    """True if a WHERE conjunct compares a CTE column against a constant
    or parameter with an ordering operator — the shape of the paper's
    Section 5.6 partial-expand bound (``rtbl.depth < ?``)."""
    for clause, conjunct in core_predicates(branch):
        if clause != "where":
            continue
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        if conjunct.operator not in _BOUND_OPERATORS:
            continue
        sides = (conjunct.left, conjunct.right)
        for column_side, bound_side in (sides, sides[::-1]):
            if _references_cte_column(column_side, cte) and _constantish(
                bound_side
            ):
                return True
    return False


def _references_cte_column(
    expression: ast.Expression, cte: ast.CommonTableExpr
) -> bool:
    columns = {column.lower() for column in cte.columns}
    wanted = cte.name.lower()
    for node in ast.walk_expression(expression):
        if not isinstance(node, ast.ColumnRef):
            continue
        qualifier: Optional[str] = node.qualifier
        if qualifier is not None and qualifier.lower() == wanted:
            return True
        if qualifier is None and node.name.lower() in columns:
            return True
    return False


