"""C-rules: transaction-script checks over static lock footprints.

The rules reason about :class:`repro.concurrency.footprint.LockRequest`
tuples — the same acquisition model the runtime executes — so a
predicted conflict is a conflict the :class:`LockManager` could actually
produce.  ``may_conflict`` is conservative (parameters and ranges are
unbounded), so the rules over-predict rather than under-predict: every
deadlock the ContentionSim can reach on these scripts is covered by a
C001 prediction, which the cross-validation test enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.txn import (
    DeadlockPrediction,
    ScriptStatement,
    TxnScript,
    TxnSegment,
)
from repro.concurrency.footprint import (
    LockRequest,
    may_conflict,
)
from repro.concurrency.locks import LockMode, compatible
from repro.errors import SQLError
from repro.sqldb import ast_nodes as ast

#: Round trips an exclusive lock may be held across before C003 fires.
#: The COMMIT shipping counts as one trip; at two or more, every blocked
#: peer waits multiple WAN latencies.
HOLD_ROUND_TRIPS = 2

#: Payload statements at which an explicit transaction counts as "long"
#: for the C004 escalation check.
LONG_TXN_STATEMENTS = 4

#: Statement classes the engine treats as DDL (not undo-logged, rejected
#: inside transactions by ``Database._execute_dml``).
DDL_STATEMENTS = (
    ast.CreateTable,
    ast.CreateIndex,
    ast.DropTable,
    ast.CreateView,
    ast.DropView,
)


def check_script(
    script: TxnScript, database: Optional[Any] = None
) -> List[Finding]:
    """Script-local rules: C002..C006 (C001 is pairwise)."""
    findings: List[Finding] = []
    findings.extend(_check_idempotence(script, database))
    findings.extend(_check_held_round_trips(script))
    findings.extend(_check_escalation(script))
    findings.extend(_check_ddl(script))
    findings.extend(_check_readonly(script))
    return findings


# -- C001: lock-order inversion ----------------------------------------------


@dataclass(frozen=True)
class Inversion:
    """One predicted hold-and-wait cycle with its report text."""

    prediction: DeadlockPrediction
    message: str
    node_path: str


def predict_deadlocks(
    first: TxnScript, second: TxnScript
) -> List[Inversion]:
    """C001 candidates between an instance of *first* and an instance of
    *second* (pass the same script twice for the self-pair case).

    The shape: instance A acquires ``held_a`` then requests ``want_a``;
    instance B acquires ``held_b`` then requests ``want_b``; A's request
    may block on B's held lock and vice versa — a hold-and-wait cycle.
    Requests are ordered by acquisition sequence *within one explicit
    segment*, because strict 2PL holds them to the terminator; autocommit
    statements acquire non-parking (fail fast) and cannot deadlock.
    """
    inversions: List[Inversion] = []
    seen: Set[Tuple[str, str, Tuple[str, ...]]] = set()
    for seg_a in _explicit_segments(first):
        held_seq_a = _acquisition_sequence(seg_a)
        for seg_b in _explicit_segments(second):
            held_seq_b = _acquisition_sequence(seg_b)
            for pos_a, stmt_a, held_a in held_seq_a:
                for pos_a2, stmt_a2, want_a in held_seq_a:
                    if pos_a2 <= pos_a:
                        continue
                    for pos_b, stmt_b, held_b in held_seq_b:
                        # Both first-acquired locks must be co-holdable:
                        # two certainly-overlapping incompatible
                        # table-covering locks cannot be held at once,
                        # so no hold-and-wait can start from them.
                        if _certainly_conflicting(held_a, held_b):
                            continue
                        for pos_b2, stmt_b2, want_b in held_seq_b:
                            if pos_b2 <= pos_b:
                                continue
                            if not may_conflict(want_a, held_b):
                                continue
                            if not may_conflict(want_b, held_a):
                                continue
                            tables = tuple(
                                sorted({want_a.table, want_b.table})
                            )
                            key = (first.name, second.name, tables)
                            if key in seen:
                                continue
                            seen.add(key)
                            inversions.append(
                                _describe_inversion(
                                    first,
                                    second,
                                    tables,
                                    (stmt_a, held_a, stmt_a2, want_a),
                                    (stmt_b, held_b, stmt_b2, want_b),
                                )
                            )
    return inversions


def inversion_findings(inversions: Sequence[Inversion]) -> List[Finding]:
    """C001 findings for *inversions* (one WARNING each)."""
    return [
        Finding("C001", Severity.WARNING, inv.message, inv.node_path)
        for inv in inversions
    ]


def conflict_edges(
    first: TxnScript, second: TxnScript
) -> List[Tuple[str, str, str]]:
    """May-conflict graph edges: one ``(first, second, table)`` per table
    where a lock of one script and a lock of the other are incompatible
    and may cover a common resource."""
    edges: Set[Tuple[str, str, str]] = set()
    for stmt_a in first.statements:
        for req_a in stmt_a.footprint:
            for stmt_b in second.statements:
                for req_b in stmt_b.footprint:
                    if may_conflict(req_a, req_b):
                        edges.add((first.name, second.name, req_a.table))
    return sorted(edges)


def _explicit_segments(script: TxnScript) -> List[TxnSegment]:
    return [segment for segment in script.segments if segment.explicit]


def _acquisition_sequence(
    segment: TxnSegment,
) -> List[Tuple[int, ScriptStatement, LockRequest]]:
    """The segment's lock requests in acquisition order: statement order
    first, footprint order within a statement (a statement can hold its
    earlier requests while waiting for a later one)."""
    sequence: List[Tuple[int, ScriptStatement, LockRequest]] = []
    position = 0
    for stmt in segment.statements:
        for request in stmt.footprint:
            sequence.append((position, stmt, request))
            position += 1
    return sequence


def _certainly_conflicting(a: LockRequest, b: LockRequest) -> bool:
    """Whether two requests *always* conflict — they can never be held
    by two transactions at the same time."""
    return (
        a.table == b.table
        and a.covers_table()
        and b.covers_table()
        and not compatible(a.mode, b.mode)
    )


def _describe_inversion(
    first: TxnScript,
    second: TxnScript,
    tables: Tuple[str, ...],
    chain_a: Tuple[ScriptStatement, LockRequest, ScriptStatement, LockRequest],
    chain_b: Tuple[ScriptStatement, LockRequest, ScriptStatement, LockRequest],
) -> Inversion:
    stmt_a, held_a, stmt_a2, want_a = chain_a
    stmt_b, held_b, stmt_b2, want_b = chain_b
    if first.name == second.name:
        subject = f"two concurrent instances of script {first.name!r}"
    else:
        subject = f"scripts {first.name!r} and {second.name!r}"
    message = (
        f"lock-order inversion: {subject} can deadlock — one holds "
        f"{held_a.describe()} (stmt[{stmt_a.index}]) and requests "
        f"{want_a.describe()} (stmt[{stmt_a2.index}]) while the other "
        f"holds {held_b.describe()} (stmt[{stmt_b.index}]) and requests "
        f"{want_b.describe()} (stmt[{stmt_b2.index}]); "
        f"cycle tables: {', '.join(tables)}"
    )
    return Inversion(
        prediction=DeadlockPrediction(
            scripts=(first.name, second.name), tables=tables
        ),
        message=message,
        node_path=f"pair[{first.name},{second.name}]",
    )


# -- C002: retry idempotence -------------------------------------------------


def _check_idempotence(
    script: TxnScript, database: Optional[Any]
) -> List[Finding]:
    """C002: DML a lost-reply retry would apply twice.

    Suppressed entirely for SEQUENCED scripts: the server's replay cache
    returns the recorded reply instead of re-executing, so the retry is
    exactly-once.  A keyless INSERT is only detectable against a catalog
    (a primary key makes the retry fail loudly on the unique index, which
    is safe); without one, INSERTs get the benefit of the doubt.
    """
    if script.sequenced:
        return []
    findings: List[Finding] = []
    for stmt in script.statements:
        node = stmt.statement
        if isinstance(node, ast.Update):
            column = _self_referential_assignment(node)
            if column is not None:
                findings.append(
                    Finding(
                        "C002",
                        Severity.ERROR,
                        f"non-idempotent UPDATE on {node.table!r}: the "
                        f"value assigned to {column!r} reads a column the "
                        f"statement assigns, so a retry after a lost "
                        f"reply applies the change twice; run it under a "
                        f"SEQUENCED session (or mark the script "
                        f"'-- pragma: sequenced')",
                        f"stmt[{stmt.index}]",
                    )
                )
        elif isinstance(node, ast.Insert):
            reason = _keyless_insert(node, database)
            if reason is not None:
                findings.append(
                    Finding(
                        "C002",
                        Severity.ERROR,
                        f"keyless INSERT into {node.table!r}: {reason}, "
                        f"so a retry after a lost reply inserts a "
                        f"duplicate row instead of failing; run it under "
                        f"a SEQUENCED session (or mark the script "
                        f"'-- pragma: sequenced')",
                        f"stmt[{stmt.index}]",
                    )
                )
    return findings


def _self_referential_assignment(node: ast.Update) -> Optional[str]:
    assigned = {column.lower() for column, __ in node.assignments}
    for column, value in node.assignments:
        for sub in ast.walk_expression(value):
            if (
                isinstance(sub, ast.ColumnRef)
                and sub.name.lower() in assigned
            ):
                return column
    return None


def _keyless_insert(
    node: ast.Insert, database: Optional[Any]
) -> Optional[str]:
    if database is None:
        return None
    try:
        schema = database.catalog.lookup(node.table).schema
    except SQLError:
        return None
    pk_position = schema.primary_key_index()
    if pk_position is None:
        return f"table {node.table!r} has no primary key"
    pk_name = schema.columns[pk_position].name.lower()
    if node.columns and pk_name not in (
        column.lower() for column in node.columns
    ):
        return f"the column list omits the primary key {pk_name!r}"
    return None


# -- C003: X-locks held across round trips -----------------------------------


def _check_held_round_trips(script: TxnScript) -> List[Finding]:
    """C003: an exclusive lock acquired early in an explicit transaction
    is held across every later statement's client round trip (COMMIT
    included) — each one a full WAN latency during which every blocked
    peer sits still.  Costed with the paper's WAN-512 profile.
    """
    # local: the analysis package otherwise imports only errors + sqldb
    # + the pure footprint model; the network layer stays optional.
    from repro.network.profiles import WAN_512

    round_trip_s = 2 * WAN_512.latency_s
    findings: List[Finding] = []
    for segment in _explicit_segments(script):
        for position, stmt in enumerate(segment.statements):
            if not any(
                request.mode is LockMode.EXCLUSIVE
                for request in stmt.footprint
            ):
                continue
            # Statements after this one, plus the COMMIT/ROLLBACK trip
            # (an unterminated segment still must eventually send one).
            trips = len(segment.statements) - position - 1 + 1
            if trips >= HOLD_ROUND_TRIPS:
                held_s = trips * round_trip_s
                findings.append(
                    Finding(
                        "C003",
                        Severity.WARNING,
                        f"exclusive lock acquired at stmt[{stmt.index}] "
                        f"is held across {trips} further client round "
                        f"trips (~{held_s:.1f} s at {WAN_512.name}); "
                        f"every peer blocked on it waits that long — "
                        f"acquire X-locks as late as possible",
                        f"stmt[{stmt.index}]",
                    )
                )
            break  # report the earliest X acquisition per segment only
    return findings


# -- C004: table-lock escalation in long transactions ------------------------


def _check_escalation(script: TxnScript) -> List[Finding]:
    """C004: a table-covering exclusive lock inside a long explicit
    transaction serialises every reader and writer of the table for the
    transaction's whole span (the paper's remedy: lock the working
    subtree, not the table)."""
    findings: List[Finding] = []
    for segment in _explicit_segments(script):
        if len(segment.statements) < LONG_TXN_STATEMENTS:
            continue
        for stmt in segment.statements:
            escalating = next(
                (
                    request
                    for request in stmt.footprint
                    if request.mode is LockMode.EXCLUSIVE
                    and request.covers_table()
                ),
                None,
            )
            if escalating is not None:
                findings.append(
                    Finding(
                        "C004",
                        Severity.WARNING,
                        f"{escalating.describe()} inside a "
                        f"{len(segment.statements)}-statement "
                        f"transaction: the whole table is unavailable "
                        f"to every other client until COMMIT",
                        f"stmt[{stmt.index}]",
                    )
                )
                break  # one escalation report per segment
    return findings


# -- C005: DDL inside transaction scripts ------------------------------------


def _check_ddl(script: TxnScript) -> List[Finding]:
    """C005: DDL inside BEGIN..COMMIT is an ERROR (the server rejects it
    — catalog changes are not undo-logged); DDL merely mixed into a
    multi-statement script is a WARNING (it commits immediately and
    cannot be rolled back with the rest).  A single-statement DDL script
    is an ordinary schema migration and stays clean."""
    findings: List[Finding] = []
    multi = len(script.statements) > 1
    for segment in script.segments:
        for stmt in segment.statements:
            if not isinstance(stmt.statement, DDL_STATEMENTS):
                continue
            kind = type(stmt.statement).__name__
            if segment.explicit:
                findings.append(
                    Finding(
                        "C005",
                        Severity.ERROR,
                        f"DDL inside a transaction: the server rejects "
                        f"{kind} mid-transaction because catalog changes "
                        f"are not undo-logged; run it outside "
                        f"BEGIN..COMMIT",
                        f"stmt[{stmt.index}]",
                    )
                )
            elif multi:
                findings.append(
                    Finding(
                        "C005",
                        Severity.WARNING,
                        f"{kind} mixed into a transaction script: DDL "
                        f"commits immediately and cannot roll back with "
                        f"the rest of the script; run schema changes as "
                        f"a separate offline step",
                        f"stmt[{stmt.index}]",
                    )
                )
    return findings


# -- C006: undeclared read-only transactions ----------------------------------


def _check_readonly(script: TxnScript) -> List[Finding]:
    """C006: a SELECT-only script of two or more statements that never
    declares ``BEGIN TRANSACTION READ ONLY``.

    Under plain 2PL each select takes the shared locks in its footprint
    (and an explicit transaction holds them to COMMIT), so the script
    both blocks writers and can deadlock with them.  Declared READ ONLY,
    an MVCC build serves every statement from one snapshot — no locks,
    no waits, one consistent view across the statements.
    """
    payload = [
        stmt
        for stmt in script.statements
        if not isinstance(
            stmt.statement,
            (
                ast.BeginTransaction,
                ast.CommitTransaction,
                ast.RollbackTransaction,
            ),
        )
    ]
    if len(payload) < 2:
        return []
    if not all(
        isinstance(stmt.statement, ast.SelectStatement) for stmt in payload
    ):
        return []
    if any(segment.read_only for segment in script.segments):
        return []
    held = sorted(
        {
            request.describe()
            for stmt in payload
            for request in stmt.footprint
        }
    )
    return [
        Finding(
            "C006",
            Severity.WARNING,
            f"read-only workload not declared: {len(payload)} SELECT "
            f"statements acquire {', '.join(held)} under 2PL; wrap them "
            f"in BEGIN TRANSACTION READ ONLY .. COMMIT so an MVCC build "
            f"serves them lock-free from one consistent snapshot",
            f"stmt[{payload[0].index}]",
        )
    ]
