"""Workload-level analysis: shapes that are harmless once, fatal ×1000.

A single point-SELECT costs one round trip and is unremarkable — the
analyzer reports it at INFO.  What the paper's Table 2 measures is that
shape *repeated once per visited node*.  This module analyzes a whole
workload (a sequence of statements, as text), groups them by normalized
statement text, and escalates the per-node findings (W001) to WARNING
when the same shape repeats past a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.analyzer import analyze_sql
from repro.analysis.findings import Finding, Severity

#: Repetitions of one statement shape at which a per-node INFO finding
#: becomes a workload WARNING.  Ten round trips is already noticeable at
#: the paper's 700 ms intercontinental latency.
REPEAT_THRESHOLD = 10


@dataclass
class WorkloadReport:
    """Findings plus the shape statistics that produced them."""

    findings: List[Finding] = field(default_factory=list)
    statement_count: int = 0
    distinct_shapes: int = 0
    #: normalized statement text -> repetition count.
    shape_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def max_severity(self) -> Severity:
        return max(
            (finding.severity for finding in self.findings),
            default=Severity.INFO,
        )


def analyze_workload(
    statements: Sequence[str],
    database: Optional[Any] = None,
    repeat_threshold: int = REPEAT_THRESHOLD,
) -> WorkloadReport:
    """Analyze every distinct statement once and escalate repeated
    per-node shapes.

    Statement texts are normalized on whitespace only — a navigational
    client re-issues the *identical* prepared text with different
    parameters, which is exactly what makes the repetition detectable.
    """
    report = WorkloadReport(statement_count=len(statements))
    order: List[str] = []
    for text in statements:
        normalized = " ".join(text.split())
        if normalized not in report.shape_counts:
            order.append(normalized)
        report.shape_counts[normalized] = (
            report.shape_counts.get(normalized, 0) + 1
        )
    report.distinct_shapes = len(order)
    for position, normalized in enumerate(order):
        count = report.shape_counts[normalized]
        for finding in analyze_sql(normalized, database=database):
            if (
                finding.rule_id == "W001"
                and count >= repeat_threshold
                and finding.severity < Severity.WARNING
            ):
                finding = Finding(
                    finding.rule_id,
                    Severity.WARNING,
                    f"{finding.message} (this shape repeats {count}x in "
                    f"the workload: {count} round trips over the WAN)",
                    finding.node_path,
                )
            report.findings.append(
                Finding(
                    finding.rule_id,
                    finding.severity,
                    finding.message,
                    f"stmt[{position}].{finding.node_path}",
                )
            )
    return report
