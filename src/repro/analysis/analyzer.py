"""The analyzer entry points: run every rule family over a statement.

The analyzer is *purely static*: it parses, walks the AST, and (when a
database is supplied) asks the planner for a plan — but it never executes
anything and never mutates the statement, the catalog, or any table.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.analysis import rules_pushdown, rules_recursion, rules_wan
from repro.analysis.findings import Finding
from repro.errors import SQLError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.ast_walk import (
    core_expressions,
    flatten_set_operations,
    iter_from_leaves,
    iter_subqueries,
)
from repro.sqldb.parser import parse_statement


def analyze_sql(sql: str, database: Optional[Any] = None) -> List[Finding]:
    """Parse *sql* and analyze it (see :func:`analyze_statement`)."""
    return analyze_statement(parse_statement(sql), database=database)


def analyze_statement(
    statement: Any, database: Optional[Any] = None
) -> List[Finding]:
    """All findings for one statement, deterministically ordered.

    *database* (a :class:`repro.sqldb.database.Database`) is optional; with
    it the analyzer resolves indexes for severity decisions and runs the
    plan-level rules (W002).  Non-SELECT statements are analyzed where it
    makes sense: INSERT ... SELECT through its query, UPDATE/DELETE through
    their WHERE clause; DDL has no findings.
    """
    catalog = database.catalog if database is not None else None
    stats = getattr(database, "stats", None) if database is not None else None
    findings: List[Finding] = []
    select, is_root = _selectable(statement)
    if select is not None:
        for nested, path, nested_root in _iter_select_statements(
            select, "", is_root
        ):
            findings.extend(rules_recursion.check(nested, path))
            findings.extend(
                rules_pushdown.check(nested, path, catalog, stats=stats)
            )
            findings.extend(
                rules_wan.check_statement(nested, path, is_root=nested_root)
            )
        if database is not None:
            plan = _try_plan(select, database)
            if plan is not None:
                findings.extend(
                    rules_wan.check_plan(
                        plan, select, database.catalog, stats=stats
                    )
                )
    elif isinstance(statement, (ast.Update, ast.Delete)):
        findings.extend(_analyze_dml_where(statement, catalog, stats))
    return sorted(findings, key=lambda f: (f.node_path, f.rule_id))


def _selectable(statement: Any) -> Tuple[Optional[ast.SelectStatement], bool]:
    """The SELECT statement to analyze, plus whether it is the query the
    client would actually ship (root shapes count for W001)."""
    if isinstance(statement, ast.SelectStatement):
        return statement, True
    if isinstance(statement, (ast.Explain, ast.Lint)):
        return statement.statement, True
    if isinstance(statement, ast.Insert) and statement.select is not None:
        return statement.select, False
    if isinstance(statement, ast.CreateView):
        return statement.select, False
    return None, False


def _analyze_dml_where(
    statement: Any, catalog: Optional[Any], stats: Optional[Any] = None
) -> List[Finding]:
    """UPDATE/DELETE predicates get the predicate-shape rules by wrapping
    them in a synthetic single-table SELECT core."""
    if statement.where is None:
        return []
    synthetic = ast.SelectStatement(
        body=ast.SelectCore(
            items=[ast.Star()],
            from_items=[ast.TableRef(name=statement.table)],
            where=statement.where,
        )
    )
    return rules_pushdown.check(synthetic, "", catalog, stats=stats)


def _try_plan(
    statement: ast.SelectStatement, database: Any
) -> Optional[Any]:
    """Plan without executing; linting never fails on unplannable SQL —
    execution will report the real error with full context."""
    try:
        return database.plan_statement(statement)
    except SQLError:
        return None


def _iter_select_statements(
    statement: ast.SelectStatement, path: str, is_root: bool
) -> Iterator[Tuple[ast.SelectStatement, str, bool]]:
    """Yield *statement* and every nested SELECT (subqueries in any clause,
    derived tables), with a node path and a root flag."""
    yield statement, path, is_root
    cores: List[Tuple[ast.SelectCore, str]] = []
    if statement.with_clause is not None:
        for cte in statement.with_clause.ctes:
            branches, __ = flatten_set_operations(cte.body)
            for position, branch in enumerate(branches):
                cores.append(
                    (branch, f"{path}cte[{cte.name}].branch[{position}]")
                )
    branches, __ = flatten_set_operations(statement.body)
    for position, branch in enumerate(branches):
        branch_path = (
            f"{path}body"
            if len(branches) == 1
            else f"{path}body.branch[{position}]"
        )
        cores.append((branch, branch_path))
    for core, core_path in cores:
        counter = 0
        for expression in core_expressions(core):
            for __, subquery in iter_subqueries(expression):
                yield from _iter_select_statements(
                    subquery, f"{core_path}.subquery[{counter}].", False
                )
                counter += 1
        for item in core.from_items:
            for leaf in iter_from_leaves(item):
                if isinstance(leaf, ast.SubqueryRef):
                    yield from _iter_select_statements(
                        leaf.subquery,
                        f"{core_path}.derived[{leaf.alias}].",
                        False,
                    )
