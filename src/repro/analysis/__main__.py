"""CLI for the static analyzer: ``python -m repro.analysis``.

Lints ``.sql`` workload files (semicolon-separated), the built-in PDM
template corpus (``--templates``), a synthesized paper workload
(``--workload table2-late``), or a transaction-script corpus analyzed
as a concurrent set (``--scripts``, one script per file: C-rules plus
the pairwise conflict graph and predicted deadlock cycles), and exits
non-zero per ``--fail-on`` so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.analyzer import analyze_sql
from repro.analysis.findings import Finding, Severity, max_severity
from repro.analysis.workload import WorkloadReport, analyze_workload
from repro.sqldb.parser import parse_script
from repro.sqldb.render import render_statement

_FAIL_LEVELS = {"error": Severity.ERROR, "warning": Severity.WARNING}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static query/plan lints for the PDM reproduction.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="semicolon-separated .sql workload files to lint",
    )
    parser.add_argument(
        "--templates",
        action="store_true",
        help="lint every built-in PDM query template and rule rewrite",
    )
    parser.add_argument(
        "--workload",
        choices=["table2-late", "recursive-early"],
        help="lint a synthesized paper workload",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=100,
        help="visited-node count for --workload table2-late (default 100)",
    )
    parser.add_argument(
        "--scripts",
        nargs="+",
        metavar="PATH",
        help="transaction-script files or directories (one script per "
        ".sql file) to analyze as a concurrent set: C-rules, pairwise "
        "may-conflict edges, predicted deadlock cycles",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--fail-on",
        choices=sorted(_FAIL_LEVELS),
        default="error",
        help="exit 1 when a finding at or above this severity exists",
    )
    return parser


def _finding_dict(finding: Finding) -> Dict[str, str]:
    rule_id, severity, message, node_path = finding.as_row()
    return {
        "rule_id": rule_id,
        "severity": severity,
        "message": message,
        "node_path": node_path,
    }


def _print_findings(source: str, findings: List[Finding]) -> None:
    if not findings:
        print(f"{source}: clean")
        return
    for finding in findings:
        print(
            f"{source}: {finding.severity.name} {finding.rule_id} "
            f"[{finding.node_path}] {finding.message}"
        )


def _lint_file(path: str) -> Tuple[WorkloadReport, Optional[str]]:
    """Lint one workload file; returns (report, parse-error-or-None)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        statements = parse_script(text)
    except OSError as error:
        return WorkloadReport(), f"{path}: {error}"
    except Exception as error:  # ParseError / LexerError
        return WorkloadReport(), f"{path}: {error}"
    return (
        analyze_workload([render_statement(s) for s in statements]),
        None,
    )


def _script_files(paths: List[str]) -> List[str]:
    """Expand directories to their ``.sql`` members, sorted for
    deterministic script naming and finding order."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            collected.extend(
                sorted(
                    os.path.join(path, entry)
                    for entry in os.listdir(path)
                    if entry.endswith(".sql")
                )
            )
        else:
            collected.append(path)
    return collected


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if (
        not args.files
        and not args.templates
        and args.workload is None
        and not args.scripts
    ):
        _build_parser().print_usage(sys.stderr)
        print(
            "error: nothing to lint (give files, --templates, "
            "--workload, or --scripts)",
            file=sys.stderr,
        )
        return 2

    results: List[Dict[str, Any]] = []
    worst = Severity.INFO
    failed_parse = False

    for path in args.files:
        report, error = _lint_file(path)
        if error is not None:
            failed_parse = True
            if not args.json:
                print(error, file=sys.stderr)
            results.append({"source": path, "error": error, "findings": []})
            continue
        worst = max(worst, report.max_severity)
        results.append(
            {
                "source": path,
                "statements": report.statement_count,
                "distinct_shapes": report.distinct_shapes,
                "findings": [_finding_dict(f) for f in report.findings],
            }
        )
        if not args.json:
            _print_findings(path, report.findings)

    if args.templates:
        from repro.analysis.templates import template_queries

        for name, sql in template_queries():
            findings = analyze_sql(sql)
            worst = max(worst, max_severity(findings))
            results.append(
                {
                    "source": f"template:{name}",
                    "findings": [_finding_dict(f) for f in findings],
                }
            )
            if not args.json:
                _print_findings(f"template:{name}", findings)

    if args.workload is not None:
        from repro.analysis.templates import (
            recursive_early_workload,
            table2_late_workload,
        )

        if args.workload == "table2-late":
            statements = table2_late_workload(args.nodes)
        else:
            statements = recursive_early_workload()
        report = analyze_workload(statements)
        worst = max(worst, report.max_severity)
        results.append(
            {
                "source": f"workload:{args.workload}",
                "statements": report.statement_count,
                "distinct_shapes": report.distinct_shapes,
                "findings": [_finding_dict(f) for f in report.findings],
            }
        )
        if not args.json:
            _print_findings(f"workload:{args.workload}", report.findings)

    if args.scripts:
        from repro.analysis.txn import (
            TxnScript,
            analyze_transaction_workload,
            parse_txn_script,
        )

        scripts: List[TxnScript] = []
        used_names: Dict[str, int] = {}
        for path in _script_files(args.scripts):
            name = os.path.splitext(os.path.basename(path))[0]
            if name in used_names:
                used_names[name] += 1
                name = f"{name}#{used_names[name]}"
            else:
                used_names[name] = 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                scripts.append(parse_txn_script(name, text))
            except OSError as error:
                failed_parse = True
                message = f"{path}: {error}"
                if not args.json:
                    print(message, file=sys.stderr)
                results.append(
                    {"source": path, "error": message, "findings": []}
                )
            except Exception as error:  # ParseError / LexerError
                failed_parse = True
                message = f"{path}: {error}"
                if not args.json:
                    print(message, file=sys.stderr)
                results.append(
                    {"source": path, "error": message, "findings": []}
                )
        report = analyze_transaction_workload(scripts)
        worst = max(worst, report.max_severity)
        results.append(
            {
                "source": "scripts",
                "scripts": [script.name for script in report.scripts],
                "findings": [_finding_dict(f) for f in report.findings],
                "conflict_edges": [list(edge) for edge in report.conflict_edges],
                "deadlock_cycles": [
                    {"scripts": list(cycle.scripts), "tables": list(cycle.tables)}
                    for cycle in report.cycles
                ],
            }
        )
        if not args.json:
            _print_findings("scripts", report.findings)
            for a, b, table in report.conflict_edges:
                print(f"scripts: may-conflict {a} <-> {b} on {table}")
            for cycle in report.cycles:
                pair = " <-> ".join(cycle.scripts)
                print(
                    f"scripts: predicted deadlock {pair} "
                    f"on {', '.join(cycle.tables)}"
                )

    if args.json:
        print(json.dumps({"results": results, "worst": worst.name}, indent=2))

    if failed_parse or worst >= _FAIL_LEVELS[args.fail_on]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
