"""Built-in query corpus: every statement the PDM layer can emit.

Used by the ``--templates`` CLI mode and by the analyzer self-check test:
the paper's Sections 4-5 argue these rewrites are correct, and the
analyzer turns that argument into an executable check — every template
must be lint-clean (nothing at WARNING or above).

This module imports :mod:`repro.pdm` and :mod:`repro.rules`, which sit
*above* the analysis package in the layering — so it must only ever be
imported lazily (by ``__main__`` and tests), never from
``repro.analysis.__init__``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.findings import PLAN_CACHE_KEY_BUCKETS


def template_queries() -> List[Tuple[str, str]]:
    """(name, sql) pairs covering the PDM builders and rule rewrites."""
    from repro.pdm import queries
    from repro.rules.conditions import ExistsStructure, TreeAggregate, Const
    from repro.rules.model import Actions, Rule
    from repro.rules.modificator import ExistsPlacement, QueryModificator
    from repro.rules.presets import (
        checkout_all_checked_in_rule,
        effectivity_rule,
        make_not_buy_rule,
        structure_option_rules,
    )
    from repro.rules.ruletable import RuleTable
    from repro.sqldb.render import render_select

    templates: List[Tuple[str, str]] = []

    def add(name: str, sql: str) -> None:
        templates.append((name, sql))

    # -- plain PDM builders (Sections 2, 4.2, 5.2, 5.6) --------------------
    add("child-fetch", render_select(queries.child_fetch_spec().to_statement()))
    add("set-query", render_select(queries.set_query_spec().to_statement()))
    for node_type in ("assy", "comp"):
        for bucket in PLAN_CACHE_KEY_BUCKETS:
            add(
                f"batched-children-{node_type}-{bucket}",
                render_select(
                    queries.batched_children_spec(
                        node_type, bucket
                    ).to_statement()
                ),
            )
        add(f"fetch-object-{node_type}", queries.fetch_object_sql(node_type))
    add("mle-recursive", render_select(queries.recursive_mle_spec().to_statement()))
    add(
        "mle-recursive-ordered",
        render_select(queries.recursive_mle_spec(order_by=True).to_statement()),
    )
    add(
        "mle-recursive-depth-bounded",
        render_select(
            queries.recursive_mle_spec(max_depth=3).to_statement()
        ),
    )
    add("where-used-recursive", queries.where_used_recursive_sql())
    add("where-used-parents", queries.where_used_parents_sql())
    for bucket in (1, 4):
        add(
            f"update-checkout-{bucket}",
            queries.update_checkout_sql("assy", bucket, "TRUE"),
        )

    # -- Section 4 / 5.5 rewrites ------------------------------------------
    user_env: Dict[str, object] = {"user_options": 3, "effectivity_unit": 5}
    rules = list(structure_option_rules()) + [
        effectivity_rule(),
        make_not_buy_rule(),
        checkout_all_checked_in_rule(),
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=ExistsStructure(
                object_type="assy",
                relation_table="link",
                related_table="comp",
            ),
            name="has-component",
        ),
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=TreeAggregate("COUNT", None, "<=", Const(100_000)),
            name="tree-not-too-large",
        ),
    ]

    def modificator() -> QueryModificator:
        return QueryModificator(RuleTable(rules), "scott", user_env)

    add(
        "rewrite-mle-early-inside",
        render_select(
            modificator()
            .modify_recursive(
                queries.recursive_mle_spec(),
                Actions.MULTI_LEVEL_EXPAND,
                ExistsPlacement.INSIDE,
            )
            .to_statement()
        ),
    )
    add(
        "rewrite-mle-early-outside",
        render_select(
            modificator()
            .modify_recursive(
                queries.recursive_mle_spec(),
                Actions.MULTI_LEVEL_EXPAND,
                ExistsPlacement.OUTSIDE,
            )
            .to_statement()
        ),
    )
    add(
        "rewrite-mle-checkout-forall",
        render_select(
            modificator()
            .modify_recursive(
                queries.recursive_mle_spec(), Actions.CHECK_OUT
            )
            .to_statement()
        ),
    )
    add(
        "rewrite-navigational-early",
        render_select(
            modificator()
            .modify_navigational(queries.child_fetch_spec(), Actions.EXPAND)
            .to_statement()
        ),
    )
    return templates


def table2_late_workload(nodes: int = 100) -> List[str]:
    """The Table 2 late-evaluation workload: one child-fetch round trip
    per visited node (the navigational multi-level expand), as issued by
    :class:`repro.pdm.operations.PDMClient` under NAVIGATIONAL_LATE."""
    from repro.pdm import queries
    from repro.sqldb.render import render_select

    child_fetch = render_select(queries.child_fetch_spec().to_statement())
    return [child_fetch] * nodes


def recursive_early_workload() -> List[str]:
    """The Table 4 recursive-early counterpart: one statement, total."""
    from repro.pdm import queries
    from repro.sqldb.render import render_select

    return [render_select(queries.recursive_mle_spec().to_statement())]
