"""WAN anti-pattern rules (W001-W003).

W001 is the paper's core observation (Section 2, Table 2): a navigational
client issues one point-SELECT per visited node, so a 1000-node tree
costs 1000 round trips — minutes over a WAN.  The statement itself is
innocent; the *shape* is the tell, and a workload that repeats it per
node escalates the finding to a warning (:mod:`repro.analysis.workload`).

W002 and W003 are plan-level: a full scan on a table whose predicate
column carries an index, and FROM relations not connected by any join
predicate (a cartesian product multiplies the rows shipped over the
link — and "transmission costs are the dominating limitation factor",
Section 6).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.sqldb import ast_nodes as ast
from repro.sqldb.ast_walk import (
    constantish as _constantish,
    core_predicates,
    flatten_set_operations,
    iter_from_leaves,
)


def check_statement(
    statement: ast.SelectStatement, path: str = "", is_root: bool = True
) -> List[Finding]:
    """AST-level WAN rules: W001 (root statements only) and W003."""
    findings: List[Finding] = []
    if is_root:
        findings.extend(_check_point_select(statement, path))
    findings.extend(_check_cartesian(statement, path))
    return findings


# -- W001: navigational point-SELECT ---------------------------------------


def _check_point_select(
    statement: ast.SelectStatement, path: str
) -> List[Finding]:
    if statement.with_clause is not None:
        return []  # recursive / CTE queries are the fix, not the problem
    branches, __ = flatten_set_operations(statement.body)
    for branch in branches:
        if not branch.from_items:
            return []
        pinned = False
        for __unused, conjunct in core_predicates(branch):
            if _is_batched_in_list(conjunct):
                return []  # already a frontier fetch
            if _is_parameter_equality(conjunct):
                pinned = True
        if not pinned:
            return []
    return [
        Finding(
            "W001",
            Severity.INFO,
            "parameterised point-SELECT; issued once per visited node, "
            "this is the navigational anti-pattern of Table 2 — batch "
            "keys into an IN (...) list or use a recursive query",
            f"{path}body",
        )
    ]


def _is_parameter_equality(conjunct: ast.Expression) -> bool:
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.operator != "=":
        return False
    sides = (conjunct.left, conjunct.right)
    for column_side, param_side in (sides, sides[::-1]):
        if isinstance(column_side, ast.ColumnRef) and isinstance(
            param_side, ast.Parameter
        ):
            return True
    return False


def _is_batched_in_list(conjunct: ast.Expression) -> bool:
    for node in ast.walk_expression(conjunct):
        if (
            isinstance(node, ast.InList)
            and not node.negated
            and len(node.items) >= 2
            and all(isinstance(item, ast.Parameter) for item in node.items)
        ):
            return True
    return False


# -- W003: cartesian product -----------------------------------------------


def _check_cartesian(
    statement: ast.SelectStatement, path: str
) -> List[Finding]:
    findings: List[Finding] = []
    for core, core_path in _all_cores(statement, path):
        finding = _core_cartesian(core, core_path)
        if finding is not None:
            findings.append(finding)
    return findings


def _all_cores(
    statement: ast.SelectStatement, path: str
) -> List[Tuple[ast.SelectCore, str]]:
    cores: List[Tuple[ast.SelectCore, str]] = []
    if statement.with_clause is not None:
        for cte in statement.with_clause.ctes:
            branches, __ = flatten_set_operations(cte.body)
            for position, branch in enumerate(branches):
                cores.append(
                    (branch, f"{path}cte[{cte.name}].branch[{position}]")
                )
    branches, __ = flatten_set_operations(statement.body)
    for position, branch in enumerate(branches):
        branch_path = (
            f"{path}body"
            if len(branches) == 1
            else f"{path}body.branch[{position}]"
        )
        cores.append((branch, branch_path))
    return cores


def _core_cartesian(core: ast.SelectCore, core_path: str) -> Optional[Finding]:
    """Union-find over FROM bindings: join trees connect structurally
    (an explicit CROSS JOIN is intent, not an accident); comma-separated
    items only connect through predicates mentioning both sides."""
    parent: Dict[str, str] = {}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    groups: List[List[str]] = []
    for item in core.from_items:
        names: List[str] = []
        for leaf in iter_from_leaves(item):
            name = _binding_name(leaf)
            if name is None:
                return None  # unnameable binding: stay silent
            parent.setdefault(name, name)
            names.append(name)
        groups.append(names)
    if len(parent) < 2:
        return None
    # Structural edges: everything inside one join tree is connected.
    for names in groups:
        for name in names[1:]:
            union(names[0], name)
    # Predicate edges: a conjunct mentioning several bindings connects
    # them; one with unqualified column references could belong to any
    # binding, so conservatively connect everything it touches.
    for __, conjunct in core_predicates(core):
        qualifiers, has_unqualified = _conjunct_bindings(conjunct, parent)
        if has_unqualified:
            qualifiers = set(parent)
        qualifiers = {name for name in qualifiers if name in parent}
        names_list = sorted(qualifiers)
        for name in names_list[1:]:
            union(names_list[0], name)
    components = {find(name) for name in parent}
    if len(components) < 2:
        return None
    disconnected = sorted(parent)
    return Finding(
        "W003",
        Severity.WARNING,
        f"FROM relations {', '.join(disconnected)} form "
        f"{len(components)} groups not connected by any join predicate; "
        f"the cartesian product multiplies the rows shipped over the link",
        core_path,
    )


def _binding_name(leaf: ast.FromItem) -> Optional[str]:
    if isinstance(leaf, ast.TableRef):
        return (leaf.alias or leaf.name).lower()
    if isinstance(leaf, ast.SubqueryRef):
        return leaf.alias.lower()
    return None


def _conjunct_bindings(
    conjunct: ast.Expression, known: Dict[str, str]
) -> Tuple[Set[str], bool]:
    qualifiers: Set[str] = set()
    has_unqualified = False
    for node in ast.walk_expression(conjunct):
        if isinstance(node, ast.ColumnRef):
            if node.qualifier is None:
                has_unqualified = True
            else:
                qualifiers.add(node.qualifier.lower())
    return qualifiers, has_unqualified


# -- W002: full scan on an indexed column (plan-level) ---------------------


def check_plan(
    plan: Any,
    statement: ast.SelectStatement,
    catalog: Any,
    stats: Optional[Any] = None,
) -> List[Finding]:
    """W002: the plan sequentially scans a table although the statement
    constrains an indexed column of it with an index-friendly predicate.

    With *stats* (a :class:`repro.sqldb.stats.StatsCatalog`) the rule is
    keyed off the measured selectivity: when the cost model itself prices
    the sequential scan below a one-key index probe — the column is so
    non-selective that the probe would walk most of the table anyway —
    the finding is only an INFO, because the scan is the *right* plan,
    not a missed index.  Without statistics the original WARNING stands
    (the analyzer cannot tell a justified scan from a planner miss)."""
    from repro.sqldb.executor import SeqScan
    from repro.sqldb.explain import plan_operators

    scanned: Set[str] = set()
    for operator in plan_operators(plan):
        if isinstance(operator, SeqScan):
            scanned.add(operator.storage.schema.name.lower())
    if not scanned:
        return []
    findings: List[Finding] = []
    seen: Set[Tuple[str, str]] = set()
    for core, core_path in _all_cores(statement, ""):
        bindings = _core_bindings(core)
        for __, conjunct in core_predicates(core):
            for table, column in _index_candidates(conjunct, bindings):
                if table not in scanned or (table, column) in seen:
                    continue
                if not catalog.exists(table):
                    continue
                entry = catalog.lookup(table)
                if entry.storage.find_index([column]) is None:
                    continue
                seen.add((table, column))
                severity, justified = _scan_severity(stats, table, column)
                note = (
                    "; statistics show the scan is cost-justified — the "
                    "column is not selective enough for the index to win"
                    if justified
                    else "; rewrite the predicate so the index applies"
                )
                findings.append(
                    Finding(
                        "W002",
                        severity,
                        f"the plan scans table {table!r} sequentially "
                        f"although column {column!r} is indexed and "
                        f"constrained by an equality/IN predicate"
                        f"{note}",
                        f"{core_path}",
                    )
                )
    return findings


def _scan_severity(
    stats: Optional[Any], table: str, column: str
) -> Tuple[Severity, bool]:
    """WARNING unless collected statistics prove the scan cost-justified."""
    from repro.sqldb.stats import (
        SELECTIVE_FRACTION,
        index_probe_cost,
        seq_scan_cost,
    )

    if stats is None:
        return Severity.WARNING, False
    table_stats = stats.get(table)
    if table_stats is None:
        return Severity.WARNING, False
    column_stats = table_stats.column(column)
    if column_stats is None:
        return Severity.WARNING, False
    selectivity = column_stats.eq_selectivity()
    rows_out = table_stats.row_count * selectivity
    probe_loses = index_probe_cost(1, rows_out) >= seq_scan_cost(
        table_stats.row_count
    )
    if probe_loses or selectivity > SELECTIVE_FRACTION:
        return Severity.INFO, True
    return Severity.WARNING, False


def _core_bindings(core: ast.SelectCore) -> Dict[str, str]:
    bindings: Dict[str, str] = {}
    for item in core.from_items:
        for leaf in iter_from_leaves(item):
            if isinstance(leaf, ast.TableRef):
                bindings[(leaf.alias or leaf.name).lower()] = leaf.name.lower()
    return bindings


def _index_candidates(
    conjunct: ast.Expression, bindings: Dict[str, str]
) -> List[Tuple[str, str]]:
    """(table, column) pairs an index could serve: equality or IN against
    constants/parameters on a bare column, anywhere in the predicate
    (OR branches included — that is exactly where planners give up)."""
    candidates: List[Tuple[str, str]] = []
    single_table = (
        next(iter(bindings.values())) if len(bindings) == 1 else None
    )

    def resolve(column: ast.ColumnRef) -> Optional[str]:
        if column.qualifier is not None:
            return bindings.get(column.qualifier.lower())
        return single_table

    for node in ast.walk_expression(conjunct):
        column: Optional[ast.ColumnRef] = None
        if isinstance(node, ast.BinaryOp) and node.operator == "=":
            sides = (node.left, node.right)
            for column_side, constant_side in (sides, sides[::-1]):
                if isinstance(
                    column_side, ast.ColumnRef
                ) and _constantish(constant_side):
                    column = column_side
                    break
        elif isinstance(node, ast.InList) and not node.negated:
            if isinstance(node.operand, ast.ColumnRef) and all(
                _constantish(item) for item in node.items
            ):
                column = node.operand
        if column is None:
            continue
        table = resolve(column)
        if table is not None:
            candidates.append((table, column.name.lower()))
    return candidates
