"""Static analysis of multi-statement transaction scripts.

A PDM action (check-out, release, where-used update) is a *script*: a
semicolon-separated statement sequence, usually wrapped in BEGIN ...
COMMIT, shipped to the server one round trip per statement.  This module
parses such scripts, attaches each statement's static lock footprint
(:mod:`repro.concurrency.footprint` — the same model the runtime
acquires from, not a re-implementation), segments the script into
lock-holding spans, and runs the C-rule family over single scripts and
script *sets*:

* **C001** lock-order inversion between two scripts (or two concurrent
  instances of one script): a statically predicted deadlock risk.
* **C002** non-idempotent DML (``x = x + 1``, keyless INSERT) outside a
  retry envelope.
* **C003** exclusive locks held across client round trips, costed with
  the WAN latency model.
* **C004** table-lock escalation inside a long transaction.
* **C005** DDL inside a transaction script.
* **C006** a SELECT-only multi-statement script that does not declare
  ``BEGIN TRANSACTION READ ONLY`` — under 2PL it holds shared locks an
  MVCC snapshot would make unnecessary.

Everything here is purely static: scripts are parsed and their
footprints built, but nothing is ever executed and no lock is ever
acquired — analyzing a script leaves every table byte-identical.

Entry points: :func:`analyze_transaction_sql` (the ``LINT TRANSACTION``
statement and the server's strict-lint script gate),
:func:`analyze_transaction_workload` (the CLI ``--scripts`` mode and the
ContentionSim cross-validation), :func:`parse_txn_script` for callers
that want the model itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from repro.analysis.analyzer import analyze_statement
from repro.analysis.findings import Finding, Severity
from repro.analysis.findings import max_severity as _max_severity
from repro.concurrency.footprint import (
    LockRequest,
    TablesOf,
    statement_footprint,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb import ast_walk
from repro.sqldb.parser import parse_script
from repro.sqldb.render import render_statement

#: Comment pragma marking a script as running under the SEQUENCED
#: at-most-once envelope: the server's replay cache absorbs retries, so
#: non-idempotent DML (C002) is safe.  Written as ``-- pragma: sequenced``
#: on any line of the script.
SEQUENCED_PRAGMA = "pragma: sequenced"


@dataclass(frozen=True)
class ScriptStatement:
    """One statement of a script, with its static lock footprint."""

    index: int
    statement: Any
    sql: str
    footprint: Tuple[LockRequest, ...]


@dataclass(frozen=True)
class TxnSegment:
    """A maximal span of statements whose locks are held together.

    An *explicit* segment covers BEGIN .. COMMIT/ROLLBACK: under strict
    2PL every lock acquired inside it is held until the terminator.  An
    autocommit statement forms its own single-statement segment (its
    locks release at statement end, and the server acquires them
    non-parking — autocommit cannot deadlock).
    """

    explicit: bool
    statements: Tuple[ScriptStatement, ...]
    #: Statement index of the terminating COMMIT/ROLLBACK; None for
    #: autocommit segments and for a script that ends inside an open
    #: transaction (locks then held until the session closes — worse).
    end: Optional[int]
    committed: bool
    #: The segment was opened with BEGIN TRANSACTION READ ONLY: its
    #: selects run lock-free from a snapshot on an MVCC build, and the
    #: server rejects DML inside it either way.
    read_only: bool = False


@dataclass(frozen=True)
class TxnScript:
    """A parsed script: statements, lock-holding segments, retry mode."""

    name: str
    statements: Tuple[ScriptStatement, ...]
    segments: Tuple[TxnSegment, ...]
    #: True when the script runs under the SEQUENCED at-most-once
    #: envelope (session client, or the ``-- pragma: sequenced`` marker).
    sequenced: bool


@dataclass(frozen=True)
class DeadlockPrediction:
    """A statically predicted hold-and-wait cycle between two script
    instances (possibly two instances of the same script)."""

    scripts: Tuple[str, str]
    #: Sorted tables the two instances would be waiting on — comparable
    #: against ``LockManager.deadlock_cycles`` entries.
    tables: Tuple[str, ...]


@dataclass
class TxnWorkloadReport:
    """Findings plus the conflict graph over a set of scripts."""

    findings: List[Finding] = field(default_factory=list)
    scripts: List[TxnScript] = field(default_factory=list)
    #: (script a, script b, table): a lock of *a* and a lock of *b* on
    #: *table* are incompatible and may cover a common resource — one
    #: instance may wait for the other there.
    conflict_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    cycles: List[DeadlockPrediction] = field(default_factory=list)

    @property
    def max_severity(self) -> Severity:
        return _max_severity(self.findings)


def script_is_sequenced(text: str) -> bool:
    """Whether *text* carries the ``-- pragma: sequenced`` marker."""
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("--") and SEQUENCED_PRAGMA in stripped.lower():
            return True
    return False


def parse_txn_script(
    name: str,
    text: str,
    database: Optional[Any] = None,
    sequenced: Optional[bool] = None,
) -> TxnScript:
    """Parse *text* into a :class:`TxnScript` with footprints attached.

    With a *database* the footprints see through views (the runtime's
    own table resolution); without one they use the syntactic
    :func:`repro.sqldb.ast_walk.referenced_tables`.  *sequenced* forces
    the retry-envelope flag; when None it is read from the pragma.
    """
    if sequenced is None:
        sequenced = script_is_sequenced(text)
    tables_of: TablesOf = (
        database._referenced_tables
        if database is not None
        else ast_walk.referenced_tables
    )
    statements = tuple(
        ScriptStatement(
            index=index,
            statement=parsed,
            sql=render_statement(parsed),
            footprint=statement_footprint(parsed, tables_of),
        )
        for index, parsed in enumerate(parse_script(text))
    )
    return TxnScript(
        name=name,
        statements=statements,
        segments=_segment(statements),
        sequenced=sequenced,
    )


def _segment(
    statements: Sequence[ScriptStatement],
) -> Tuple[TxnSegment, ...]:
    segments: List[TxnSegment] = []
    current: Optional[List[ScriptStatement]] = None
    current_read_only = False
    for stmt in statements:
        node = stmt.statement
        if isinstance(node, ast.BeginTransaction):
            if current is not None:
                # BEGIN inside an open transaction: the server rejects
                # it; statically, close the dangling segment unterminated.
                segments.append(
                    TxnSegment(
                        True, tuple(current), None, False, current_read_only
                    )
                )
            current = []
            current_read_only = node.read_only
        elif isinstance(
            node, (ast.CommitTransaction, ast.RollbackTransaction)
        ):
            if current is not None:
                segments.append(
                    TxnSegment(
                        True,
                        tuple(current),
                        stmt.index,
                        isinstance(node, ast.CommitTransaction),
                        current_read_only,
                    )
                )
                current = None
                current_read_only = False
            # A stray COMMIT outside a transaction is a runtime error
            # with no lock consequences; nothing to record statically.
        elif current is not None:
            current.append(stmt)
        else:
            segments.append(TxnSegment(False, (stmt,), None, True))
    if current is not None:
        segments.append(
            TxnSegment(True, tuple(current), None, False, current_read_only)
        )
    return tuple(segments)


# -- analysis entry points ---------------------------------------------------


def analyze_transaction_sql(
    script_text: str,
    database: Optional[Any] = None,
    sequenced: Optional[bool] = None,
    name: str = "script",
) -> List[Finding]:
    """Parse and analyze one script; the ``LINT TRANSACTION`` surface."""
    script = parse_txn_script(
        name, script_text, database=database, sequenced=sequenced
    )
    return analyze_transaction_script(script, database=database)


def analyze_transaction_script(
    script: TxnScript, database: Optional[Any] = None
) -> List[Finding]:
    """All findings for one script: every statement through the base
    analyzer (node paths prefixed ``stmt[i].``), the script-local
    C-rules, and the C001 self-pair (two concurrent instances of this
    script against each other)."""
    from repro.analysis import rules_txn  # local: rules_txn imports us

    findings = _script_findings(script, database)
    findings.extend(
        rules_txn.inversion_findings(rules_txn.predict_deadlocks(script, script))
    )
    return sorted(findings, key=lambda f: (f.node_path, f.rule_id))


def _script_findings(
    script: TxnScript, database: Optional[Any]
) -> List[Finding]:
    from repro.analysis import rules_txn  # local: rules_txn imports us

    findings: List[Finding] = []
    for stmt in script.statements:
        for finding in analyze_statement(stmt.statement, database=database):
            findings.append(
                Finding(
                    finding.rule_id,
                    finding.severity,
                    finding.message,
                    f"stmt[{stmt.index}].{finding.node_path}",
                )
            )
    findings.extend(rules_txn.check_script(script, database=database))
    return findings


def analyze_transaction_workload(
    scripts: Sequence[TxnScript], database: Optional[Any] = None
) -> TxnWorkloadReport:
    """Analyze a script set: per-script findings (prefixed
    ``script[name].``), the pairwise may-conflict graph, and every C001
    lock-order inversion over all unordered script pairs — self-pairs
    included, because two clients running the *same* action concurrently
    is the common PDM case."""
    from repro.analysis import rules_txn  # local: rules_txn imports us

    report = TxnWorkloadReport(scripts=list(scripts))
    for script in scripts:
        for finding in sorted(
            _script_findings(script, database),
            key=lambda f: (f.node_path, f.rule_id),
        ):
            report.findings.append(
                Finding(
                    finding.rule_id,
                    finding.severity,
                    finding.message,
                    f"script[{script.name}].{finding.node_path}",
                )
            )
    edges: Set[Tuple[str, str, str]] = set()
    for position, first in enumerate(scripts):
        for second in scripts[position:]:
            edges.update(rules_txn.conflict_edges(first, second))
            inversions = rules_txn.predict_deadlocks(first, second)
            report.cycles.extend(inv.prediction for inv in inversions)
            report.findings.extend(rules_txn.inversion_findings(inversions))
    report.conflict_edges = sorted(edges)
    return report
