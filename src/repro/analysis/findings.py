"""Finding and rule-catalog data types of the static analyzer.

Severity semantics:

* ``ERROR``   — the statement is semantically unsafe (non-linear or
  non-monotonic recursion, a tree condition pushed into the recursive
  part).  Server strict mode refuses to execute these.
* ``WARNING`` — the statement will execute correctly but with a cost
  profile the paper warns about (unguarded UNION ALL recursion, plan-
  cache-defeating IN-lists, full scans, cartesian products).
* ``INFO``    — a shape worth knowing about in context (a single
  navigational point-SELECT is fine; ten thousand of them are Table 2).

"Lint-clean" means: no finding at WARNING or above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a location in the statement."""

    rule_id: str
    severity: Severity
    message: str
    node_path: str

    def as_row(self) -> Tuple[str, str, str, str]:
        """The finding as a result-set row (``LINT <query>`` output)."""
        return (self.rule_id, self.severity.name, self.message, self.node_path)


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry: what a rule checks and where the paper motivates it."""

    rule_id: str
    title: str
    default_severity: Severity
    paper_section: str


#: rule_id -> catalog entry.  The paper-section mapping is documented in
#: ARCHITECTURE.md section 8.
RULE_CATALOG: Dict[str, RuleInfo] = {
    rule.rule_id: rule
    for rule in (
        RuleInfo(
            "R001",
            "non-linear recursion (recursive relation referenced more than "
            "once in one recursive branch)",
            Severity.ERROR,
            "5.2 (SQL:1999 linear recursion)",
        ),
        RuleInfo(
            "R002",
            "non-monotonic recursion (EXCEPT/INTERSECT, aggregation, or "
            "negated membership over the recursive member)",
            Severity.ERROR,
            "5.2 (fixpoint monotonicity)",
        ),
        RuleInfo(
            "R003",
            "unguarded recursion (UNION ALL with neither cycle protection "
            "nor a depth guard)",
            Severity.WARNING,
            "5.2 / 5.6 (termination on cyclic data, partial expand)",
        ),
        RuleInfo(
            "P001",
            "tree condition pushed into the recursive part (∀rows / "
            "tree-aggregate predicates belong in the outer SELECT)",
            Severity.ERROR,
            "5.5 steps A-B",
        ),
        RuleInfo(
            "P002",
            "non-sargable predicate (indexed column wrapped in an "
            "expression, or LIKE with a leading wildcard)",
            Severity.WARNING,
            "5.4 (access-path tuning)",
        ),
        RuleInfo(
            "P003",
            "unpadded parameter IN-list (defeats the plan cache's "
            "fixed-shape bucketing)",
            Severity.WARNING,
            "6 (prepared statements; PR-1 bucketed IN-lists)",
        ),
        RuleInfo(
            "W001",
            "navigational point-SELECT (per-node fetch shape that should "
            "be batched or recursive over a WAN)",
            Severity.INFO,
            "2 / 4.2 (Table 2 response times)",
        ),
        RuleInfo(
            "W002",
            "full scan on an indexed column (the plan ignores a usable "
            "index)",
            Severity.WARNING,
            "5.4 (index usage)",
        ),
        RuleInfo(
            "W003",
            "cartesian product (FROM relations not connected by any join "
            "predicate)",
            Severity.WARNING,
            "6 (transfer volume dominates)",
        ),
        RuleInfo(
            "C001",
            "lock-order inversion across transaction scripts (two "
            "concurrent instances can each hold a lock the other waits "
            "for: static deadlock risk)",
            Severity.WARNING,
            "6 (multi-user PDM operation; DESIGN §9 wait-for cycles)",
        ),
        RuleInfo(
            "C002",
            "non-idempotent DML outside a retry envelope (a retried "
            "x = x + 1 or keyless INSERT applies twice)",
            Severity.ERROR,
            "4.3 (WAN failures force retries; SEQUENCED at-most-once)",
        ),
        RuleInfo(
            "C003",
            "exclusive locks held across client round trips (every "
            "blocked peer pays the WAN latency per trip)",
            Severity.WARNING,
            "2 / 6 (round-trip cost dominates over a WAN)",
        ),
        RuleInfo(
            "C004",
            "table-lock escalation inside a long transaction (a "
            "table-wide X in a multi-statement transaction serialises "
            "every reader and writer of the table)",
            Severity.WARNING,
            "6 (check-out granularity: lock subtrees, not tables)",
        ),
        RuleInfo(
            "C005",
            "DDL inside a transaction script (catalog changes are not "
            "undo-logged; the server rejects DDL mid-transaction)",
            Severity.ERROR,
            "5.1 (schema changes are offline operations)",
        ),
    )
}


#: IN-list sizes the batched expand pads its frontier chunks to.  A fixed
#: set of shapes bounds the number of distinct SQL texts, so the server's
#: plan cache starts hitting after the first few levels.  This is the
#: canonical definition; :mod:`repro.pdm.operations` re-exports it.
PLAN_CACHE_KEY_BUCKETS: Tuple[int, ...] = (1, 4, 16, 64, 256)


def max_severity(findings: Sequence[Finding]) -> Severity:
    """Highest severity among *findings* (INFO when empty)."""
    return max(
        (finding.severity for finding in findings), default=Severity.INFO
    )


def is_lint_clean(findings: Sequence[Finding]) -> bool:
    """True when nothing at WARNING or above was found."""
    return all(finding.severity < Severity.WARNING for finding in findings)


def errors_only(findings: Sequence[Finding]) -> List[Finding]:
    """The subset of findings at ERROR severity."""
    return [f for f in findings if f.severity >= Severity.ERROR]
