"""Nested spans on the simulated clock, with component attribution.

A :class:`Span` covers one logical operation (a PDM action, a round
trip, a server request, a fixpoint round) between two instants of the
simulated clock.  Spans nest: while a span is open, every span opened
below it becomes a child, every :meth:`TraceRecorder.event` attaches to
it, and — the part the paper's decomposition needs — every simulated
clock advance is credited to one of its named *components* ("latency",
"transfer", "backoff", ...).  Because the recorder observes the clock
itself, the component seconds of a span subtree sum to the subtree
root's duration *exactly*: no simulated second can go missing or be
counted twice.

The recorder is inert unless explicitly wired in (see
:func:`instrument_stack`); every instrumentation site in the stack
guards on ``recorder is None``, so disabled tracing is free and cannot
perturb a measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

#: What a clock advance may carry as its attribution: a single component
#: name, or a {component: seconds} split of the advanced interval.
ClockComponent = Union[None, str, Dict[str, float]]

#: Component bucket for clock advances no instrumentation site labelled.
UNATTRIBUTED = "unattributed"


@dataclass
class Span:
    """One timed operation in the trace tree."""

    name: str
    kind: str = ""
    start: float = 0.0
    end: Optional[float] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    #: (simulated time, message, data) point annotations, e.g. injected
    #: link faults observed while this span was innermost.
    events: List[Tuple[float, str, Dict[str, Any]]] = field(
        default_factory=list
    )
    #: Seconds of simulated time advanced while this span was the
    #: *innermost* open span, keyed by component name.  Child spans keep
    #: their own shares — aggregate with :meth:`total_components`.
    components: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Simulated seconds between open and close (0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def total_components(self) -> Dict[str, float]:
        """Component seconds aggregated over this span and its subtree."""
        totals: Dict[str, float] = {}
        for span in self.iter_spans():
            for name, seconds in span.components.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def to_dict(self) -> dict:
        """JSON-exportable form (recursive)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        if self.components:
            data["components"] = dict(self.components)
        if self.events:
            data["events"] = [
                {"at": at, "message": message, **({"data": extra} if extra else {})}
                for at, message, extra in self.events
            ]
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data


class _SpanHandle:
    """Context manager opening one span on enter, closing it on exit."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span

    def __enter__(self) -> Span:
        self._recorder._open(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.span.meta.setdefault("error", type(exc).__name__)
        self._recorder._close(self.span)
        return False


class _NullSpanHandle:
    """Shared no-op context for the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class TraceRecorder:
    """Records a forest of spans against a simulated clock.

    The clock may be bound at construction or later by
    :func:`instrument_stack` (the usual flow when
    :func:`repro.bench.workload.build_scenario` creates the link — and
    hence the clock — internally).  As the clock's observer, the
    recorder credits every advance to the innermost open span's
    component ledger.
    """

    def __init__(self, clock=None, metrics: Optional[MetricsRegistry] = None) -> None:
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def span(self, name: str, kind: str = "", **meta: Any) -> _SpanHandle:
        """Context manager: open a child of the current span (or a root)."""
        return _SpanHandle(
            self, Span(name=name, kind=kind, meta=dict(meta))
        )

    def _open(self, span: Span) -> None:
        span.start = self._now()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self._now()
        # Tolerate (and survive) exits out of order; the common path pops
        # exactly the innermost span.
        while self._stack:
            if self._stack.pop() is span:
                break

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- annotations -----------------------------------------------------------

    def annotate(self, **meta: Any) -> None:
        """Merge key/value annotations into the current span's meta."""
        if self._stack:
            self._stack[-1].meta.update(meta)

    def event(self, message: str, **data: Any) -> None:
        """Attach a point-in-time event to the current span."""
        if self._stack:
            self._stack[-1].events.append((self._now(), message, data))

    # -- clock observation -----------------------------------------------------

    def on_clock_advance(self, seconds: float, component: ClockComponent) -> None:
        """Credit an advance of the simulated clock to the current span."""
        if not self._stack:
            return
        ledger = self._stack[-1].components
        if isinstance(component, dict):
            for name, share in component.items():
                if share:
                    ledger[name] = ledger.get(name, 0.0) + share
            return
        name = component if component is not None else UNATTRIBUTED
        ledger[name] = ledger.get(name, 0.0) + seconds

    # -- queries ----------------------------------------------------------------

    def find_root(self, name: str) -> Optional[Span]:
        """The most recent root span called *name* (None if absent)."""
        for span in reversed(self.roots):
            if span.name == name:
                return span
        return None

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.iter_spans()

    def reset(self) -> None:
        """Drop all recorded spans (open spans included) and metrics."""
        self.roots = []
        self._stack = []
        self.metrics = MetricsRegistry()


def maybe_span(
    recorder: Optional[TraceRecorder], name: str, kind: str = "", **meta: Any
):
    """A span on *recorder*, or a shared no-op context when tracing is off."""
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, kind=kind, **meta)


def instrument_stack(
    recorder: TraceRecorder,
    *,
    link=None,
    connection=None,
    server=None,
    database=None,
    client=None,
) -> TraceRecorder:
    """Attach *recorder* to every provided layer of one client/server stack.

    Binds the link's simulated clock to the recorder (so clock advances
    are attributed to spans) and sets the ``recorder`` attribute each
    layer guards its instrumentation on.  Layers not passed stay
    untraced.  ``client`` (a :class:`~repro.pdm.operations.PDMClient`)
    needs no attribute of its own — it reads the connection's — but is
    accepted so call sites can pass the whole stack uniformly.
    """
    if link is not None:
        link.recorder = recorder
        if recorder.clock is None:
            recorder.clock = link.clock
        link.clock.observer = recorder
    if connection is not None:
        connection.recorder = recorder
        if recorder.clock is None:
            recorder.clock = connection.link.clock
            connection.link.clock.observer = recorder
    if server is not None:
        server.recorder = recorder
    if database is not None:
        database.recorder = recorder
    return recorder
