"""Monotonic counters and fixed-bucket histograms.

The registry is deliberately tiny — it is simulation instrumentation,
not a telemetry client.  Counters only go up; histograms have a fixed
set of upper bucket bounds chosen at creation (plus an implicit overflow
bucket), so recording an observation is O(buckets) with no allocation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default bucket bounds for simulated-seconds histograms (round-trip
#: times span ~1 ms LAN pings to minutes of outage-ridden WAN expands).
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

#: Default bucket bounds for frame-size histograms (bytes on the wire).
BYTES_BUCKETS: Tuple[float, ...] = (
    64,
    256,
    1024,
    4096,
    16384,
    65536,
    262144,
)

#: Default bucket bounds for result-cardinality histograms.
ROWS_BUCKETS: Tuple[float, ...] = (0, 1, 4, 16, 64, 256, 1024, 4096)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (inc by {amount!r})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are inclusive upper bounds in ascending order; an
    observation larger than the last bound lands in the overflow bucket.
    """

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError(
                f"histogram {name!r} needs ascending bucket bounds, "
                f"got {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        #: One slot per bound plus the overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation across the bucket that holds the target
        rank, clamped to the observed ``min``/``max`` so a wide bucket
        cannot report a value outside the data.  Returns None when the
        histogram is empty.  The estimate's resolution is the bucket
        width — good enough for p50/p95/p99 reporting, not for exact
        order statistics.

        Boundary contract (explicit, not an interpolation accident):
        ``q=0`` returns the observed minimum, ``q=1`` the observed
        maximum, and a single-observation histogram returns that
        observation for every *q* — bucket edges never leak through.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(
                f"quantile for histogram {self.name!r} must be in [0, 1], "
                f"got {q!r}"
            )
        if self.count == 0:
            return None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        if self.count == 1:
            return self.min
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative < rank:
                continue
            # An observed minimum of exactly 0.0 must win over the bucket
            # edge fallback ("self.min or 0.0" treated 0.0 as missing —
            # harmless today because lower only feeds the interpolation
            # that is clamped below, but wrong as a contract).
            lower = (
                self.bounds[index - 1]
                if index > 0
                else (0.0 if self.min is None else self.min)
            )
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else (self.max if self.max is not None else lower)
            )
            fraction = (rank - previous) / bucket_count
            estimate = lower + (upper - lower) * fraction
            if self.min is not None:
                estimate = max(estimate, self.min)
            if self.max is not None:
                estimate = min(estimate, self.max)
            return estimate
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                **{
                    f"le_{bound:g}": count
                    for bound, count in zip(self.bounds, self.counts)
                },
                "overflow": self.counts[-1],
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Create-or-get registry of counters and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = SECONDS_BUCKETS
    ) -> Histogram:
        """Get-or-create; the bounds of an existing histogram win."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def to_dict(self) -> dict:
        """JSON-exportable snapshot of every metric."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }
