"""End-to-end observability: tracing spans and a metrics registry.

The paper's whole argument rests on *decomposing* response time into
latency, transfer and server components (Section 2, equations (1)-(6)).
This package provides the measurement substrate that turns an aggregate
benchmark number into an explanation: a :class:`TraceRecorder` opens
nested spans on the :class:`~repro.network.clock.SimulatedClock` (user
action -> per-level round trips -> link transmissions -> server handling
-> plan execution), every simulated-clock advance is attributed to a
named component of the innermost open span, and a small
:class:`MetricsRegistry` accumulates monotonic counters and fixed-bucket
histograms (round-trip time, frame size, rows per result).

Tracing is strictly opt-in: every instrumented layer carries a
``recorder`` attribute that defaults to ``None``, and all hooks are
guarded so the traced and untraced executions advance the simulated
clock identically — enabling a recorder can never change a measured
response time.
"""

from repro.obs.metrics import (
    BYTES_BUCKETS,
    ROWS_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, TraceRecorder, instrument_stack, maybe_span

__all__ = [
    "BYTES_BUCKETS",
    "ROWS_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "instrument_stack",
    "maybe_span",
]
