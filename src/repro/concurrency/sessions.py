"""Per-client server sessions mapping wire clients onto transactions.

A session is keyed by the ``client_id`` every SEQUENCED frame already
carries (and which the OPEN_SESSION handshake states explicitly).  Each
session owns at most one open transaction inside the shared
:class:`~repro.sqldb.database.Database`; the session token handed to the
database *is* the client id, so two clients hold independent undo logs
and lock sets while the local default session (token ``None``) keeps
working for server procedures and embedded use.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.errors import SessionError
from repro.sqldb.database import Database


class Session:
    """State of one wire client's session."""

    __slots__ = ("client_id", "transactions", "commits", "rollbacks")

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self.transactions = 0
        self.commits = 0
        self.rollbacks = 0

    @property
    def token(self) -> int:
        """The database session token (the client id itself)."""
        return self.client_id


class SessionManager:
    """Session registry for one :class:`DatabaseServer`.

    Constructing it with a lock manager attaches that manager to the
    database, turning on strict 2PL for every session (the local default
    session included).
    """

    def __init__(
        self, database: Database, lock_manager: Optional[Any] = None
    ) -> None:
        self.database = database
        self.lock_manager = lock_manager
        if lock_manager is not None:
            database.attach_lock_manager(lock_manager)
        self._sessions: Dict[int, Session] = {}
        #: Client ids whose session the *server* tore down (eviction or
        #: crash).  Their later statements must fail with SessionError —
        #: silently routing them to the default session would commit what
        #: the client believes is inside its (dead) transaction.  Cleared
        #: by the client's next OPEN_SESSION.
        self._evicted: Set[int] = set()
        self.statistics = {
            "opened": 0,
            "closed": 0,
            "evicted": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def open(self, client_id: int) -> Session:
        """Open (or return the already-open) session for *client_id*.

        Idempotent: a retransmitted OPEN_SESSION must not fail, and the
        replay cache cannot cover the unsequenced first handshake.
        """
        session = self._sessions.get(client_id)
        if session is None:
            session = self._sessions[client_id] = Session(client_id)
            self.statistics["opened"] += 1
        self._evicted.discard(client_id)
        return session

    def close(self, client_id: int) -> None:
        """Close the session, rolling back any transaction it left open."""
        session = self._sessions.pop(client_id, None)
        if session is None:
            raise SessionError(f"no open session for client {client_id}")
        self.statistics["closed"] += 1
        if self.database.session_in_transaction(session.token):
            self.database.rollback(session.token)
        else:
            # Consume a pending force-abort flag, if any: the session is
            # going away, nobody is left to observe the DeadlockError.
            self.database._aborted.pop(session.token, None)

    def evict(self, client_id: int) -> bool:
        """Server-side close of a session whose client went away.

        This is the fix for the lock-leak: a client that stops sending
        frames (network death, process kill) used to leave its 2PL locks
        held forever, starving every parked waiter behind them.  Eviction
        runs the same teardown as :meth:`close` — roll back the open
        transaction, which releases its locks and wakes FIFO waiters —
        but is idempotent (returns False for unknown sessions) because
        the server calls it for *every* client at crash time.
        """
        session = self._sessions.pop(client_id, None)
        if session is None:
            return False
        self._evicted.add(client_id)
        self.statistics["evicted"] += 1
        if self.database.session_in_transaction(session.token):
            self.database.rollback(session.token)
        else:
            self.database._aborted.pop(session.token, None)
        return True

    def evict_all(self) -> int:
        """Evict every open session (server crash/restart); returns the
        number evicted.  Uses the same per-session path as :meth:`evict`,
        so restart cannot leak locks any more than a single eviction can."""
        count = 0
        for client_id in list(self._sessions):
            if self.evict(client_id):
                count += 1
        return count

    def rebind(self, database: Database) -> None:
        """Point the manager at the recovered database after a restart.

        All sessions must have been evicted first (a session token refers
        to transaction state inside the old, discarded database)."""
        if self._sessions:
            raise SessionError(
                f"cannot rebind with {len(self._sessions)} session(s) "
                f"still open; evict them first"
            )
        self.database = database
        if self.lock_manager is not None:
            database.attach_lock_manager(self.lock_manager)

    def get(self, client_id: Optional[int]) -> Optional[Session]:
        if client_id is None:
            return None
        return self._sessions.get(client_id)

    def was_evicted(self, client_id: int) -> bool:
        """Whether the server tore this client's session down (and the
        client has not re-opened one since)."""
        return client_id in self._evicted

    def require(self, client_id: int) -> Session:
        session = self._sessions.get(client_id)
        if session is None:
            raise SessionError(
                f"client {client_id} has no open session "
                f"(send OPEN_SESSION first)"
            )
        return session

    @property
    def open_count(self) -> int:
        return len(self._sessions)

    # -- transactions --------------------------------------------------------

    def begin(self, client_id: int, read_only: bool = False) -> int:
        session = self.require(client_id)
        txn_id = self.database.begin(session.token, read_only=read_only)
        session.transactions += 1
        return txn_id

    def commit(self, client_id: int) -> None:
        session = self.require(client_id)
        self.database.commit(session.token)
        session.commits += 1

    def rollback(self, client_id: int) -> None:
        """Roll back the session's transaction.

        No-op success when no transaction is open: the common caller is a
        retry harness acknowledging a force-aborted (deadlock victim)
        transaction, and a rollback must never fail for already being
        done.
        """
        session = self.require(client_id)
        token = session.token
        if self.database._aborted.pop(token, None) is not None:
            session.rollbacks += 1
            return
        if not self.database.session_in_transaction(token):
            return
        self.database.rollback(token)
        session.rollbacks += 1
