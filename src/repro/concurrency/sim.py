"""Deterministic contention simulator: N clients, one server, one clock.

The server is single-threaded, so true parallelism is neither possible
nor needed — what matters for contention is the *interleaving* of
statements from different sessions.  Each simulated client is a Python
generator that performs exactly one wire operation (or one retry of a
parked statement) per resumption and then yields; a seeded scheduler
picks which client to resume next.  All clients share one
:class:`~repro.network.clock.SimulatedClock` through their own
:class:`~repro.network.link.NetworkLink`s, so every round trip, lock
wait and backoff advances the same timeline.

Determinism: the schedule is a pure function of the seed (a
``random.Random(seed)`` drives both the scheduler and each client's
workload choices through derived per-client seeds), the clock is
simulated, and the report deliberately excludes values that vary from
run to run inside one process (such as globally allocated wire client
ids).  Two runs with the same configuration produce byte-identical
reports — the schedule hash makes that checkable at a glance.

The workload mixes the paper's three access patterns:

* ``expand`` — a recursive subtree expansion (read-only, autocommit),
  or, with probability ``conflict_rate``, an *audit* read of the shared
  counter table that collides with open write transactions;
* ``increment`` — a wire transaction updating two counter rows (hot,
  shared rows with probability ``conflict_rate``, else client-private
  rows), the classic lost-update workload;
* ``checkout`` — the server-side check-out/check-in procedure pair on a
  randomly chosen subtree.

Clients wait *patiently* on lock conflicts: a parked statement is
retried on the next resumption while the transaction stays open, which
is exactly how deadlock cycles form; deadlock victims acknowledge the
abort with a rollback and restart their transaction from scratch.

A second scenario, ``audit_eco``, splits the clients into long-running
READ ONLY auditors (multi-level expand + counter audit inside one
``BEGIN TRANSACTION READ ONLY``) racing ECO write bursts (hot-counter
increments plus an assembly-row update per transaction).  Run with
``mvcc=False`` the auditors acquire S locks and fight the writers; with
``mvcc=True`` they read a snapshot and never wait — the same seed, the
same wire traffic, directly comparable reports.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.concurrency.locks import LockManager
from repro.concurrency.sessions import SessionManager
from repro.errors import (
    CheckOutError,
    ConcurrencyError,
    DeadlockError,
    LockTimeout,
    LockUnavailable,
)
from repro.model.parameters import TreeParameters
from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink
from repro.sqldb.database import Database

# The server and PDM layers are imported inside ContentionSim.__init__:
# they (transitively) import repro.analysis, which imports this package
# for the shared lock-footprint model — a module-level import here would
# close that cycle.

#: Recursive subtree expansion (the paper's expand-all action).
_EXPAND_SQL = """
WITH RECURSIVE subtree (obid) AS
(SELECT assy.obid FROM assy WHERE assy.obid = ?
 UNION
 SELECT link.right FROM subtree JOIN link ON subtree.obid = link.left)
SELECT obid FROM subtree
"""

#: Whole-table read colliding with open increment transactions.
_AUDIT_SQL = "SELECT SUM(value) FROM counters"

_INCREMENT_SQL = "UPDATE counters SET value = value + 1 WHERE id = ?"

#: ECO write burst touches product structure too, so it collides with
#: the auditors' subtree expands, not just with the counter audit.
_ECO_SQL = "UPDATE assy SET name = ? WHERE obid = ?"


def workload_scripts() -> List[Tuple[str, str, bool]]:
    """The contention workload as (name, script text, sequenced) triples.

    These are the *static* twins of the operations :class:`ContentionSim`
    clients perform: the analyzer's C001 predictions over this corpus are
    cross-validated against the deadlocks seeded sim runs actually
    produce (every observed cycle must be predicted).  ``sequenced`` is
    True throughout because sim clients open sessions, so every statement
    travels in a SEQUENCED frame — the at-most-once retry envelope that
    makes the non-idempotent increment safe to retry (C002 stays quiet).

    Check-out is deliberately absent: it maps onto all-or-nothing
    persistent locks that never wait, so it cannot join a deadlock cycle.
    """
    increment = "BEGIN;\n{u};\n{u};\nCOMMIT".format(u=_INCREMENT_SQL)
    return [
        ("expand", _EXPAND_SQL.strip(), True),
        ("audit", _AUDIT_SQL, True),
        ("increment", increment, True),
    ]


@dataclass(frozen=True)
class ContentionConfig:
    """One contention experiment: N clients over a shared server."""

    clients: int = 4
    ops_per_client: int = 8
    #: Probability that an operation targets shared (hot) data.
    conflict_rate: float = 0.5
    seed: int = 0
    #: Shared counter rows fought over by conflicting increments.
    hot_counters: int = 2
    #: Private counter rows per client (conflict-free increments).
    private_counters: int = 2
    #: Operation mix weights: (expand/audit, increment, checkout).
    mix: Tuple[float, float, float] = (0.3, 0.5, 0.2)
    #: Lock-wait timeout on the simulated clock (the deadlock backstop).
    lock_timeout_s: float = 300.0
    latency_s: float = 0.05
    dtr_kbit_s: float = 512.0
    #: Product tree for expand/check-out targets.
    tree_depth: int = 3
    tree_branching: int = 3
    #: Build the database with the MVCC snapshot-read subsystem enabled.
    mvcc: bool = False
    #: ``mixed`` is the classic three-way workload; ``audit_eco`` races
    #: READ ONLY auditors against ECO write bursts.
    scenario: str = "mixed"

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConcurrencyError("need at least one client")
        if self.scenario not in ("mixed", "audit_eco"):
            raise ConcurrencyError(
                f"unknown scenario {self.scenario!r} "
                f"(expected 'mixed' or 'audit_eco')"
            )
        if self.hot_counters < 2:
            raise ConcurrencyError(
                "need at least two hot counters to form deadlock cycles"
            )
        if not 0.0 <= self.conflict_rate <= 1.0:
            raise ConcurrencyError("conflict_rate must be within [0, 1]")
        if sum(self.mix) <= 0 or any(w < 0 for w in self.mix):
            raise ConcurrencyError("mix weights must be non-negative, sum > 0")


def exact_percentile(sorted_values: List[float], q: float) -> Optional[float]:
    """Exact linear-interpolation percentile of pre-sorted data."""
    if not sorted_values:
        return None
    position = q * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    fraction = position - lower
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


class ContentionSim:
    """Build, run and report one seeded contention experiment."""

    #: Scheduler-step ceiling — generous (a client op is a handful of
    #: steps even with retries); hitting it means livelock, a bug.
    MAX_STEPS = 200_000

    def __init__(self, config: ContentionConfig) -> None:
        # Function-scoped: see the note next to the module imports.
        from repro.pdm.generator import generate_product
        from repro.pdm.schema import (
            create_pdm_schema,
            install_checkout_procedures,
            load_product,
        )
        from repro.server.client import RemoteConnection
        from repro.server.server import DatabaseServer

        self.config = config
        self.clock = SimulatedClock()
        self.database = Database(mvcc=config.mvcc)
        create_pdm_schema(self.database)
        product = generate_product(
            TreeParameters(
                depth=config.tree_depth,
                branching=config.tree_branching,
                visibility=1.0,
            ),
            seed=config.seed,
        )
        load_product(self.database, product)
        self.root_obid = product.root_obid
        #: Check-out targets: the product root plus its direct children
        #: (distinct children are disjoint subtrees, so conflicts arise
        #: only when two clients pick the same target or the root).
        self.checkout_roots = [product.root_obid] + sorted(
            link.right
            for link in product.links
            if link.left == product.root_obid
        )
        self.locks = LockManager(
            clock=self.clock, timeout_s=config.lock_timeout_s
        )
        self.sessions = SessionManager(self.database, self.locks)
        self.server = DatabaseServer(self.database, sessions=self.sessions)
        install_checkout_procedures(self.server)
        self._create_counters()
        self.connections: List[Any] = []
        for __ in range(config.clients):
            link = NetworkLink(
                latency_s=config.latency_s,
                dtr_kbit_s=config.dtr_kbit_s,
                clock=self.clock,
            )
            self.connections.append(RemoteConnection(self.server, link))
        self.counts: Dict[str, int] = {
            "expands": 0,
            "audits": 0,
            "increments": 0,
            "checkouts": 0,
            "checkins": 0,
            "checkout_conflicts": 0,
            "read_retries": 0,
            "write_retries": 0,
            "txn_restarts": 0,
            "deadlock_aborts": 0,
            "timeout_aborts": 0,
            # audit_eco scenario; always present so report shape is stable.
            "ro_txns": 0,
            "ro_lock_waits": 0,
            "ro_aborts": 0,
            "eco_commits": 0,
        }
        self.committed_increments = 0
        self.latencies: List[float] = []
        #: Latency of each successful multi-level expand statement inside
        #: a READ ONLY audit transaction (includes its lock waits).
        self.expand_latencies: List[float] = []
        self.schedule: List[str] = []
        self.schedule_hash: Optional[str] = None

    # -- setup ----------------------------------------------------------------

    def _create_counters(self) -> None:
        self.database.execute(
            "CREATE TABLE counters (id INTEGER PRIMARY KEY, value INTEGER)"
        )
        for counter_id in self._hot_ids():
            self.database.execute(
                "INSERT INTO counters VALUES (?, 0)", [counter_id]
            )
        for client in range(self.config.clients):
            for counter_id in self._private_ids(client):
                self.database.execute(
                    "INSERT INTO counters VALUES (?, 0)", [counter_id]
                )

    def _hot_ids(self) -> List[int]:
        return list(range(1, self.config.hot_counters + 1))

    def _private_ids(self, client: int) -> List[int]:
        base = 1000 + client * 100
        return list(range(base, base + self.config.private_counters))

    # -- client workload ------------------------------------------------------

    def _pick_op(self, rng: random.Random) -> str:
        weights = self.config.mix
        total = sum(weights)
        draw = rng.random() * total
        if draw < weights[0]:
            return "expand"
        if draw < weights[0] + weights[1]:
            return "increment"
        return "checkout"

    def _client(self, index: int) -> Iterator[str]:
        """One client's whole life as a cooperative generator.

        Every ``yield`` marks one completed wire operation (or one retry
        of a parked statement); the yielded label goes into the schedule
        trace.
        """
        rng = random.Random(self.config.seed * 1_000_003 + index)
        connection = self.connections[index]
        connection.open_session()
        yield "open"
        auditor = self.config.scenario == "audit_eco" and index % 2 == 0
        for __ in range(self.config.ops_per_client):
            start = self.clock.now
            if self.config.scenario == "audit_eco":
                runner = (
                    self._run_audit_txn if auditor else self._run_eco
                )
                for label in runner(index, rng):
                    yield label
                self.latencies.append(self.clock.now - start)
                continue
            op = self._pick_op(rng)
            if op == "expand":
                for label in self._run_read(index, rng):
                    yield label
            elif op == "increment":
                for label in self._run_increment(index, rng):
                    yield label
            else:
                for label in self._run_checkout(index, rng):
                    yield label
            self.latencies.append(self.clock.now - start)
        connection.close_session()
        yield "close"

    def _run_read(self, index: int, rng: random.Random) -> Iterator[str]:
        """Autocommit read: subtree expand, or (with ``conflict_rate``)
        an audit of the counter table that collides with open write
        transactions.  Autocommit statements fail fast on conflict
        (nothing to deadlock with), so the client just retries later."""
        audit = rng.random() < self.config.conflict_rate
        connection = self.connections[index]
        while True:
            try:
                if audit:
                    connection.execute(_AUDIT_SQL)
                    self.counts["audits"] += 1
                    yield "audit"
                else:
                    connection.execute(_EXPAND_SQL, [self.root_obid])
                    self.counts["expands"] += 1
                    yield "expand"
                return
            except LockUnavailable:
                self.counts["read_retries"] += 1
                yield "read-wait"

    def _run_increment(self, index: int, rng: random.Random) -> Iterator[str]:
        """One wire transaction incrementing two counter rows.

        Parked statements are retried patiently (the transaction stays
        open — this is what lets deadlock cycles form); a deadlock or
        timeout abort is acknowledged with a rollback and the whole
        transaction restarted.
        """
        connection = self.connections[index]
        if (
            rng.random() < self.config.conflict_rate
            or self.config.private_counters < 2
        ):
            targets = rng.sample(self._hot_ids(), 2)
        else:
            targets = rng.sample(self._private_ids(index), 2)
        while True:
            connection.begin()
            yield "begin"
            aborted = False
            for counter_id in targets:
                while True:
                    try:
                        connection.execute(_INCREMENT_SQL, [counter_id])
                        yield "update"
                        break
                    except LockUnavailable:
                        self.counts["write_retries"] += 1
                        yield "write-wait"
                    except DeadlockError:
                        self.counts["deadlock_aborts"] += 1
                        aborted = True
                        break
                    except LockTimeout:
                        self.counts["timeout_aborts"] += 1
                        aborted = True
                        break
                if aborted:
                    break
            if aborted:
                connection.rollback()  # acknowledges a force-abort too
                self.counts["txn_restarts"] += 1
                yield "restart"
                continue
            connection.commit()
            self.committed_increments += len(targets)
            self.counts["increments"] += 1
            yield "commit"
            return

    def _run_audit_txn(self, index: int, rng: random.Random) -> Iterator[str]:
        """One long READ ONLY audit: a multi-level subtree expand and a
        whole-table counter audit inside a single ``BEGIN TRANSACTION
        READ ONLY``.

        Under plain 2PL the selects take S locks held to commit, so the
        auditor parks behind (and deadlocks with) ECO writers; with MVCC
        the same wire transaction reads a snapshot and never waits.  The
        expand statement's latency — queueing included — is recorded
        separately so the two builds can be compared per statement.
        """
        connection = self.connections[index]
        while True:
            connection.begin(read_only=True)
            self.counts["ro_txns"] += 1
            yield "begin-ro"
            aborted = False
            for sql, params, label in (
                (_EXPAND_SQL, [self.root_obid], "expand"),
                (_AUDIT_SQL, [], "audit"),
            ):
                start = self.clock.now
                while True:
                    try:
                        connection.execute(sql, params)
                        if label == "expand":
                            self.expand_latencies.append(
                                self.clock.now - start
                            )
                            self.counts["expands"] += 1
                        else:
                            self.counts["audits"] += 1
                        yield label
                        break
                    except LockUnavailable:
                        self.counts["ro_lock_waits"] += 1
                        yield "ro-wait"
                    except (DeadlockError, LockTimeout):
                        self.counts["ro_aborts"] += 1
                        aborted = True
                        break
                if aborted:
                    break
            if aborted:
                connection.rollback()  # acknowledges the force-abort
                self.counts["txn_restarts"] += 1
                yield "ro-restart"
                continue
            connection.commit()
            yield "commit-ro"
            return

    def _run_eco(self, index: int, rng: random.Random) -> Iterator[str]:
        """One ECO write burst: bump two hot counters and touch one
        assembly row, all inside one wire transaction.  Same patient
        retry / deadlock-restart protocol as :meth:`_run_increment`."""
        connection = self.connections[index]
        targets = rng.sample(self._hot_ids(), 2)
        part = rng.choice(self.checkout_roots)
        statements: List[Tuple[str, List[Any], str]] = [
            (_INCREMENT_SQL, [targets[0]], "update"),
            (_INCREMENT_SQL, [targets[1]], "update"),
            (_ECO_SQL, [f"eco-{index}", part], "eco-update"),
        ]
        while True:
            connection.begin()
            yield "begin"
            aborted = False
            for sql, params, label in statements:
                while True:
                    try:
                        connection.execute(sql, params)
                        yield label
                        break
                    except LockUnavailable:
                        self.counts["write_retries"] += 1
                        yield "write-wait"
                    except DeadlockError:
                        self.counts["deadlock_aborts"] += 1
                        aborted = True
                        break
                    except LockTimeout:
                        self.counts["timeout_aborts"] += 1
                        aborted = True
                        break
                if aborted:
                    break
            if aborted:
                connection.rollback()
                self.counts["txn_restarts"] += 1
                yield "restart"
                continue
            connection.commit()
            self.committed_increments += 2
            self.counts["eco_commits"] += 1
            yield "commit"
            return

    def _run_checkout(self, index: int, rng: random.Random) -> Iterator[str]:
        """Check out a subtree, then check it back in (two procedure
        calls with a scheduling point between them, so overlapping
        check-outs by other clients can collide)."""
        connection = self.connections[index]
        root = rng.choice(self.checkout_roots)
        user = f"user{index}"
        try:
            connection.call_procedure("check_out_tree", [root, user])
        except CheckOutError:
            self.counts["checkout_conflicts"] += 1
            yield "checkout-conflict"
            return
        self.counts["checkouts"] += 1
        yield "checkout"
        connection.call_procedure("check_in_tree", [root, user])
        self.counts["checkins"] += 1
        yield "checkin"

    # -- scheduler ------------------------------------------------------------

    def run(self) -> dict:
        """Interleave all clients to completion; return the report."""
        scheduler = random.Random(self.config.seed)
        generators: Dict[int, Iterator[str]] = {}
        for index in range(self.config.clients):
            generators[index] = self._client(index)
        alive = sorted(generators)
        steps = 0
        while alive:
            if steps >= self.MAX_STEPS:
                raise ConcurrencyError(
                    f"scheduler exceeded {self.MAX_STEPS} steps — livelock"
                )
            index = alive[scheduler.randrange(len(alive))]
            try:
                label = next(generators[index])
            except StopIteration:
                alive.remove(index)
                label = "done"
            self.schedule.append(f"{steps}:{index}:{label}")
            steps += 1
        self.schedule_hash = hashlib.sha256(
            "\n".join(self.schedule).encode("utf-8")
        ).hexdigest()
        return self._report(steps)

    # -- reporting ------------------------------------------------------------

    def _report(self, steps: int) -> dict:
        actual = int(
            self.database.execute("SELECT SUM(value) FROM counters").scalar()
        )
        expected = self.committed_increments
        ops_done = (
            self.counts["expands"]
            + self.counts["audits"]
            + self.counts["increments"]
            + self.counts["checkouts"]
            + self.counts["checkout_conflicts"]
            + self.counts["eco_commits"]
        )
        latencies = sorted(self.latencies)
        expand_latencies = sorted(self.expand_latencies)
        db_stats = self.database.statistics
        elapsed = self.clock.now
        report = {
            "config": asdict(self.config),
            "schedule": {"steps": steps, "hash": self.schedule_hash},
            "totals": dict(self.counts),
            "committed_increments": expected,
            "counter_sum": actual,
            "lost_updates": expected - actual,
            "locks": dict(self.locks.statistics),
            "server": {
                "lock_waits": self.server.statistics["lock_waits"],
                "deadlocks": self.server.statistics["deadlocks"],
                "txn_aborts": self.server.statistics["txn_aborts"],
                "sessions_open": self.server.statistics["sessions_open"],
                "readonly_txns": self.server.statistics["readonly_txns"],
            },
            "mvcc": {
                "enabled": self.config.mvcc,
                "snapshot_reads": db_stats["snapshot_reads"],
                "versions_created": db_stats["versions_created"],
                "versions_gc": db_stats["versions_gc"],
                "readonly_txns": db_stats["readonly_txns"],
                "chains": (
                    self.database.mvcc.chain_count()
                    if self.database.mvcc is not None
                    else 0
                ),
            },
            "elapsed_s": elapsed,
            "throughput_ops_per_s": ops_done / elapsed if elapsed else 0.0,
            "latency_s": {
                "count": len(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "p50": exact_percentile(latencies, 0.50),
                "p95": exact_percentile(latencies, 0.95),
                "p99": exact_percentile(latencies, 0.99),
                "max": latencies[-1] if latencies else None,
            },
            # Per-statement latency of the READ ONLY auditors' multi-level
            # expands (empty outside the audit_eco scenario).
            "expand_latency_s": {
                "count": len(expand_latencies),
                "mean": (
                    sum(expand_latencies) / len(expand_latencies)
                    if expand_latencies
                    else None
                ),
                "p50": exact_percentile(expand_latencies, 0.50),
                "p95": exact_percentile(expand_latencies, 0.95),
                "p99": exact_percentile(expand_latencies, 0.99),
                "max": expand_latencies[-1] if expand_latencies else None,
            },
        }
        return report


def run_contention(config: ContentionConfig) -> dict:
    """Convenience wrapper: build, run, report."""
    return ContentionSim(config).run()


def report_json(report: dict) -> str:
    """Canonical (byte-stable) JSON rendering of a report."""
    return json.dumps(report, sort_keys=True, indent=2)
