"""Static lock footprints: the shared source of truth for 2PL acquisition.

Every statement type acquires its locks in a fixed, documented order
(:mod:`repro.sqldb.database`): a SELECT takes table-level S on every base
relation it reads; an INSERT takes table-level X on its target (phantom
protection) plus table-level S on INSERT ... SELECT sources; UPDATE and
DELETE take table-level S on the base tables of their WHERE subqueries
and then row-level X on every matched row.  This module expresses that
policy as *data* — a tuple of :class:`LockRequest` per statement — so the
runtime (which binds row-granularity requests to actual row ids) and the
static transaction analyzer (:mod:`repro.analysis.txn`, which reasons
about requests symbolically) consume one model instead of two parallel
re-implementations.

Row-granularity requests carry what is statically knowable about the
rows: when the WHERE clause pins a single column to literal values
(``id = 1`` or ``id IN (1, 2)``), ``key_column``/``keys`` record them and
two requests with provably disjoint key sets do not overlap.  A missing
WHERE clause is recorded as ``whole_table`` (the statement touches every
row).  Anything else — parameters, ranges, subqueries — is *unbounded*:
it may overlap anything on the same table, which keeps the static model
conservative (it may over-predict conflicts, never under-predict them).

Everything here is pure: building a footprint never touches a catalog,
a lock manager, or any table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    Any,
    Callable,
    Iterable,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.concurrency.locks import LockMode, compatible
from repro.sqldb import ast_nodes as ast
from repro.sqldb import ast_walk

#: Resolves a SELECT statement to the base tables it reads.  The runtime
#: passes ``Database._referenced_tables`` (which expands views); the
#: static analyzer passes :func:`repro.sqldb.ast_walk.referenced_tables`.
TablesOf = Callable[[ast.SelectStatement], Sequence[str]]


class Granularity(Enum):
    """What a lock request covers: the whole table, or matched rows."""

    TABLE = "table"
    ROWS = "rows"


@dataclass(frozen=True)
class LockRequest:
    """One lock the statement will ask the :class:`LockManager` for.

    ``TABLE`` granularity maps to the manager's ``(table, None)``
    resource; ``ROWS`` granularity maps to one ``(table, row_id)``
    acquisition per matched row, bound at execution time.
    """

    table: str
    mode: LockMode
    granularity: Granularity
    #: Column the WHERE clause pins with literal equality/IN, if any.
    key_column: Optional[str] = None
    #: The literal key values, when statically known (None = unbounded).
    keys: Optional[Tuple[Any, ...]] = None
    #: True when the statement has no WHERE clause: every row is touched.
    whole_table: bool = False

    def covers_table(self) -> bool:
        """Whether the request certainly covers the entire table."""
        return self.granularity is Granularity.TABLE or self.whole_table

    def describe(self) -> str:
        """Human-readable form for analyzer messages."""
        if self.granularity is Granularity.TABLE:
            return f"{self.mode.value} on table {self.table!r}"
        if self.whole_table:
            return f"{self.mode.value} on every row of {self.table!r}"
        if self.keys is not None and self.key_column is not None:
            keys = ", ".join(repr(key) for key in self.keys)
            return (
                f"{self.mode.value} on {self.table!r} rows "
                f"[{self.key_column} IN ({keys})]"
            )
        return f"{self.mode.value} on {self.table!r} rows (unbounded)"


# -- builders (one per statement type) --------------------------------------


def select_footprint(tables: Iterable[str]) -> Tuple[LockRequest, ...]:
    """Table-level S on every base relation the query reads."""
    return tuple(
        LockRequest(table.lower(), LockMode.SHARED, Granularity.TABLE)
        for table in tables
    )


def insert_footprint(
    table: str, source_tables: Iterable[str] = ()
) -> Tuple[LockRequest, ...]:
    """Table-level X on the target (serialises against table-S scans,
    closing the phantom window), then table-level S on any
    INSERT ... SELECT source tables."""
    return (
        LockRequest(table.lower(), LockMode.EXCLUSIVE, Granularity.TABLE),
    ) + select_footprint(source_tables)


def update_footprint(
    table: str,
    where: Optional[ast.Expression],
    subquery_tables: Iterable[str] = (),
) -> Tuple[LockRequest, ...]:
    """Table-level S on WHERE-subquery sources, then row-level X on every
    matched row of the target."""
    return select_footprint(subquery_tables) + (_row_request(table, where),)


def delete_footprint(
    table: str,
    where: Optional[ast.Expression],
    subquery_tables: Iterable[str] = (),
) -> Tuple[LockRequest, ...]:
    """Same shape as :func:`update_footprint`: reads feed the match, the
    matched rows are X-locked before the first mutation."""
    return select_footprint(subquery_tables) + (_row_request(table, where),)


def _row_request(
    table: str, where: Optional[ast.Expression]
) -> LockRequest:
    if where is None:
        return LockRequest(
            table.lower(),
            LockMode.EXCLUSIVE,
            Granularity.ROWS,
            whole_table=True,
        )
    key_column, keys = bounded_keys(where)
    return LockRequest(
        table.lower(),
        LockMode.EXCLUSIVE,
        Granularity.ROWS,
        key_column=key_column,
        keys=keys,
    )


def bounded_keys(
    where: ast.Expression,
) -> Tuple[Optional[str], Optional[Tuple[Any, ...]]]:
    """(column, literal keys) when a top-level conjunct pins one column
    via ``= literal`` or ``IN (literals)``; ``(None, None)`` otherwise.

    Parameters deliberately do not bound: the analyzer cannot know their
    values, so a parameterised predicate stays unbounded (may overlap
    anything on the table)."""
    for conjunct in ast_walk.split_conjuncts(where):
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.operator == "="
        ):
            sides = (conjunct.left, conjunct.right)
            for column_side, value_side in (sides, sides[::-1]):
                if isinstance(column_side, ast.ColumnRef) and isinstance(
                    value_side, ast.Literal
                ):
                    return column_side.name.lower(), (value_side.value,)
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            if isinstance(conjunct.operand, ast.ColumnRef) and all(
                isinstance(item, ast.Literal) for item in conjunct.items
            ):
                return (
                    conjunct.operand.name.lower(),
                    tuple(item.value for item in conjunct.items),
                )
    return None, None


def where_subquery_tables(
    where: Optional[ast.Expression], tables_of: TablesOf
) -> Tuple[str, ...]:
    """Base tables referenced by subqueries of a DML WHERE clause — they
    are read during the match, so they need shared locks too."""
    if where is None:
        return ()
    names: Set[str] = set()
    for __, subquery in ast_walk.iter_subqueries(where):
        names.update(tables_of(subquery))
    return tuple(sorted(names))


def statement_footprint(
    statement: Any, tables_of: TablesOf
) -> Tuple[LockRequest, ...]:
    """The lock footprint of any statement type.

    Control statements (BEGIN/COMMIT/ROLLBACK) and DDL acquire no
    lock-manager locks (DDL is rejected inside transactions instead) and
    return the empty footprint.
    """
    if isinstance(statement, ast.SelectStatement):
        return select_footprint(tables_of(statement))
    if isinstance(statement, ast.Insert):
        sources: Sequence[str] = ()
        if statement.select is not None:
            sources = tables_of(statement.select)
        return insert_footprint(statement.table, sources)
    if isinstance(statement, ast.Update):
        return update_footprint(
            statement.table,
            statement.where,
            where_subquery_tables(statement.where, tables_of),
        )
    if isinstance(statement, ast.Delete):
        return delete_footprint(
            statement.table,
            statement.where,
            where_subquery_tables(statement.where, tables_of),
        )
    return ()


# -- static conflict tests ---------------------------------------------------


def may_overlap(a: LockRequest, b: LockRequest) -> bool:
    """Whether two requests may cover a common resource.

    The static twin of ``LockManager._overlaps``: different tables never
    overlap; table-granularity overlaps everything on its table; two
    row-granularity requests with provably disjoint literal keys on the
    same column do not overlap; everything else conservatively may.
    """
    if a.table != b.table:
        return False
    if a.covers_table() or b.covers_table():
        return True
    if (
        a.keys is None
        or b.keys is None
        or a.key_column is None
        or a.key_column != b.key_column
    ):
        return True
    return bool(set(a.keys) & set(b.keys))


def may_conflict(a: LockRequest, b: LockRequest) -> bool:
    """Whether two requests from *different* owners may block each other:
    they may cover a common resource and their modes are incompatible
    under the manager's S/X matrix."""
    return may_overlap(a, b) and not compatible(a.mode, b.mode)


def read_tables(requests: Iterable[LockRequest]) -> Tuple[str, ...]:
    """Tables a footprint reads (S requests), sorted."""
    return tuple(
        sorted({r.table for r in requests if r.mode is LockMode.SHARED})
    )


def write_tables(requests: Iterable[LockRequest]) -> Tuple[str, ...]:
    """Tables a footprint writes (X requests), sorted."""
    return tuple(
        sorted({r.table for r in requests if r.mode is LockMode.EXCLUSIVE})
    )
