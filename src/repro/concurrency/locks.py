"""Strict two-phase locking for the single-threaded simulated server.

The server handles one request at a time, so a conflicting lock request
cannot block inside ``handle()`` — there is no other thread that could
release the lock.  Instead the manager *parks* the request in a FIFO
wait queue and raises :class:`LockUnavailable`; the client retries the
same statement (the transaction stays open, the queue position is kept)
and either finds the lock granted in the meantime or parks again.  This
turns blocking into bounded client-driven polling while preserving FIFO
fairness and making deadlock detection straightforward: the parked
requests *are* the wait-for edges.

Resources are ``(table, row_id)`` pairs; ``row_id is None`` means the
whole table.  A table-level lock conflicts with every row-level lock of
the table and vice versa (scans take table-level shared locks, which is
what closes the phantom window against row inserts under table-X).

Compatibility (between two different transactions)::

            held S   held X
    want S    ok      wait
    want X   wait     wait

Deadlocks are detected at parking time by a depth-first search over the
wait-for graph; the youngest transaction in the cycle (largest txn id)
is aborted.  Check-out maps onto *persistent* owner-scoped locks: they
are acquired all-or-nothing, never wait (so they never deadlock), and
survive transaction boundaries until explicitly released by check-in.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConcurrencyError, DeadlockError, LockTimeout, LockUnavailable

#: A lockable resource: (table name lowercased, row id or None for the table).
Resource = Tuple[str, Optional[int]]


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def compatible(held: LockMode, wanted: LockMode) -> bool:
    """The S/X compatibility matrix (between two different owners).

    Public because the static analyzer's footprint model
    (:mod:`repro.concurrency.footprint`) must use the *same* matrix the
    runtime grants by — one source of truth, not two.
    """
    return held is LockMode.SHARED and wanted is LockMode.SHARED


def overlaps(a: Resource, b: Resource) -> bool:
    """Whether two resources cover common rows (same table, and same row
    or either side is the whole table)."""
    if a[0] != b[0]:
        return False
    return a[1] is None or b[1] is None or a[1] == b[1]


# Historical private names, kept for callers inside this module.
_compatible = compatible
_overlaps = overlaps


class _Waiter:
    """One parked lock request, keeping its FIFO position across retries."""

    __slots__ = ("txn_id", "resource", "mode", "enqueued_at", "deadline")

    def __init__(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        enqueued_at: float,
        deadline: Optional[float],
    ) -> None:
        self.txn_id = txn_id
        self.resource = resource
        self.mode = mode
        self.enqueued_at = enqueued_at
        self.deadline = deadline


class _Txn:
    """Book-keeping for one lock owner (transaction or persistent user)."""

    __slots__ = ("txn_id", "owner", "persistent", "held")

    def __init__(self, txn_id: int, owner: Any, persistent: bool) -> None:
        self.txn_id = txn_id
        self.owner = owner
        self.persistent = persistent
        #: resource -> LockMode currently held.
        self.held: Dict[Resource, LockMode] = {}


class LockManager:
    """Strict 2PL with parked FIFO waiters and deadlock detection.

    ``clock`` (a :class:`repro.network.clock.SimulatedClock`) and
    ``timeout_s`` enable lock-wait timeouts: a waiter parked longer than
    ``timeout_s`` simulated seconds is cancelled on its next retry and
    its transaction aborted with :class:`LockTimeout`.  Without a clock
    waiters never time out (tests drive the interleaving explicitly).
    """

    def __init__(
        self,
        clock: Optional[Any] = None,
        timeout_s: Optional[float] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self.clock = clock
        self.timeout_s = timeout_s
        self.recorder = recorder
        self._txn_ids = itertools.count(1)
        self._txns: Dict[int, _Txn] = {}
        #: table name -> FIFO list of parked waiters for that table.
        self._queues: Dict[str, List[_Waiter]] = {}
        #: Called with the victim txn id when deadlock detection picks a
        #: transaction *other than the requester* — the database rolls the
        #: victim back (which re-enters release_all).
        self.abort_callback: Optional[Callable[[int], None]] = None
        self.statistics = {
            "acquisitions": 0,
            "waits": 0,
            "deadlocks": 0,
            "timeouts": 0,
            "grants_after_wait": 0,
        }
        #: One entry per detected deadlock: the sorted table names the
        #: cycle's transactions were waiting on.  The static analyzer's
        #: soundness test cross-checks these against C001 predictions.
        #: Kept out of ``statistics`` so seeded sim reports stay
        #: byte-identical to earlier revisions.
        self.deadlock_cycles: List[Tuple[str, ...]] = []

    # -- owner lifecycle ----------------------------------------------------

    def begin(self, owner: Any = None, persistent: bool = False) -> int:
        """Register a lock owner; returns its id (monotonic: larger = younger)."""
        txn_id = next(self._txn_ids)
        self._txns[txn_id] = _Txn(txn_id, owner, persistent)
        return txn_id

    def persistent_owner(self, key: Any) -> int:
        """Get-or-create the persistent lock owner registered under *key*
        (e.g. a check-out user).  Persistent owners survive transaction
        boundaries — their locks stay held until explicitly released —
        and are never picked as deadlock victims."""
        for txn in self._txns.values():
            if txn.persistent and txn.owner == key:
                return txn.txn_id
        return self.begin(owner=key, persistent=True)

    def reset(self) -> None:
        """Forget every owner, held lock and parked waiter.

        The lock table is volatile state: a server crash wipes it.  Called
        from the restart path *after* session eviction has released the
        evicted transactions' locks through the normal strict-2PL path;
        what remains (ephemeral autocommit owners caught mid-statement,
        persistent check-out owners) is cleared wholesale — a check-out
        does not survive the crash of the server that recorded it and must
        be re-established through the PDM layer.  The id counter keeps
        running so post-restart owners never reuse a pre-crash id.
        """
        self._txns.clear()
        self._queues.clear()

    def release_all(self, txn_id: int) -> None:
        """Drop every lock and parked waiter of *txn_id* (strict 2PL
        release at commit/abort), then grant unblocked waiters in FIFO
        order."""
        txn = self._txns.pop(txn_id, None)
        if txn is None:
            return
        touched = {resource[0] for resource in txn.held}
        for table, queue in self._queues.items():
            before = len(queue)
            queue[:] = [w for w in queue if w.txn_id != txn_id]
            if len(queue) != before:
                touched.add(table)
        for table in sorted(touched):
            self._grant_waiters(table)

    def holders(self, resource: Resource) -> Dict[int, LockMode]:
        """Current holders of locks overlapping *resource* (diagnostics)."""
        found: Dict[int, LockMode] = {}
        for txn in self._txns.values():
            for held_resource, mode in txn.held.items():
                if _overlaps(held_resource, resource):
                    found[txn.txn_id] = mode
        return found

    def locks_held(self, txn_id: int) -> List[Tuple[Resource, LockMode]]:
        txn = self._txns.get(txn_id)
        if txn is None:
            return []
        return sorted(txn.held.items(), key=lambda item: (item[0][0], -1 if item[0][1] is None else item[0][1]))

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        table: str,
        row_id: Optional[int],
        mode: LockMode,
        park: bool = True,
    ) -> None:
        """Acquire (or upgrade to) *mode* on ``(table, row_id)``.

        Returns on success.  On conflict: with ``park=True`` the request
        is parked (keeping any existing queue position) and
        :class:`LockUnavailable` raised — unless that would deadlock, in
        which case the youngest transaction of the cycle is aborted
        (:class:`DeadlockError` if that is the requester).  With
        ``park=False`` (autocommit statements, persistent locks) the
        request fails fast without joining the queue.
        """
        txn = self._txns.get(txn_id)
        if txn is None:
            raise ConcurrencyError(f"unknown lock owner {txn_id}")
        resource: Resource = (table.lower(), row_id)
        held = txn.held.get(resource)
        if held is LockMode.EXCLUSIVE or held is mode:
            return  # already strong enough
        self.statistics["acquisitions"] += 1
        waiter = self._find_waiter(txn_id, resource, mode)
        if waiter is not None and self._expired(waiter):
            self._cancel_waiters(txn_id)
            self.statistics["timeouts"] += 1
            raise LockTimeout(
                f"transaction {txn_id} waited more than {self.timeout_s}s "
                f"for {mode.value} on {self._describe(resource)}"
            )
        if self._grantable(txn, resource, mode, waiter):
            self._grant(txn, resource, mode, waiter)
            return
        if not park:
            raise LockUnavailable(
                f"{mode.value} on {self._describe(resource)} is held by "
                f"transaction(s) {sorted(self._conflicting_holders(txn, resource, mode))}"
            )
        if waiter is None:
            waiter = self._park(txn_id, resource, mode)
        victim = self._detect_deadlock(txn_id)
        if victim is not None:
            self.statistics["deadlocks"] += 1
            if victim == txn_id:
                self._cancel_waiters(txn_id)
                raise DeadlockError(
                    f"transaction {txn_id} chosen as deadlock victim "
                    f"waiting for {mode.value} on {self._describe(resource)}"
                )
            if self.abort_callback is not None:
                self.abort_callback(victim)
            else:
                self.release_all(victim)
            # The abort released the victim's locks; the waiter may have
            # been granted by the FIFO pass just now.
            if txn.held.get(resource) in (mode, LockMode.EXCLUSIVE):
                return
        self.statistics["waits"] += 1
        raise LockUnavailable(
            f"{mode.value} on {self._describe(resource)} is held by "
            f"transaction(s) {sorted(self._conflicting_holders(txn, resource, mode))}; "
            f"request parked, retry the statement"
        )

    def acquire_all_or_nothing(
        self,
        txn_id: int,
        resources: Sequence[Resource],
        mode: LockMode = LockMode.EXCLUSIVE,
    ) -> None:
        """Acquire *mode* on every resource or none (no waiting).

        Used for persistent check-out locks: a partial grant is rolled
        back before :class:`LockUnavailable` propagates, so a failed
        check-out leaves no locks behind.
        """
        txn = self._txns.get(txn_id)
        if txn is None:
            raise ConcurrencyError(f"unknown lock owner {txn_id}")
        acquired: List[Resource] = []
        try:
            for table, row_id in resources:
                resource: Resource = (table.lower(), row_id)
                if resource in txn.held:
                    continue
                self.acquire(txn_id, table, row_id, mode, park=False)
                acquired.append(resource)
        except LockUnavailable:
            for resource in acquired:
                del txn.held[resource]
            for table in sorted({resource[0] for resource in acquired}):
                self._grant_waiters(table)
            raise

    def release(self, txn_id: int, resources: Sequence[Resource]) -> None:
        """Release specific resources of a persistent owner (check-in)."""
        txn = self._txns.get(txn_id)
        if txn is None:
            return
        touched = set()
        for table, row_id in resources:
            resource: Resource = (table.lower(), row_id)
            if txn.held.pop(resource, None) is not None:
                touched.add(resource[0])
        for table in sorted(touched):
            self._grant_waiters(table)

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _describe(resource: Resource) -> str:
        table, row_id = resource
        return f"table {table!r}" if row_id is None else f"{table!r} row {row_id}"

    def _find_waiter(
        self, txn_id: int, resource: Resource, mode: LockMode
    ) -> Optional[_Waiter]:
        for waiter in self._queues.get(resource[0], ()):
            if (
                waiter.txn_id == txn_id
                and waiter.resource == resource
                and waiter.mode is mode
            ):
                return waiter
        return None

    def _expired(self, waiter: _Waiter) -> bool:
        return (
            waiter.deadline is not None
            and self.clock is not None
            and self.clock.now > waiter.deadline
        )

    def _conflicting_holders(
        self, txn: _Txn, resource: Resource, mode: LockMode
    ) -> List[int]:
        conflicts = []
        for other in self._txns.values():
            if other.txn_id == txn.txn_id:
                continue
            for held_resource, held_mode in other.held.items():
                if _overlaps(held_resource, resource) and not _compatible(
                    held_mode, mode
                ):
                    conflicts.append(other.txn_id)
                    break
        return conflicts

    def _blocking_waiters(
        self, txn: _Txn, resource: Resource, mode: LockMode, own: Optional[_Waiter]
    ) -> List[int]:
        """Parked waiters queued ahead whose request conflicts with ours.

        Granting around them would let late arrivals barge past the FIFO
        queue and starve writers behind a stream of readers.
        """
        blocking = []
        for waiter in self._queues.get(resource[0], ()):
            if waiter is own:
                break  # only waiters *ahead* of our own position block us
            if waiter.txn_id == txn.txn_id:
                continue
            if _overlaps(waiter.resource, resource) and not (
                _compatible(waiter.mode, mode)
            ):
                blocking.append(waiter.txn_id)
        return blocking

    def _grantable(
        self, txn: _Txn, resource: Resource, mode: LockMode, own: Optional[_Waiter]
    ) -> bool:
        if self._conflicting_holders(txn, resource, mode):
            return False
        return not self._blocking_waiters(txn, resource, mode, own)

    def _grant(
        self,
        txn: _Txn,
        resource: Resource,
        mode: LockMode,
        waiter: Optional[_Waiter],
    ) -> None:
        held = txn.held.get(resource)
        if held is None or mode is LockMode.EXCLUSIVE:
            txn.held[resource] = mode
        if waiter is not None:
            self._queues[resource[0]].remove(waiter)
            self.statistics["grants_after_wait"] += 1

    def _park(self, txn_id: int, resource: Resource, mode: LockMode) -> _Waiter:
        now = self.clock.now if self.clock is not None else 0.0
        deadline = (
            now + self.timeout_s
            if self.timeout_s is not None and self.clock is not None
            else None
        )
        waiter = _Waiter(txn_id, resource, mode, now, deadline)
        self._queues.setdefault(resource[0], []).append(waiter)
        if self.recorder is not None:
            self.recorder.metrics.counter("locks.parked").inc()
        return waiter

    def _cancel_waiters(self, txn_id: int) -> None:
        for queue in self._queues.values():
            queue[:] = [w for w in queue if w.txn_id != txn_id]

    def _grant_waiters(self, table: str) -> None:
        """FIFO pass: grant every waiter of *table* that is now unblocked.

        Installing the lock immediately (rather than merely marking the
        waiter runnable) means the owner's retried statement finds the
        lock already held — and the resource stays protected from later
        arrivals in the meantime.
        """
        queue = self._queues.get(table)
        if not queue:
            return
        progressed = True
        while progressed:
            progressed = False
            for waiter in list(queue):
                txn = self._txns.get(waiter.txn_id)
                if txn is None:
                    queue.remove(waiter)
                    progressed = True
                    continue
                if self._grantable(txn, waiter.resource, waiter.mode, waiter):
                    self._grant(txn, waiter.resource, waiter.mode, waiter)
                    progressed = True

    # -- deadlock detection --------------------------------------------------

    def _wait_edges(self) -> Dict[int, Set[int]]:
        """Wait-for graph: parked txn -> txns it waits on (conflicting
        holders plus conflicting waiters queued ahead of it)."""
        edges: Dict[int, Set[int]] = {}
        for queue in self._queues.values():
            for waiter in queue:
                txn = self._txns.get(waiter.txn_id)
                if txn is None:
                    continue
                targets = set(
                    self._conflicting_holders(txn, waiter.resource, waiter.mode)
                )
                targets.update(
                    self._blocking_waiters(txn, waiter.resource, waiter.mode, waiter)
                )
                if targets:
                    edges.setdefault(waiter.txn_id, set()).update(targets)
        return edges

    def _detect_deadlock(self, start: int) -> Optional[int]:
        """Find a wait-for cycle through *start*; return the victim
        (youngest = largest txn id, persistent owners excluded) or None."""
        edges = self._wait_edges()
        path: List[int] = []
        on_path = set()
        visited = set()

        def dfs(node: int) -> Optional[List[int]]:
            if node in on_path:
                return path[path.index(node) :]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for target in sorted(edges.get(node, ())):
                cycle = dfs(target)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.discard(node)
            return None

        cycle = dfs(start)
        if not cycle:
            return None
        candidates = [
            txn_id
            for txn_id in cycle
            if txn_id in self._txns and not self._txns[txn_id].persistent
        ]
        if not candidates:
            return None
        self._record_cycle(set(cycle))
        return max(candidates)

    def _record_cycle(self, members: Set[int]) -> None:
        """Append the tables the cycle's members are waiting on to
        :attr:`deadlock_cycles` (the parked requests *are* the wait-for
        edges, so their resources name the cycle)."""
        tables: Set[str] = set()
        for queue in self._queues.values():
            for waiter in queue:
                if waiter.txn_id in members:
                    tables.add(waiter.resource[0])
        self.deadlock_cycles.append(tuple(sorted(tables)))
