"""Concurrent sessions: 2PL locking, per-client transactions, contention.

The paper's measurements are single-user, but its setting — hundreds of
engineers against one PDM server — is not.  This package supplies the
concurrency substrate: a strict two-phase :class:`LockManager` with
parked FIFO waiters and wait-for-graph deadlock detection, a
:class:`SessionManager` mapping wire clients onto independent database
transactions, and a deterministic :class:`ContentionSim` that interleaves
N cooperative clients over one simulated clock.
"""

from repro.concurrency.footprint import (
    Granularity,
    LockRequest,
    delete_footprint,
    insert_footprint,
    may_conflict,
    may_overlap,
    select_footprint,
    statement_footprint,
    update_footprint,
)
from repro.concurrency.locks import LockManager, LockMode, compatible
from repro.concurrency.sessions import Session, SessionManager
from repro.concurrency.sim import (
    ContentionConfig,
    ContentionSim,
    exact_percentile,
    report_json,
    run_contention,
    workload_scripts,
)

__all__ = [
    "Granularity",
    "LockManager",
    "LockMode",
    "LockRequest",
    "Session",
    "SessionManager",
    "ContentionConfig",
    "ContentionSim",
    "compatible",
    "delete_footprint",
    "insert_footprint",
    "may_conflict",
    "may_overlap",
    "run_contention",
    "report_json",
    "exact_percentile",
    "select_footprint",
    "statement_footprint",
    "update_footprint",
    "workload_scripts",
]
