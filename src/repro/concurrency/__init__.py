"""Concurrent sessions: 2PL locking, per-client transactions, contention.

The paper's measurements are single-user, but its setting — hundreds of
engineers against one PDM server — is not.  This package supplies the
concurrency substrate: a strict two-phase :class:`LockManager` with
parked FIFO waiters and wait-for-graph deadlock detection, a
:class:`SessionManager` mapping wire clients onto independent database
transactions, and a deterministic :class:`ContentionSim` that interleaves
N cooperative clients over one simulated clock.
"""

from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.sessions import Session, SessionManager
from repro.concurrency.sim import (
    ContentionConfig,
    ContentionSim,
    exact_percentile,
    report_json,
    run_contention,
)

__all__ = [
    "LockManager",
    "LockMode",
    "Session",
    "SessionManager",
    "ContentionConfig",
    "ContentionSim",
    "run_contention",
    "report_json",
    "exact_percentile",
]
